#!/usr/bin/env python3
"""Ablation: which attraction feature earns its keep?

Re-runs the deployment with each scanner data-channel suppressed in turn
(no zone-file watchers, no CT bots, no hitlist consumers, weak BGP
reaction) and compares the traffic each honeyprefix class attracts.  This
is the counterfactual the paper could not run on the real Internet — the
simulator can.

Run:  python examples/feature_ablation.py
"""

from repro.net.packet import ICMPV6
from repro.sim import PaperScenario, ScenarioConfig


def run_variant(label: str, **overrides) -> dict:
    config = ScenarioConfig(
        seed=9, duration_days=45, volume_scale=1e-4, n_tail=60,
        phase1_day=5, phase2_day=8, phase3_day=11, specific_start_day=14,
        tls_offset_days=7, tpot_hitlist_offset_days=10,
        tpot_tls_offset_days=16, udp_hitlist_offset_days=4,
        withdraw_after_days=100,  # no withdrawal inside this window
        population_overrides=overrides,
    )
    scenario = PaperScenario(config)
    scenario.run()

    records = scenario.telescope.capturer.to_records()
    per_class: dict[str, int] = {}
    for name, hp in scenario.honeyprefixes.items():
        key = name.split("/")[0].rstrip("123")
        per_class[key] = per_class.get(key, 0) + int(
            records.mask_dst_in(hp.prefix).sum()
        )
    icmp = int(records.mask_proto(ICMPV6).sum())
    return {
        "label": label,
        "total": len(records),
        "icmp_share": icmp / len(records) if len(records) else 0.0,
        "per_class": per_class,
    }


def main() -> None:
    variants = [
        ("baseline", {}),
        ("no zone-file watchers", {"zonefile_rate": 0.0}),
        ("no CT bots", {"ctlog_rate": 0.0}),
        ("no hitlist consumers", {"hitlist_rate": 0.0}),
        ("weak BGP reaction", {"bgp_rate": 0.1}),
    ]
    results = [run_variant(label, **patch) for label, patch in variants]

    classes = ["H_Com", "H_Org", "H_TPot", "H_UDP", "H_Alias", "H_BGP"]
    header = f"{'variant':24s} {'total':>8s} " + " ".join(
        f"{c:>8s}" for c in classes
    )
    print(header)
    print("-" * len(header))
    for res in results:
        row = f"{res['label']:24s} {res['total']:8d} "
        row += " ".join(
            f"{res['per_class'].get(c, 0):8d}" for c in classes
        )
        print(row)

    baseline = results[0]
    print("\nwhat each channel contributed (drop vs. baseline):")
    for res in results[1:]:
        drop = 1 - res["total"] / baseline["total"]
        print(f"  {res['label']:24s} -{drop:.0%} total traffic")


if __name__ == "__main__":
    main()
