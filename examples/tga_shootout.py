#!/usr/bin/env python3
"""Target-generation algorithm shootout against a live telescope.

The paper's §2.2 surveys the TGA literature (6Gen/6Tree/Entropy-style
generators) that its scanners run.  This example turns the tables: it
deploys the telescope, hands each TGA the seed set a real scanner could
have assembled from public data (domain AAAA targets, hitlist entries,
aliased-prefix anchors), gives every algorithm the same probe budget
against the telescope's responsiveness oracle, and compares them the way
the evaluation literature does (hit rate, new discoveries, overlap).

Run:  python examples/tga_shootout.py
"""

from repro.net.packet import ICMPV6
from repro.scanners.tga_eval import evaluate_tgas
from repro.sim import ScenarioConfig, run_scenario


def main() -> None:
    config = ScenarioConfig(
        seed=5, duration_days=45, volume_scale=1e-4, n_tail=50,
        phase1_day=5, phase2_day=8, phase3_day=11, specific_start_day=14,
        tls_offset_days=7, tpot_hitlist_offset_days=10,
        tpot_tls_offset_days=16, udp_hitlist_offset_days=4,
        withdraw_after_days=100,
    )
    print("deploying the telescope ...")
    result = run_scenario(config)
    telescope = result.scenario.telescope

    # The seed set a scanner plausibly holds after watching public data.
    seeds: set[int] = set()
    for hp in result.honeyprefixes.values():
        seeds.update(hp.domain_targets.values())
        seeds.update(list(hp.subdomain_targets.values())[:4])
        seeds.update(list(hp.responsive)[:6])
        seeds.update(hp.manual_hitlist_addresses)
        if hp.config.aliased:
            seeds.update(hp.prefix.network | (i << 64) | 1
                         for i in range(8))
    print(f"seed set: {len(seeds)} addresses")

    at = result.end - 1.0

    def oracle(address, _at):
        return telescope.responds(address, ICMPV6, None, at)

    evaluation = evaluate_tgas(sorted(seeds), oracle, budget=2_000, rng=7)
    print()
    print(evaluation.render())
    print()
    best = max(evaluation.scores, key=lambda s: s.hit_rate)
    print(f"winner: {best.name} at {best.hit_rate:.1%} hit rate — "
          "feedback-driven descent dominates when aliased prefixes answer "
          "everything, exactly why the paper's hitlist segregates aliased "
          "space.")


if __name__ == "__main__":
    main()
