#!/usr/bin/env python3
"""Quickstart: deploy a proactive telescope, attract scanners, analyze.

Builds a compact version of the paper's experiment — an ISP /32 hosting a
handful of honeyprefixes, a synthetic scanner ecosystem watching the public
data feeds — runs it for two simulated months, and prints the headline
numbers: who scanned, with what protocols, and how much each attraction
feature helped.

Run:  python examples/quickstart.py
"""

from repro.experiments import fig9, table1, table3
from repro.experiments.effects import table4
from repro.sim import ScenarioConfig, run_scenario


def main() -> None:
    config = ScenarioConfig(
        seed=1,
        duration_days=60,
        volume_scale=1e-4,   # 1:10,000 of the paper's packet volume
        n_tail=80,
        phase1_day=6, phase2_day=10, phase3_day=14, specific_start_day=18,
        tls_offset_days=8, tpot_hitlist_offset_days=12,
        tpot_tls_offset_days=20, udp_hitlist_offset_days=4,
        withdraw_after_days=30,
    )
    print("building the Internet + telescope + scanner ecosystem ...")
    result = run_scenario(config, progress=True)

    print()
    print(table1(result).render())
    print()
    print(table3(result, n=8).render())
    print()
    print(fig9(result).render())
    print()
    print(table4(result).render())

    scenario = result.scenario
    print()
    print(f"honeypot responses sent: {scenario.telescope.response_count}")
    print(f"T-Pot NAT log entries:   "
          f"{sum(len(g.nat_log) for g in scenario.telescope.gateways.values())}")
    print(f"hitlist entries:         "
          f"{len(scenario.fabric.hitlist.entries())}")
    print(f"certificates in CT log:  {len(scenario.fabric.ct_log)}")


if __name__ == "__main__":
    main()
