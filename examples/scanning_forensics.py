#!/usr/bin/env python3
"""Forensics on captured telescope traffic.

Takes a finished telescope capture and runs the paper's full §5 analysis
pipeline over it: flow aggregation, scan-event detection (with the 100-
target / 3600-second definition), metadata joins, tactic attribution, and
a blocklist recommendation per source AS that respects each scanner's real
source-prefix spread — the paper's operational-security punchline: block
AlphaStrike at /30 granularity, Amazon workers at /64, CERNET at /128.

Run:  python examples/scanning_forensics.py
"""

from repro.analysis.blocklist import recommend_blocklist, render_blocklist
from repro.analysis.flows import aggregate_flows
from repro.analysis.scandetect import detect_scans
from repro.analysis.tactics import label_tactics
from repro.sim import ScenarioConfig, run_scenario


def main() -> None:
    config = ScenarioConfig(
        seed=3, duration_days=50, volume_scale=1e-4, n_tail=70,
        phase1_day=5, phase2_day=8, phase3_day=11, specific_start_day=14,
        tls_offset_days=7, tpot_hitlist_offset_days=10,
        tpot_tls_offset_days=16, udp_hitlist_offset_days=4,
        withdraw_after_days=25,
    )
    print("running the telescope ...")
    result = run_scenario(config)
    records = result.nta

    print(f"\ncaptured {len(records)} packets")

    flows = aggregate_flows(records)
    print(f"aggregated into {len(flows)} flows "
          f"(top flow: {max(f.packets for f in flows)} packets)")

    # Scan events per the paper's definition, at /64 source aggregation.
    events = detect_scans(records, source_length=64, min_targets=100)
    print(f"\nscan events (>=100 targets, 3600 s timeout): {len(events)}")
    for event in sorted(events, key=lambda e: -e.unique_targets)[:5]:
        asn = result.joiner.asn_of(event.source)
        print(f"  {result.joiner.asdb.name(asn):22s} "
              f"{event.unique_targets:6d} targets "
              f"{event.packets:6d} packets over "
              f"{event.duration / 3600:.1f} h")

    # Tactic attribution on the busiest honeyprefix.
    busiest = max(result.honeyprefixes,
                  key=lambda n: len(result.honeyprefix_records(n)))
    report = label_tactics(result.honeyprefix_records(busiest),
                           result.honeyprefixes[busiest])
    print(f"\ntactics against {busiest} "
          f"({report.total_sources} scanner /48s):")
    for label, count in report.combos.most_common(6):
        print(f"  {label or '(none)':8s} {count}")

    # Blocklist recommendations: the narrowest prefixes that actually
    # contain each scanner's observed sources (§6's operational punchline:
    # block AlphaStrike-style rotation at allocation granularity, stable
    # sources at /128).
    entries = recommend_blocklist(records, result.joiner, min_packets=100)
    print()
    print(render_blocklist(entries, max_rows=8))


if __name__ == "__main__":
    main()
