#!/usr/bin/env python3
"""A small operator's telescope: one /48, no BGP autonomy.

The paper's discussion (§6) addresses operators who hold a single /48 and
cannot announce honeyprefixes of their own.  Their recipe: place the
honeypots, domain names, and TLS certificates near the *beginning* of the
assigned block — where scanners concentrate their probing — and capture
what arrives.

This example builds that minimal deployment directly from the library's
building blocks (no PaperScenario), wires a low-interaction Twinklenet over
the /48, registers one domain + certificate, and reports where in the
block scanners actually probed.

Run:  python examples/single_prefix_operator.py
"""

import numpy as np

from repro._util import DAY
from repro.analysis.records import PacketRecords
from repro.core.features import Feature
from repro.core.honeyprefix import HoneyprefixConfig, IcmpMode
from repro.core.proactive import ProactiveTelescope
from repro.routing.speaker import BgpSpeaker
from repro.scanners.population import PopulationSpec, build_population
from repro.sim.fabric import InternetFabric


def main() -> None:
    fabric = InternetFabric(rng=0)
    # The operator's upstream announces the covering /32; the operator owns
    # one /48 inside it and can only control DNS/TLS and what responds.
    speaker = BgpSpeaker(64999, fabric.collectors, fabric.roa_registry)
    from repro.net.addr import IPv6Prefix

    covering = IPv6Prefix.parse("2a02:1234::/32")
    telescope = ProactiveTelescope(
        "small-op", covering, speaker,
        registrar=fabric.registrar, acme=fabric.acme,
        hitlist=fabric.hitlist, rng=1,
    )
    fabric.register_oracle(telescope.responds)
    fabric.register_interaction(telescope.interaction_level)

    config = HoneyprefixConfig(
        name="my48", icmp_mode=IcmpMode.ADDRESSES,
        tcp_services=(("web", (80, 443)),),
        domains=("com",), tls_root=True,
    )
    my48 = covering.subnet_at(0, 48)
    hp = telescope.deploy(config, my48, at=1 * DAY)
    telescope.issue_tls(hp, at=5 * DAY)

    agents = build_population(
        fabric, PopulationSpec(volume_scale=5e-4, n_tail=60), rng=2
    )

    # Daily loop: poll feeds, emit, deliver everything inside the /48.
    last = 0.0
    for day in range(45):
        start, end = day * DAY, (day + 1) * DAY
        for agent in agents:
            agent.poll_feeds(last, end)
            for pkt in agent.emit_day(start, end):
                if pkt.dst in my48:
                    telescope.handle(pkt)
        last = end

    records = telescope.capturer.to_records()
    print(f"captured {len(records)} packets from "
          f"{records.unique_sources(128)} sources "
          f"({records.unique_sources(48)} source /48s)")
    print(f"honeypot responses: {telescope.response_count}")
    print(f"feature timeline: "
          f"{[(round(t / DAY, 1), f.value) for t, f, _ in hp.timeline]}")

    # Where in the /48 did scanners probe?  (The paper's guidance: early
    # addresses get the attention.)
    offsets = np.array([d - my48.network for d in records.dst_addresses()],
                       dtype=float)
    low = float(np.mean(offsets < (1 << 20)))
    print(f"probes aimed at the first 2^20 addresses: {low:.0%}")
    domain_addr = next(iter(hp.domain_targets.values()))
    hits = sum(1 for d in records.dst_addresses() if d == domain_addr)
    print(f"probes on the domain's AAAA target: {hits}")


if __name__ == "__main__":
    main()
