"""TGA evaluation bench (the §2.2 target-generation literature in vivo).

Builds a seed set from addresses the telescope actually exposed (domain
targets, honeypot bindings, hitlist entries) plus stale seed regions, and
runs the TGA shootout against the telescope's own responsiveness oracle —
the "Target Acquired?"-style comparison, with the paper's deployment as
the ground truth.
"""

import numpy as np

from repro.scanners.tga_eval import evaluate_tgas


def _seed_set(scenario_result):
    """Seeds a real scanner could plausibly hold: responsive addresses the
    public datasets exposed, plus stale entries for withdrawn prefixes."""
    seeds = []
    for hp in scenario_result.honeyprefixes.values():
        seeds.extend(hp.domain_targets.values())
        seeds.extend(list(hp.responsive)[:6])
        seeds.extend(hp.manual_hitlist_addresses)
        if hp.config.aliased:
            prefix = hp.prefix
            seeds.extend(prefix.network | (i << 64) | 1 for i in range(8))
        seeds.extend(list(hp.subdomain_targets.values())[:4])
    return sorted(set(seeds))


def test_tga_shootout(benchmark, scenario_result, publish):
    telescope = scenario_result.scenario.telescope
    at = scenario_result.end - 1.0
    from repro.net.packet import ICMPV6

    def oracle(address, _at):
        return telescope.responds(address, ICMPV6, None, at)

    seeds = _seed_set(scenario_result)
    assert len(seeds) > 50

    evaluation = benchmark.pedantic(
        evaluate_tgas, args=(seeds, oracle),
        kwargs={"budget": 1_500, "rng": 5},
        rounds=1, iterations=1,
    )
    publish("tga_shootout", evaluation.render())

    random_score = evaluation.score("random")
    # Informed generation beats blind random-in-/32 (the literature's
    # baseline finding); the aliased honeyprefixes give every informed TGA
    # plenty to find.
    for name in ("pattern", "entropy", "6tree"):
        score = evaluation.score(name)
        assert score.hit_rate > random_score.hit_rate
        assert score.new_discoveries > 0
