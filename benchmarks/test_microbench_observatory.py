"""Observatory bench: observer-emission overhead on a streaming run.

One 30-day ``volume_scale=1e-2`` scenario (the streaming bench's
workload), each mode in its own subprocess:

* stream — plain ``run_scenario(stream_analysis=True)``;
* observe — the same run with ``observe_dir`` set, so every day boundary
  additionally classifies tactics, counts new sources, and writes the
  validated observer JSON.

The contract under test is that observing is a rider, not a second
pipeline: the per-day work is vectorized (tactic classification runs the
python path once per *distinct* probe tuple, new-source counting is a
lexsort + set diff), so the observer must stay within a few percent of
the plain streaming wall clock.  The budget below is deliberately looser
than the target headline (≤3% on an idle machine) to keep CI honest on
shared 1-CPU runners; the measured ratio lands in the artifact either
way.  Scan counts from both children must agree — the observer must not
perturb the analysis it rides on.

Manual timing (no ``benchmark`` fixture) so the artifact is produced
even under ``--benchmark-disable``.
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"

#: CI runners are 1-2 shared vCPUs with noisy neighbours; the 3% target
#: is the quiet-machine headline, this is the assertion budget.
WALL_BUDGET = 1.10

from benchmarks.test_microbench_streaming import BENCH_CONFIG  # noqa: E402


def _merge_results(updates: dict) -> dict:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_observatory.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.update(updates)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(updates, indent=2)}\n[merged into {path}]")
    return payload


_DRIVER = """\
import io, json, sys, time

from repro.obs import Journal, use_journal
from repro.sim import ScenarioConfig, run_scenario

mode, data_dir = sys.argv[1], sys.argv[2]
config = ScenarioConfig(**json.loads(sys.argv[3]))
t0 = time.perf_counter()
with use_journal(Journal(io.StringIO())):
    result = run_scenario(
        config, stream_analysis=True,
        observe_dir=(data_dir if mode == "observe" else None))
wall = time.perf_counter() - t0
counts = {name: {str(level): len(events)
                 for level, events in summary.events.items()}
          for name, summary in result.streaming.items()}
print(json.dumps({
    "wall_s": wall,
    "scan_counts": counts,
    "observatory": result.observatory,
}))
"""


def _run_child(mode: str, data_dir: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _DRIVER, mode, data_dir,
         json.dumps(BENCH_CONFIG)],
        check=True, capture_output=True, text=True, env=env)
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_observer_overhead_wall_clock():
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "data")
        plain = _run_child("stream", data_dir)
        observe = _run_child("observe", data_dir)

        # Observation must not perturb the streaming analysis itself.
        assert observe["scan_counts"] == plain["scan_counts"]
        assert observe["observatory"]["days"] == \
            BENCH_CONFIG["duration_days"]

        wall_ratio = observe["wall_s"] / plain["wall_s"]
        _merge_results({
            "days": BENCH_CONFIG["duration_days"],
            "volume_scale": BENCH_CONFIG["volume_scale"],
            "stream_wall_s": round(plain["wall_s"], 3),
            "observe_wall_s": round(observe["wall_s"], 3),
            "wall_ratio_observe_vs_stream": round(wall_ratio, 3),
            "wall_budget": WALL_BUDGET,
            "observer_days": observe["observatory"]["days"],
            "observer_records": observe["observatory"]["records"],
        })

        assert wall_ratio <= WALL_BUDGET, (
            f"observer overhead {wall_ratio:.3f}x plain streaming "
            f"(budget {WALL_BUDGET}x)")
