"""Scenario-service bench: request latency under concurrent HTTP load.

A real :class:`ScenarioServer` is booted in-process and hammered by a
thread-pool load generator (``CLIENTS`` concurrent clients, well past the
acceptance floor of 8).  Two phases share ``results/BENCH_service.json``:

* **cold** — every distinct config is posted simultaneously by several
  clients, so the bench exercises admission, dedupe, and the process-pool
  workers at once; the recorded figure is end-to-end time to *results*
  (POST through completed run);
* **warm** — the same configs re-posted by a fresh service over the same
  cache directory: every request must be answered straight from the
  verified cache, and the p50/p99 request latencies quantify the serving
  overhead without any simulation in the path.

The cache hit ratio comes from the service's own ``/metrics`` surface —
the artifact records what an operator would see, not a bench-side tally.

Manual timing (no ``benchmark`` fixture) so the artifact is produced even
under ``--benchmark-disable``.
"""

import json
import os
import pathlib
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro.service import ScenarioServer, ScenarioService, ServiceClient
from repro.sim import ScenarioConfig

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Concurrent load-generator clients (acceptance floor: >= 8).
CLIENTS = 12

#: Requests per client in the warm phase — enough samples that the p99
#: is a real tail quantile, not the sample maximum.
WARM_REQUESTS_PER_CLIENT = 25

#: Distinct tiny configs: several seconds cold, milliseconds warm.
CONFIGS = [
    ScenarioConfig(seed=seed, duration_days=3, volume_scale=1e-5, n_tail=2)
    for seed in (31, 32, 33, 34)
]


def _merge_results(updates: dict) -> dict:
    """Read-modify-write ``BENCH_service.json`` (same contract as the
    exec bench: phases merge their keys, run order does not matter)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_service.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.update(updates)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(updates, indent=2)}\n[merged into {path}]")
    return payload


def _quantile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _fan_out(worker, n):
    """Run ``worker(i)`` for i in range(n) on n concurrent threads."""
    with ThreadPoolExecutor(max_workers=n) as pool:
        return list(pool.map(worker, range(n)))


def test_service_load():
    with tempfile.TemporaryDirectory() as root:
        cache_dir = os.path.join(root, "cache")

        # -- cold phase: concurrent POSTs, dedupe live, workers busy -----
        server = ScenarioServer(
            ScenarioService(cache_dir, jobs=2, queue_limit=64),
            port=0).start()
        try:
            client = ServiceClient("127.0.0.1", server.port)

            def cold(i):
                config = CONFIGS[i % len(CONFIGS)]
                t0 = time.perf_counter()
                view = client.submit(config)
                submit_s = time.perf_counter() - t0
                client.wait(view["run_id"], timeout=300)
                return submit_s, time.perf_counter() - t0

            cold_samples = _fan_out(cold, CLIENTS)
            cold_total_s = [total for _, total in cold_samples]
            counters = client.metrics()["counters"]
            assert counters["service.cold_runs"] == len(CONFIGS)
            assert counters["service.requests"] == CLIENTS
        finally:
            server.stop()

        # -- warm phase: fresh service, same cache, zero simulations -----
        server = ScenarioServer(
            ScenarioService(cache_dir, jobs=2, queue_limit=64),
            port=0).start()
        try:
            client = ServiceClient("127.0.0.1", server.port)

            def warm(i):
                latencies = []
                for j in range(WARM_REQUESTS_PER_CLIENT):
                    config = CONFIGS[(i + j) % len(CONFIGS)]
                    t0 = time.perf_counter()
                    view = client.submit(config)
                    latencies.append(time.perf_counter() - t0)
                    assert view["state"] == "done"
                return latencies

            t0 = time.perf_counter()
            warm_latencies = [
                s for sub in _fan_out(warm, CLIENTS) for s in sub]
            warm_wall_s = time.perf_counter() - t0

            counters = client.metrics()["counters"]
            requests = counters["service.requests"]
            served_without_run = (counters.get("service.warm_hits", 0)
                                  + counters.get("service.deduped", 0))
            hit_ratio = served_without_run / requests
            # Every warm request is answered from the verified cache.
            assert requests == CLIENTS * WARM_REQUESTS_PER_CLIENT
            assert "service.cold_runs" not in counters
            assert hit_ratio == 1.0
        finally:
            server.stop()

    _merge_results({
        "service_clients": CLIENTS,
        "service_distinct_configs": len(CONFIGS),
        "service_cold_requests": CLIENTS,
        "service_cold_p50_s": round(_quantile(cold_total_s, 0.50), 3),
        "service_cold_p99_s": round(_quantile(cold_total_s, 0.99), 3),
        "service_warm_requests": len(warm_latencies),
        "service_warm_p50_ms": round(
            _quantile(warm_latencies, 0.50) * 1e3, 2),
        "service_warm_p99_ms": round(
            _quantile(warm_latencies, 0.99) * 1e3, 2),
        "service_warm_throughput_rps": round(
            len(warm_latencies) / warm_wall_s, 1),
        "service_warm_cache_hit_ratio": round(hit_ratio, 3),
        "service_bench_cpus": os.cpu_count(),
    })
