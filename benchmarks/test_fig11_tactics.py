"""Figure 11: scanning-tactic combinations per honeyprefix."""

from repro.experiments import fig11


def test_fig11_tactic_combinations(benchmark, scenario_result, publish):
    result = benchmark.pedantic(fig11, args=(scenario_result,),
                                rounds=1, iterations=1)
    publish("fig11", result.render())
    # Paper findings encoded as shape assertions:
    # (D) subdomains are only ever discovered via their TLS certificates.
    assert result.subdomain_tls_coupling_holds()
    # (C1) domain-bearing prefixes show domain-driven scanning.
    assert (result.sources_using("H_Com", "D")
            + result.sources_using("H_Com", "d")) > 0
    # (B) the aliased prefixes attract many ICMP-only scanners.
    assert result.sources_using("H_Alias", "I") > 0
    # (E) manual hitlist insertion shows up on the TPots.
    assert result.sources_using("H_TPot1", "H") > 0
    assert result.sources_using("H_TPot2", "H") > 0
    # (F) H_UDP's manually hitlisted address draws ICMP probing.
    assert result.sources_using("H_UDP", "H") > 0
