"""Figure 7: daily traffic-effect heatmap and trigger jumps."""

import numpy as np

from repro.experiments.effects import fig7


def test_fig7_effect_heatmap(benchmark, scenario_result, publish):
    result = benchmark.pedantic(fig7, args=(scenario_result,),
                                rounds=1, iterations=1)
    publish("fig07", result.render())
    # Scanner attention rises immediately after each BGP announcement.
    for i, name in enumerate(result.names):
        row = result.matrix[i]
        finite = row[np.isfinite(row)]
        assert np.max(finite[:10]) > 0, name
    # Each extra trigger (hitlist insertion, TLS issuance) multiplies the
    # TPot's traffic (an order of magnitude in the paper).
    assert result.trigger_jumps["hitlist"] > 1.5
    assert result.trigger_jumps["tls"] > 1.5
