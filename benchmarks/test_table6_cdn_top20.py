"""Table 6: top-20 CDN source ASes with source-prefix footprints."""

from repro.experiments import table6


def test_table6_top_ases(benchmark, cdn_vantage, publish):
    result = benchmark(table6, cdn_vantage)
    publish("table6", result.render())
    rows = result.rows
    assert len(rows) == 20
    # Paper shape: top AS holds a sub-20% share (dispersed, unlike the 87%
    # concentration of the 2021-era study) and shares decline monotonically.
    assert 0.10 < rows[0]["share"] < 0.35
    shares = [r["share"] for r in rows]
    assert shares == sorted(shares, reverse=True)
    # US and CN dominate the origin mix.
    countries = {r["country"] for r in rows[:7]}
    assert "US" in countries and "CN" in countries
