"""BSTM microbench: the batched bootstrap and the tightened Kalman loops.

The causal-impact estimator dominates ``table4``/``fig7`` wall clock, and
inside it two hot spots dominate: the ``n_resamples``-round bootstrap
(formerly a Python loop drawing per resample) and the per-step Kalman
filters that L-BFGS evaluates dozens of times per fit.  This bench times

* the batched ``bootstrap_draws`` against its retained scalar
  ``bootstrap_draws_reference`` (same generator stream, identical output —
  so the speedup is pure vectorization, no statistical change), and
* the local-level and seasonal Kalman filters at fit-sized inputs,

and writes ``results/BENCH_bstm.json``.  Manual timing (no ``benchmark``
fixture) so the artifact is produced even under ``--benchmark-disable``.
"""

import json
import pathlib
import time

import numpy as np

from repro.analysis.bstm import (
    CausalImpact,
    kalman_filter_local_level,
    kalman_filter_seasonal,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Acceptance bar: batching the bootstrap must win by at least this much.
MIN_BOOTSTRAP_SPEEDUP = 5.0

N_RESAMPLES = 1000
N_POST = 50
SERIES_LEN = 365
ROUNDS = 5


def _bootstrap_inputs():
    rng = np.random.default_rng(17)
    pointwise = rng.normal(40.0, 12.0, size=N_POST)
    cf_sd = np.abs(rng.normal(5.0, 1.0, size=N_POST))
    return pointwise, cf_sd


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bootstrap_batched_vs_reference():
    pointwise, cf_sd = _bootstrap_inputs()
    estimator = CausalImpact(rng=0, n_resamples=N_RESAMPLES)

    batched_s = _best_of(lambda: estimator.bootstrap_draws(
        pointwise, cf_sd, np.random.default_rng(3)))
    reference_s = _best_of(lambda: estimator.bootstrap_draws_reference(
        pointwise, cf_sd, np.random.default_rng(3)))
    speedup = reference_s / batched_s

    # The two paths must agree bitwise — the bench would be meaningless if
    # the fast path cut statistical corners.
    assert np.array_equal(
        estimator.bootstrap_draws(pointwise, cf_sd,
                                  np.random.default_rng(3)),
        estimator.bootstrap_draws_reference(pointwise, cf_sd,
                                            np.random.default_rng(3)),
    )

    z = np.cumsum(np.random.default_rng(8).normal(0, 1, SERIES_LEN)) + 50.0
    z[40:45] = np.nan
    local_s = _best_of(lambda: kalman_filter_local_level(z, 1.0, 0.1))
    seasonal_s = _best_of(
        lambda: kalman_filter_seasonal(z, 1.0, 0.1, 0.01, period=7))

    payload = {
        "n_resamples": N_RESAMPLES,
        "n_post": N_POST,
        "bootstrap_batched_ms": batched_s * 1e3,
        "bootstrap_reference_ms": reference_s * 1e3,
        "bootstrap_speedup": speedup,
        "kalman_series_len": SERIES_LEN,
        "kalman_local_level_ms": local_s * 1e3,
        "kalman_seasonal_ms": seasonal_s * 1e3,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_bstm.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {path}]")

    assert speedup >= MIN_BOOTSTRAP_SPEEDUP, (
        f"batched bootstrap only {speedup:.1f}x faster than the scalar "
        f"reference (want >= {MIN_BOOTSTRAP_SPEEDUP}x)"
    )
