"""Figure 2: weekly CDN scan packets grow ~100x and de-concentrate."""

from repro.experiments import fig2


def test_fig2_cdn_packet_growth(benchmark, cdn_vantage, publish):
    result = benchmark(fig2, cdn_vantage)
    publish("fig02", result.render())
    # Paper shape: packet volume grows two orders of magnitude...
    assert result.growth > 15
    # ...and early-window dominance by the top source fades.
    assert result.early_top_share > result.late_top_share
    assert result.early_top_share > 0.3
