"""Table 7: Twinklenet protocol interactions, exercised live."""

from repro.experiments import table7


def test_table7_twinklenet_interactions(benchmark, publish):
    result = benchmark(table7)
    publish("table7", result.render())
    i = result.interactions
    assert i["ICMPv6 echo request"] == "ICMPv6 Echo reply"
    assert i["any DNS query (UDP/53)"] == "DNS SERVFAIL"
    assert i["any NTP client packet (UDP/123)"] == "NTP kiss-of-death (DENY)"
    # Darknet semantics preserved for everything unbound.
    assert i["TCP SYN to closed port"] == "(silence)"
    assert i["ICMPv6 echo to dark address"] == "(silence)"
