"""Figure 9: scanners stay within the announced /48 scope."""

from repro.experiments import fig9


def test_fig9_scanner_scope(benchmark, scenario_result, publish):
    result = benchmark(fig9, scenario_result)
    publish("fig09", result.render())
    # Paper shape: 95% of scanners probe <=2 /48s; 99.97% stay within the
    # experiment's 27; one rare wide scanner roams the covering /32.
    assert result.frac_2 > 0.6
    assert result.frac_11 > 0.9
    assert result.frac_27 > 0.99
    # 98.4% of traffic goes to honeyprefixes; about half of the rest hits
    # the first 16 /48s of the covering /32.
    assert result.report.honeyprefix_traffic_share > 0.9
    assert 0.2 < result.report.low_prefix_share_of_other < 0.9
    assert result.report.wide_scanners >= 1
