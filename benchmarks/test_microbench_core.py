"""Library performance micro-benchmarks for the packet-path hot spots.

Not paper figures — these guard the throughput of the components a
downstream deployment would stress: the Twinklenet responder, the DNAT
gateway, columnar aggregation, scan detection, flow aggregation, overlap
shares, and pcap serialization.

The vectorized analysis paths are benchmarked side by side with their
retained ``_reference`` per-packet implementations, and
``test_scan_detection_speedup`` measures the ratio directly so the
speedup is a number in the benchmark output, not a hand-waved claim.
"""

import time

import numpy as np
import pytest

from repro.analysis.flows import aggregate_flows, aggregate_flows_reference
from repro.analysis.jaccard import (
    _dest_share,
    _dest_share_reference,
    _traffic_share,
    _traffic_share_reference,
)
from repro.analysis.records import PacketRecords
from repro.analysis.scandetect import detect_scans, detect_scans_reference
from repro.core.honeyprefix import HoneyprefixConfig, IcmpMode, deploy_addresses
from repro.core.tpot import DnatGateway, TPOT1_CONTAINERS, TPotInstance
from repro.core.twinklenet import Twinklenet, TwinklenetConfig
from repro.net.addr import IPv6Prefix
from repro.net.packet import TcpFlags, icmp_echo_request, tcp_segment
from repro.net.realpcap import serialize_frame

PREFIX = IPv6Prefix.parse("2001:db8:77::/48")


@pytest.fixture(scope="module")
def ping_burst():
    rng = np.random.default_rng(0)
    return [
        icmp_echo_request(
            float(i),
            0x2620_0000 << 96 | int(rng.integers(1 << 48)),
            PREFIX.network | int(rng.integers(1 << 32)),
        )
        for i in range(5_000)
    ]


@pytest.fixture(scope="module")
def multi_source_burst():
    """5k packets from 40 rotating /64s — the grouped-detection workload."""
    rng = np.random.default_rng(3)
    return [
        icmp_echo_request(
            float(rng.uniform(0, 50_000)),
            (0x2620_0000 << 96) | (int(rng.integers(40)) << 64)
            | int(rng.integers(1 << 40)),
            PREFIX.network | int(rng.integers(1 << 32)),
        )
        for i in range(5_000)
    ]


def test_twinklenet_throughput(benchmark, ping_burst):
    config = HoneyprefixConfig(name="bench", aliased=True,
                               icmp_mode=IcmpMode.FULL)
    hp = deploy_addresses(config, PREFIX, rng=0)
    pot = Twinklenet(TwinklenetConfig([hp]))

    def drain():
        for pkt in ping_burst:
            pot.handle(pkt)

    benchmark(drain)
    assert pot.tx_count > 0


def test_dnat_gateway_throughput(benchmark):
    tpot = TPotInstance("bench", TPOT1_CONTAINERS)
    gateway = DnatGateway(PREFIX, tpot)
    rng = np.random.default_rng(1)
    syns = [
        tcp_segment(float(i), 0x2620_0000 << 96 | i,
                    PREFIX.network | int(rng.integers(1 << 32)),
                    4000 + (i % 1000), 22, TcpFlags.SYN)
        for i in range(2_000)
    ]

    def drain():
        for pkt in syns:
            gateway.handle(pkt)

    benchmark(drain)
    assert gateway.nat_log


def test_records_aggregation_throughput(benchmark, ping_burst):
    records = PacketRecords.from_packets(ping_burst)

    def aggregate():
        return (records.unique_sources(64), records.unique_destinations(48))

    u64, u48 = benchmark(aggregate)
    assert u64 > 0 and u48 == 1


def test_scan_detection_throughput(benchmark, ping_burst):
    records = PacketRecords.from_packets(ping_burst)
    events = benchmark(detect_scans, records, 48, 100, 3_600.0)
    assert isinstance(events, list)


def test_scan_detection_reference_throughput(benchmark, ping_burst):
    records = PacketRecords.from_packets(ping_burst)
    events = benchmark(detect_scans_reference, records, 48, 100, 3_600.0)
    assert isinstance(events, list)


def test_scan_detection_speedup(ping_burst):
    """Measured vectorized-vs-reference ratio on the 5k-packet burst.

    The acceptance bar is >= 10x; the assertion floor is lower so noisy
    CI machines don't flap, while the printed number records the real
    ratio for the benchmark log.
    """
    records = PacketRecords.from_packets(ping_burst)

    def best_of(func, reps=7):
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            result = func(records, 48, 100, 3_600.0)
            times.append(time.perf_counter() - t0)
        return min(times), result

    t_ref, ref_events = best_of(detect_scans_reference)
    t_vec, vec_events = best_of(detect_scans)
    assert vec_events == ref_events
    speedup = t_ref / t_vec
    print(f"\ndetect_scans 5k burst: reference {t_ref * 1e3:.2f} ms, "
          f"vectorized {t_vec * 1e3:.3f} ms, speedup {speedup:.1f}x")
    assert speedup >= 5.0


def test_flow_aggregation_throughput(benchmark, multi_source_burst):
    records = PacketRecords.from_packets(multi_source_burst)
    flows = benchmark(aggregate_flows, records, 60.0)
    assert flows


def test_flow_aggregation_reference_throughput(benchmark, multi_source_burst):
    records = PacketRecords.from_packets(multi_source_burst)
    flows = benchmark(aggregate_flows_reference, records, 60.0)
    assert flows


def test_overlap_share_throughput(benchmark, ping_burst, multi_source_burst):
    records_a = PacketRecords.from_packets(ping_burst)
    records_b = PacketRecords.from_packets(multi_source_burst)
    shared = records_a.source_set(64) & records_b.source_set(64)
    shared |= {next(iter(records_a.source_set(64)))}

    def shares():
        return (_traffic_share(records_a, shared, 64),
                _dest_share(records_a, shared, 64))

    traffic, dest = benchmark(shares)
    assert traffic == _traffic_share_reference(records_a, shared, 64)
    assert dest == _dest_share_reference(records_a, shared, 64)


def test_overlap_share_reference_throughput(benchmark, ping_burst,
                                            multi_source_burst):
    records_a = PacketRecords.from_packets(ping_burst)
    records_b = PacketRecords.from_packets(multi_source_burst)
    shared = records_a.source_set(64) & records_b.source_set(64)
    shared |= {next(iter(records_a.source_set(64)))}

    def shares():
        return (_traffic_share_reference(records_a, shared, 64),
                _dest_share_reference(records_a, shared, 64))

    traffic, dest = benchmark(shares)
    assert 0.0 <= traffic <= 1.0 and 0.0 <= dest <= 1.0


def test_pcap_serialization_throughput(benchmark, ping_burst):
    sample = ping_burst[:1_000]

    def serialize():
        return sum(len(serialize_frame(p)) for p in sample)

    total = benchmark(serialize)
    assert total > 0
