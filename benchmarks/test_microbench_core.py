"""Library performance micro-benchmarks for the packet-path hot spots.

Not paper figures — these guard the throughput of the components a
downstream deployment would stress: the Twinklenet responder, the DNAT
gateway, columnar aggregation, scan detection, and pcap serialization.
"""

import numpy as np
import pytest

from repro.analysis.records import PacketRecords
from repro.analysis.scandetect import detect_scans
from repro.core.honeyprefix import HoneyprefixConfig, IcmpMode, deploy_addresses
from repro.core.tpot import DnatGateway, TPOT1_CONTAINERS, TPotInstance
from repro.core.twinklenet import Twinklenet, TwinklenetConfig
from repro.net.addr import IPv6Prefix
from repro.net.packet import TcpFlags, icmp_echo_request, tcp_segment
from repro.net.realpcap import serialize_frame

PREFIX = IPv6Prefix.parse("2001:db8:77::/48")


@pytest.fixture(scope="module")
def ping_burst():
    rng = np.random.default_rng(0)
    return [
        icmp_echo_request(
            float(i),
            0x2620_0000 << 96 | int(rng.integers(1 << 48)),
            PREFIX.network | int(rng.integers(1 << 32)),
        )
        for i in range(5_000)
    ]


def test_twinklenet_throughput(benchmark, ping_burst):
    config = HoneyprefixConfig(name="bench", aliased=True,
                               icmp_mode=IcmpMode.FULL)
    hp = deploy_addresses(config, PREFIX, rng=0)
    pot = Twinklenet(TwinklenetConfig([hp]))

    def drain():
        for pkt in ping_burst:
            pot.handle(pkt)

    benchmark(drain)
    assert pot.tx_count > 0


def test_dnat_gateway_throughput(benchmark):
    tpot = TPotInstance("bench", TPOT1_CONTAINERS)
    gateway = DnatGateway(PREFIX, tpot)
    rng = np.random.default_rng(1)
    syns = [
        tcp_segment(float(i), 0x2620_0000 << 96 | i,
                    PREFIX.network | int(rng.integers(1 << 32)),
                    4000 + (i % 1000), 22, TcpFlags.SYN)
        for i in range(2_000)
    ]

    def drain():
        for pkt in syns:
            gateway.handle(pkt)

    benchmark(drain)
    assert gateway.nat_log


def test_records_aggregation_throughput(benchmark, ping_burst):
    records = PacketRecords.from_packets(ping_burst)

    def aggregate():
        return (records.unique_sources(64), records.unique_destinations(48))

    u64, u48 = benchmark(aggregate)
    assert u64 > 0 and u48 == 1


def test_scan_detection_throughput(benchmark, ping_burst):
    records = PacketRecords.from_packets(ping_burst)
    events = benchmark(detect_scans, records, 48, 100, 3_600.0)
    assert isinstance(events, list)


def test_pcap_serialization_throughput(benchmark, ping_burst):
    sample = ping_burst[:1_000]

    def serialize():
        return sum(len(serialize_frame(p)) for p in sample)

    total = benchmark(serialize)
    assert total > 0
