"""Ground truth: detection graded against the simulated scanner population."""

from repro.experiments import groundtruth


def test_groundtruth_scoring(benchmark, scenario_result, publish):
    result = benchmark(groundtruth, scenario_result)
    publish("groundtruth", result.render())
    # Every telescope carries a provenance sidecar.
    assert all(result.truth_rows[name] > 0 for name in result.truth_rows)
    nta = result.scores["NT-A"]
    # The paper's motivation for source aggregation, quantified: /64
    # reunites rotating scanners that per-address detection fragments.
    assert nta[64].recall >= nta[128].recall
    # Aggregation also surfaces scanners whose per-address flows sit below
    # the detection threshold, so /64 finds at least as many events too.
    assert nta[64].n_events >= nta[128].n_events
    assert all(0.0 <= nta[n].precision <= 1.0 for n in nta)
