"""Table 3/8: top ASN sources of unsolicited traffic in NT-A."""

from repro.experiments import table3


def test_table3_top_asns(benchmark, scenario_result, publish):
    result = benchmark(table3, scenario_result)
    publish("table3", result.render())
    rows = {r.name: r for r in result.rows}
    # Paper shape: AMAZON-02 and CNGI-CERNET together carry ~80%.
    top2 = [r.name for r in result.rows[:2]]
    assert set(top2) == {"AMAZON-02", "CNGI-CERNET"}
    assert result.top2_share > 0.55
    # The signature contrast: comparable volume, wildly different source
    # counts (44k /128s vs 46 in the paper).
    amazon, cernet = rows["AMAZON-02"], rows["CNGI-CERNET"]
    assert amazon.unique_128 > 20 * cernet.unique_128
    # Clustering: Amazon's /128s collapse into few /64s (336 in the paper).
    assert amazon.unique_128 > 3 * amazon.unique_64
    assert cernet.unique_64 <= 4
