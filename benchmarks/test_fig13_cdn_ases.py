"""Figure 13: the number of scanning ASes at the CDN grows steadily."""

from repro.experiments import fig13


def test_fig13_cdn_as_growth(benchmark, cdn_vantage, publish):
    result = benchmark(fig13, cdn_vantage)
    publish("fig13", result.render())
    assert result.growth > 2
    assert result.ases[-1] > result.ases[0]
