"""Figure 1: weekly CDN scan sources grow across aggregation levels."""

from repro.experiments import fig1


def test_fig1_cdn_source_growth(benchmark, cdn_vantage, publish):
    result = benchmark(fig1, cdn_vantage)
    publish("fig01", result.render())
    # Paper shape: /128 sources more than double; /64 and /48 grow too.
    assert result.growth_128 > 1.5
    assert result.growth_64 > 1.5
    assert result.growth_48 > 1.5
    # Aggregated counts are ordered: /128 >= /64 >= /48 in every week.
    assert (result.sources_64 >= result.sources_48).all()
