"""Executor bench: serial vs parallel vs warm-cache end-to-end wall clock.

Two wall-clock benches share ``results/BENCH_exec.json`` (each merges its
keys into the file, so run order does not matter):

* ``test_exec_wall_clock`` times ``run_experiments`` over the full
  experiment set — serial, ``jobs=2`` across report sections, and a
  warm-cache rerun;
* ``test_scenario_jobs_wall_clock`` times one 30-day ``run_scenario``
  serial vs intra-scenario agent sharding (``jobs=2``/``jobs=4``) and
  asserts the rendered reports are byte-identical for every jobs value.

Determinism is always asserted; wall-clock wins are asserted only where
the hardware can deliver them (the sharding speedup needs >= 2 cores —
on a single-core runner fan-out cannot win, and an honest artifact beats
a flaky assertion).

Manual timing (no ``benchmark`` fixture) so the artifact is produced even
under ``--benchmark-disable``.
"""

import json
import os
import pathlib
import tempfile
import time

from repro.exec import run_experiments
from repro.sim import ScenarioConfig, run_scenario

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def _merge_results(updates: dict) -> dict:
    """Read-modify-write ``BENCH_exec.json`` so the two benches in this
    module never clobber each other's keys."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_exec.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.update(updates)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(updates, indent=2)}\n[merged into {path}]")
    return payload

#: Small enough to keep the bench minutes-free, long enough that every
#: honeyprefix trigger lands inside the horizon.
BENCH_CONFIG = ScenarioConfig(
    seed=23, duration_days=40, volume_scale=1e-4, n_tail=40,
    phase1_day=5, phase2_day=8, phase3_day=11, specific_start_day=14,
    tls_offset_days=7, tpot_hitlist_offset_days=10, tpot_tls_offset_days=16,
    udp_hitlist_offset_days=4, withdraw_after_days=30,
)


def _timed(**kwargs):
    t0 = time.perf_counter()
    report = run_experiments(config=BENCH_CONFIG, **kwargs)
    return report, time.perf_counter() - t0


def test_exec_wall_clock():
    with tempfile.TemporaryDirectory() as cache_dir:
        serial_report, serial_s = _timed(jobs=1)
        jobs2_report, jobs2_s = _timed(jobs=2)
        cold_report, cold_s = _timed(jobs=1, cache_dir=cache_dir)
        warm_report, warm_s = _timed(jobs=1, cache_dir=cache_dir)

    assert jobs2_report == serial_report
    assert cold_report == serial_report
    assert warm_report == serial_report

    _merge_results({
        "days": BENCH_CONFIG.duration_days,
        "volume_scale": BENCH_CONFIG.volume_scale,
        "experiments": "all",
        "serial_s": round(serial_s, 3),
        "jobs2_s": round(jobs2_s, 3),
        "cold_cache_s": round(cold_s, 3),
        "warm_cache_s": round(warm_s, 3),
        "warm_speedup_vs_serial": round(serial_s / warm_s, 2),
    })

    # Skipping the simulation must pay for the load + checksum pass.
    assert warm_s < serial_s


#: One scenario, heavy enough that the day loop dominates construction:
#: the regime intra-scenario sharding targets.
SHARD_CONFIG = ScenarioConfig(
    seed=23, duration_days=30, volume_scale=5e-4, n_tail=100,
    phase1_day=5, phase2_day=8, phase3_day=11, specific_start_day=14,
    tls_offset_days=7, tpot_hitlist_offset_days=10, tpot_tls_offset_days=16,
    udp_hitlist_offset_days=4, withdraw_after_days=20,
)


def test_scenario_jobs_wall_clock():
    """Intra-scenario sharding: wall clock per jobs value, reports byte-
    identical for jobs in {1, 2, 4} (the determinism contract)."""
    timings = {}
    reports = {}
    for jobs in (1, 2, 4):
        t0 = time.perf_counter()
        result = run_scenario(SHARD_CONFIG, jobs=jobs)
        timings[jobs] = time.perf_counter() - t0
        reports[jobs] = run_experiments(
            ids=["table1", "table3", "fig5", "fig10"], result=result)

    assert reports[2] == reports[1]
    assert reports[4] == reports[1]

    speedup = timings[1] / timings[2]
    _merge_results({
        "scenario_days": SHARD_CONFIG.duration_days,
        "scenario_volume_scale": SHARD_CONFIG.volume_scale,
        "scenario_serial_s": round(timings[1], 3),
        "scenario_jobs2_s": round(timings[2], 3),
        "scenario_jobs4_s": round(timings[4], 3),
        "scenario_jobs2_speedup": round(speedup, 2),
        "scenario_bench_cpus": os.cpu_count(),
    })

    # Replicated-world sharding only pays when the replicas get their own
    # cores; asserting a speedup on one core would test the scheduler.
    if (os.cpu_count() or 1) >= 2:
        assert speedup >= 1.4, (
            f"jobs=2 speedup {speedup:.2f}x < 1.4x on "
            f"{os.cpu_count()} cores"
        )
