"""Executor bench: serial vs parallel vs warm-cache end-to-end wall clock.

Times ``run_experiments`` over the full experiment set three ways — serial,
``jobs=2``, and a warm-cache rerun — and writes ``results/BENCH_exec.json``.
All three reports are asserted byte-identical (the executor's determinism
contract), and the warm run must beat the cold one since it skips the
simulation entirely.  The parallel number is recorded but *not* asserted:
on a single-core runner process fan-out cannot win, and an honest artifact
beats a flaky assertion.

Manual timing (no ``benchmark`` fixture) so the artifact is produced even
under ``--benchmark-disable``.
"""

import json
import pathlib
import tempfile
import time

from repro.exec import run_experiments
from repro.sim import ScenarioConfig

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Small enough to keep the bench minutes-free, long enough that every
#: honeyprefix trigger lands inside the horizon.
BENCH_CONFIG = ScenarioConfig(
    seed=23, duration_days=40, volume_scale=1e-4, n_tail=40,
    phase1_day=5, phase2_day=8, phase3_day=11, specific_start_day=14,
    tls_offset_days=7, tpot_hitlist_offset_days=10, tpot_tls_offset_days=16,
    udp_hitlist_offset_days=4, withdraw_after_days=30,
)


def _timed(**kwargs):
    t0 = time.perf_counter()
    report = run_experiments(config=BENCH_CONFIG, **kwargs)
    return report, time.perf_counter() - t0


def test_exec_wall_clock():
    with tempfile.TemporaryDirectory() as cache_dir:
        serial_report, serial_s = _timed(jobs=1)
        jobs2_report, jobs2_s = _timed(jobs=2)
        cold_report, cold_s = _timed(jobs=1, cache_dir=cache_dir)
        warm_report, warm_s = _timed(jobs=1, cache_dir=cache_dir)

    assert jobs2_report == serial_report
    assert cold_report == serial_report
    assert warm_report == serial_report

    payload = {
        "days": BENCH_CONFIG.duration_days,
        "volume_scale": BENCH_CONFIG.volume_scale,
        "experiments": "all",
        "serial_s": round(serial_s, 3),
        "jobs2_s": round(jobs2_s, 3),
        "cold_cache_s": round(cold_s, 3),
        "warm_cache_s": round(warm_s, 3),
        "warm_speedup_vs_serial": round(serial_s / warm_s, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_exec.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {path}]")

    # Skipping the simulation must pay for the load + checksum pass.
    assert warm_s < serial_s
