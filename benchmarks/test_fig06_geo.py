"""Figure 6: geographic distribution of scanner sources."""

from repro.experiments import fig6


def test_fig6_geography(benchmark, scenario_result, publish):
    result = benchmark(fig6, scenario_result)
    publish("fig06", result.render())
    # Paper shape: Germany leads on unique /128 sources because of the
    # AlphaStrike-style /30 address spread; US and CN follow.
    assert result.top_country == "DE"
    top5 = sorted(result.by_country, key=result.by_country.get,
                  reverse=True)[:5]
    assert "US" in top5
