"""End-to-end packet-path microbench: emit → dispatch → capture.

Times the columnar ``PacketBatch`` pipeline against the retained per-packet
reference at ``volume_scale=1e-2`` (the scale the longitudinal sweeps need),
plus a 30-day ``run_scenario`` wall-clock comparison.  Both measurements are
written to ``results/BENCH_pipeline.json`` so the perf trajectory has data
points PR-over-PR.

Manual timing (no ``benchmark`` fixture) so the numbers are produced even
under ``--benchmark-disable`` — same idiom as
``test_scan_detection_speedup`` in the core microbench.
"""

import json
import pathlib
import time

import pytest

from repro.sim import run_scenario
from repro.sim.scenario import PaperScenario, ScenarioConfig

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Paper-scale packet budget for the microbench window.
PIPELINE_SCALE = 1e-2
#: Warm up until every scanner cohort is live (phases compressed below),
#: then time the steady-state days where the packet volume peaks.
WARMUP_DAYS = 14
MEASURE_DAYS = 2

SCENARIO_DAYS = 30
SCENARIO_SCALE = 1e-3


def _config(use_batch, days, scale, n_tail):
    return ScenarioConfig(
        seed=29, duration_days=days, volume_scale=scale, n_tail=n_tail,
        phase1_day=4, phase2_day=7, phase3_day=10, specific_start_day=12,
        use_batch_path=use_batch,
    )


def _measure_pipeline(use_batch):
    """Run the warmup days untimed, then time the steady-state window."""
    scenario = PaperScenario(_config(
        use_batch, WARMUP_DAYS + MEASURE_DAYS, PIPELINE_SCALE, n_tail=20,
    ))
    for day in range(WARMUP_DAYS):
        scenario.run_day(day)
    t0 = time.perf_counter()
    emitted = sum(scenario.run_day(WARMUP_DAYS + day)
                  for day in range(MEASURE_DAYS))
    return time.perf_counter() - t0, emitted


def _measure_scenario(use_batch):
    config = _config(use_batch, SCENARIO_DAYS, SCENARIO_SCALE, n_tail=40)
    t0 = time.perf_counter()
    result = run_scenario(config)
    return time.perf_counter() - t0, len(result.nta)


@pytest.fixture(scope="module")
def bench():
    scalar_s, scalar_packets = _measure_pipeline(use_batch=False)
    batch_s, batch_packets = _measure_pipeline(use_batch=True)
    scen_scalar_s, scen_scalar_nta = _measure_scenario(use_batch=False)
    scen_batch_s, scen_batch_nta = _measure_scenario(use_batch=True)
    data = {
        "pipeline": {
            "volume_scale": PIPELINE_SCALE,
            "warmup_days": WARMUP_DAYS,
            "measure_days": MEASURE_DAYS,
            "packets": scalar_packets,
            "scalar_s": round(scalar_s, 4),
            "batch_s": round(batch_s, 4),
            "speedup": round(scalar_s / batch_s, 2),
        },
        "run_scenario_30d": {
            "volume_scale": SCENARIO_SCALE,
            "days": SCENARIO_DAYS,
            "nta_records_scalar": scen_scalar_nta,
            "nta_records_batch": scen_batch_nta,
            "scalar_s": round(scen_scalar_s, 4),
            "batch_s": round(scen_batch_s, 4),
            "speedup": round(scen_scalar_s / scen_batch_s, 2),
        },
        # Emission counts are tied by the shared Poisson stream; capture
        # counts are not (contents come from independent draws), so only
        # the former is an exact-equality invariant.
        "counts_identical": scalar_packets == batch_packets,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_pipeline.json"
    path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\n{json.dumps(data, indent=2)}\n[written to {path}]")
    return data


def test_both_paths_emit_identical_counts(bench):
    """Same seed ⇒ same Poisson stream ⇒ the timed windows carry the exact
    same number of packets, so the ratio compares equal work.  (Capture
    sizes differ slightly: packet *contents* come from independent draws.)"""
    assert bench["counts_identical"]
    scalar_nta = bench["run_scenario_30d"]["nta_records_scalar"]
    batch_nta = bench["run_scenario_30d"]["nta_records_batch"]
    assert abs(scalar_nta - batch_nta) / max(scalar_nta, batch_nta) < 0.1


def test_pipeline_speedup(bench):
    """Acceptance bar: >= 5x emit→dispatch→capture at volume_scale=1e-2.

    Recent local measurement: ~16x.  The assertion sits at the bar itself —
    the margin above it absorbs CI noise.
    """
    assert bench["pipeline"]["speedup"] >= 5.0


def test_run_scenario_30day_speedup(bench):
    """Target: >= 2x on a 30-day run_scenario wall clock.  The assertion
    floor is lower so shared runners don't flap; the JSON records the
    real ratio."""
    assert bench["run_scenario_30d"]["speedup"] >= 1.5
