"""Figure 5: per-AS-type traffic/source/destination breakdown."""

from repro.datasets.asdb import AsCategory
from repro.experiments import fig5


def test_fig5_as_type_breakdown(benchmark, scenario_result, publish):
    result = benchmark(fig5, scenario_result)
    publish("fig05", result.render())
    # Paper shape: ICMPv6 dominates overall (91.6%).
    assert result.icmp_share > 0.7
    # Internet Scanner ASes are the TCP-heavy outlier.
    scanners = result.category(AsCategory.INTERNET_SCANNER)
    assert scanners.dominant_protocol == "tcp"
    # Hosting/cloud generates the most packets.
    cloud = result.category(AsCategory.HOSTING_CLOUD)
    re_stats = result.category(AsCategory.RESEARCH_EDUCATION)
    assert cloud.packets > 0 and re_stats.packets > 0
    assert cloud.dominant_protocol == "icmpv6"
    # R&E probes by far the most unique destinations (95% in the paper).
    assert result.re_dest_share > 0.4
    assert (re_stats.unique_destinations_128
            > cloud.unique_destinations_128)
