"""Honeypot reply-path microbench: scalar react vs columnar react.

Times only the reaction half of ``ProactiveTelescope.handle_batch`` — the
``telescope.react`` stage timer — over a 30-day scenario whose traffic is
honeypot-heavy (the aliased prefix and both T-Pot prefixes are deployed
from day 2, so a large share of NT-A rows reaches Twinklenet or a DNAT
gateway).  Both runs use the batch emit→dispatch→capture pipeline; only
``use_batch_react`` differs, so the ratio isolates the reply kernels.

Results land in ``results/BENCH_react.json``.  Manual timing (no
``benchmark`` fixture) so the numbers are produced even under
``--benchmark-disable`` — same idiom as the pipeline microbench.
"""

import json
import pathlib
import time

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.sim.scenario import PaperScenario, ScenarioConfig

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

DAYS = 30
VOLUME_SCALE = 1e-2


def _config(use_batch_react):
    return ScenarioConfig(
        seed=31, duration_days=DAYS, volume_scale=VOLUME_SCALE, n_tail=20,
        phase1_day=2, phase2_day=4, phase3_day=6, specific_start_day=8,
        tpot_hitlist_offset_days=3, tpot_tls_offset_days=5,
        use_batch_path=True, use_batch_react=use_batch_react,
    )


def _measure(use_batch_react):
    """Run the scenario under a private registry; return the react stage's
    accumulated wall clock plus honeypot rx/tx tallies."""
    registry = MetricsRegistry()
    with use_registry(registry):
        scenario = PaperScenario(_config(use_batch_react))
        t0 = time.perf_counter()
        for day in range(DAYS):
            scenario.run_day(day)
        total_s = time.perf_counter() - t0
    timings = registry.snapshot()["timings"]
    react_s = timings["telescope.react"]["total"]
    gateways_rx = sum(g.rx_count for g in scenario.telescope.gateways.values())
    return {
        "react_s": react_s,
        "total_s": total_s,
        "honeypot_rx": scenario.telescope.twinklenet.rx_count + gateways_rx,
        "replies": scenario.telescope.response_count,
    }


@pytest.fixture(scope="module")
def bench():
    scalar = _measure(use_batch_react=False)
    batch = _measure(use_batch_react=True)
    data = {
        "config": {"days": DAYS, "volume_scale": VOLUME_SCALE},
        "honeypot_rx": scalar["honeypot_rx"],
        "replies": scalar["replies"],
        "react": {
            "scalar_s": round(scalar["react_s"], 4),
            "batch_s": round(batch["react_s"], 4),
            "speedup": round(scalar["react_s"] / batch["react_s"], 2),
        },
        "run_total": {
            "scalar_s": round(scalar["total_s"], 4),
            "batch_s": round(batch["total_s"], 4),
            "speedup": round(scalar["total_s"] / batch["total_s"], 2),
        },
        # Reaction is a pure sink of the emission stream, so the two runs
        # see identical traffic and must produce identical reply counts —
        # the ratio above compares equal work.
        "replies_identical": scalar["replies"] == batch["replies"],
        "rx_identical": scalar["honeypot_rx"] == batch["honeypot_rx"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_react.json"
    path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\n{json.dumps(data, indent=2)}\n[written to {path}]")
    return data


def test_both_paths_answer_identically(bench):
    """Same seed + pure-sink reaction ⇒ identical honeypot rx and reply
    counts; the timed ratio compares equal work."""
    assert bench["replies_identical"]
    assert bench["rx_identical"]


def test_react_speedup(bench):
    """Acceptance bar: >= 5x on the reply path (``telescope.react``)."""
    assert bench["react"]["speedup"] >= 5.0
