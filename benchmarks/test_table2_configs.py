"""Table 2: honeyprefix configuration matrix."""

from repro.core.features import Feature
from repro.experiments import table2


def test_table2_configurations(benchmark, publish):
    result = benchmark(table2)
    publish("table2", result.render())
    assert result.count == 27
    # Spot-check rows against the paper's matrix.
    alias = result.by_name("H_Alias")
    assert alias.aliased and not alias.domains
    udp = result.by_name("H_UDP")
    assert udp.udp_ports == (53, 123) and udp.hitlist_manual
    orgnet = result.by_name("H_Org/net")
    assert orgnet.domains == ("org", "net") and orgnet.subdomains
    combined = result.by_name("H_Combined")
    assert Feature.ICMP in combined.planned_features
    assert Feature.TCP in combined.planned_features
    assert Feature.UDP in combined.planned_features
    assert Feature.DOMAIN in combined.planned_features
    tcp = result.by_name("H_TCP")
    assert tcp.announce_fails
