"""Observability overhead microbench: the null layers must be ~free.

The tracing/journal instrumentation is compiled into the hot paths, so a
"without instrumentation" baseline no longer exists to diff against.
Instead the bench bounds the overhead analytically: measure the per-call
cost of a null span and a null journal emit, count how many of each a real
run performs (by running once with the layers *enabled*), and bound the
null-path tax as ``calls x per-call cost`` against the untraced wall clock.
The bound, plus the enabled-tracer slowdown for context, is written to
``results/BENCH_obs.json`` so the overhead trajectory has data PR-over-PR.

Manual timing (no ``benchmark`` fixture) so the numbers are produced even
under ``--benchmark-disable`` — same idiom as the pipeline microbench.
"""

import io
import json
import pathlib
import time

from repro.obs import (
    NULL_JOURNAL,
    NULL_TRACER,
    Journal,
    Tracer,
    use_journal,
    use_tracer,
)
from repro.sim import ScenarioConfig, run_scenario

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Acceptance bar: the null-layer tax on an untraced run stays under ~3%.
MAX_NULL_OVERHEAD_PCT = 3.0

NULL_CALL_ITERS = 200_000
BENCH_DAYS = 20
BENCH_SCALE = 1e-3


def _config():
    return ScenarioConfig(
        seed=29, duration_days=BENCH_DAYS, volume_scale=BENCH_SCALE,
        n_tail=40, phase1_day=4, phase2_day=7, phase3_day=10,
        specific_start_day=12,
    )


def _null_span_seconds():
    """Per-call cost of entering and exiting the shared null span."""
    t0 = time.perf_counter()
    for _ in range(NULL_CALL_ITERS):
        with NULL_TRACER.span("bench", size=1):
            pass
    return (time.perf_counter() - t0) / NULL_CALL_ITERS


def _null_emit_seconds():
    """Per-call cost of a null journal emit (no validation, no I/O)."""
    t0 = time.perf_counter()
    for _ in range(NULL_CALL_ITERS):
        NULL_JOURNAL.emit("day", day=0, emitted=0)
    return (time.perf_counter() - t0) / NULL_CALL_ITERS


def _measure_runs():
    """Wall-clock an untraced run, then an identical fully-traced run."""
    t0 = time.perf_counter()
    run_scenario(_config())
    null_s = time.perf_counter() - t0

    tracer = Tracer()
    journal = Journal(io.StringIO())
    t0 = time.perf_counter()
    with use_tracer(tracer), use_journal(journal):
        run_scenario(_config())
    traced_s = time.perf_counter() - t0
    return null_s, traced_s, len(tracer.spans), journal.records_written


def test_null_layer_overhead_bounded():
    span_s = _null_span_seconds()
    emit_s = _null_emit_seconds()
    null_s, traced_s, n_spans, n_records = _measure_runs()
    tax_s = n_spans * span_s + n_records * emit_s
    overhead_pct = 100.0 * tax_s / null_s
    data = {
        "null_span_ns": round(span_s * 1e9, 1),
        "null_emit_ns": round(emit_s * 1e9, 1),
        "run": {
            "days": BENCH_DAYS,
            "volume_scale": BENCH_SCALE,
            "spans": n_spans,
            "journal_records": n_records,
            "untraced_s": round(null_s, 4),
            "traced_s": round(traced_s, 4),
            "traced_slowdown": round(traced_s / null_s, 3),
        },
        "null_overhead_pct": round(overhead_pct, 4),
        "max_null_overhead_pct": MAX_NULL_OVERHEAD_PCT,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_obs.json"
    path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\n{json.dumps(data, indent=2)}\n[written to {path}]")

    # The whole point of the null-object layers: when nothing is installed,
    # the instrumentation must cost a rounding error.
    assert overhead_pct <= MAX_NULL_OVERHEAD_PCT
    # Sanity on the inputs to the bound: a real run produces real spans.
    assert n_spans > BENCH_DAYS  # at least one span per simulated day
    assert n_records >= BENCH_DAYS + 2  # manifest + days + run_end
