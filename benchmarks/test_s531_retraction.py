"""§5.3.1: scanning dies quickly after a BGP retraction."""

from repro.experiments import s531_retraction


def test_s531_retraction(benchmark, scenario_result, publish):
    result = benchmark(s531_retraction, scenario_result)
    publish("s531", result.render())
    assert result.packets_week_before > 0
    # Paper: persistent scanning diminished to a negligible level.
    assert result.suppression > 0.8
