"""Figure 8: ASN diversity stays flat while traffic decays."""

from repro.experiments.effects import fig8


def test_fig8_longitudinal_asn_vs_traffic(benchmark, scenario_result,
                                          publish):
    result = benchmark(fig8, scenario_result)
    publish("fig08", result.render())
    # Unique source-ASN counts remain comparatively stable after the
    # initial burst (the paper's key Figure 8 observation)...
    for name in result.names:
        assert result.stability(name) > 0.25, name
    # ...while traffic on the non-trigger prefixes converges to a lower
    # stable value.
    assert result.traffic_decay("H_Alias") < 1.5
