"""Footnote 1: scan-detection timeout sensitivity."""

from repro.experiments import footnote1_timeout_sensitivity


def test_footnote1_timeout_sensitivity(benchmark, scenario_result, publish):
    result = benchmark.pedantic(
        footnote1_timeout_sensitivity, args=(scenario_result,),
        rounds=1, iterations=1,
    )
    publish("footnote1", result.render())
    assert result.density_corrected
    # Paper: detection rates decline by single-digit percentages under
    # shorter thresholds (at full capture density).
    assert result.relative_drop(1) < 0.10   # 1800 s
    assert result.relative_drop(2) < 0.10   # 900 s
    # Shorter timeouts can only split sessions, never invent sources.
    assert result.source_counts[1] <= result.source_counts[0]
    assert result.source_counts[2] <= result.source_counts[0]
