"""Figure 14: Hilbert map of the telescope's /32."""

from repro.experiments import fig14


def test_fig14_hilbert_map(benchmark, scenario_result, publish):
    result = benchmark(fig14, scenario_result)
    publish("fig14", result.render())
    # All honeyprefixes sit in the upper half of the /32 (the ISP's ask).
    assert result.upper_half_fraction == 1.0
    assert result.grid.shape == (256, 256)
    # Traffic concentrates in the honeyprefix cells.
    honey_traffic = sum(result.grid[y, x]
                        for x, y in result.honeyprefix_cells)
    assert honey_traffic / result.grid.sum() > 0.9
