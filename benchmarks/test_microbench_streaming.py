"""Streaming bench: peak memory and wall clock, streaming vs batch.

One 30-day ``volume_scale=1e-2`` scenario, each mode in its own
*subprocess* (``ru_maxrss`` is high-water and never decreases inside a
process, so in-process before/after would understate the batch side):

* batch — ``run_scenario`` keeping every record, then ``detect_scans``
  at /128, /64 and /48 per telescope;
* stream — ``run_scenario(stream_analysis=True)``, which sessionizes
  each day's captures online and drops them.

Wall clock and memory come from *separate* children: tracemalloc taxes
every allocation event, and the streaming side makes ~30x more (small
per-day arrays vs few run-sized ones), so an instrumented wall ratio
would charge streaming for the profiler, not the engine.  The memory
assertion uses the tracemalloc allocation peak (interpreter baseline
excluded — that is the part the streaming engine can actually bound);
``ru_maxrss`` is recorded alongside for the honest whole-process
number.  Scan counts from the wall children must agree — a bench on
divergent analyses would be meaningless.

Manual timing (no ``benchmark`` fixture) so the artifact is produced
even under ``--benchmark-disable``.
"""

import json
import os
import pathlib
import subprocess
import sys

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"


def _merge_results(updates: dict) -> dict:
    """Read-modify-write ``BENCH_streaming.json`` (same convention as the
    exec bench: merging keys keeps run order irrelevant)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_streaming.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.update(updates)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(updates, indent=2)}\n[merged into {path}]")
    return payload


#: Heavy enough that record retention dominates the batch side's peak:
#: 30 days at 1e-2 is ~100x the volume of the tier-1 fixtures.
BENCH_CONFIG = dict(
    seed=23, duration_days=30, volume_scale=1e-2, n_tail=40,
    phase1_day=5, phase2_day=8, phase3_day=11, specific_start_day=14,
    tls_offset_days=7, tpot_hitlist_offset_days=10, tpot_tls_offset_days=16,
    udp_hitlist_offset_days=4, withdraw_after_days=20,
)

_DRIVER = """\
import io, json, resource, sys, time

from repro.analysis.scandetect import detect_scans
from repro.obs import Journal, use_journal
from repro.sim import ScenarioConfig, run_scenario

mode, measure = sys.argv[1], sys.argv[2]
config = ScenarioConfig(**json.loads(sys.argv[3]))
if measure == "mem":
    import tracemalloc
    tracemalloc.start()
t0 = time.perf_counter()
counts = {}
with use_journal(Journal(io.StringIO())):
    result = run_scenario(config, stream_analysis=(mode == "stream"))
    if mode == "stream":
        for name, summary in result.streaming.items():
            counts[name] = {str(level): len(events)
                            for level, events in summary.events.items()}
    else:
        for name, records in result.telescopes().items():
            counts[name] = {
                str(level): len(detect_scans(records, source_length=level))
                for level in (128, 64, 48)}
wall = time.perf_counter() - t0
peak = tracemalloc.get_traced_memory()[1] if measure == "mem" else None
ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "wall_s": wall,
    "tracemalloc_peak_bytes": peak,
    "ru_maxrss_bytes": ru * (1 if sys.platform == "darwin" else 1024),
    "scan_counts": counts,
}))
"""


def _run_child(mode: str, measure: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _DRIVER, mode, measure,
         json.dumps(BENCH_CONFIG)],
        check=True, capture_output=True, text=True, env=env)
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_streaming_wall_clock():
    batch = _run_child("batch", "wall")
    stream = _run_child("stream", "wall")

    assert stream["scan_counts"] == batch["scan_counts"]

    wall_ratio = stream["wall_s"] / batch["wall_s"]
    _merge_results({
        "days": BENCH_CONFIG["duration_days"],
        "volume_scale": BENCH_CONFIG["volume_scale"],
        "batch_wall_s": round(batch["wall_s"], 3),
        "stream_wall_s": round(stream["wall_s"], 3),
        "wall_ratio_stream_vs_batch": round(wall_ratio, 3),
    })

    assert wall_ratio <= 1.15, (
        f"streaming wall clock {wall_ratio:.3f}x batch (budget 1.15x)")


def test_streaming_peak_memory():
    batch = _run_child("batch", "mem")
    stream = _run_child("stream", "mem")

    mem_ratio = (batch["tracemalloc_peak_bytes"]
                 / max(1, stream["tracemalloc_peak_bytes"]))
    _merge_results({
        "batch_peak_alloc_bytes": batch["tracemalloc_peak_bytes"],
        "stream_peak_alloc_bytes": stream["tracemalloc_peak_bytes"],
        "batch_ru_maxrss_bytes": batch["ru_maxrss_bytes"],
        "stream_ru_maxrss_bytes": stream["ru_maxrss_bytes"],
        "peak_alloc_ratio": round(mem_ratio, 2),
        "peak_rss_ratio": round(batch["ru_maxrss_bytes"]
                                / max(1, stream["ru_maxrss_bytes"]), 2),
    })

    assert mem_ratio >= 4.0, (
        f"streaming peak allocations only {mem_ratio:.2f}x below batch")
