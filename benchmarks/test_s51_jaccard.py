"""§5.1: telescope source overlap (Jaccard + shared-traffic shares)."""

from repro.experiments import s51_overlap


def test_s51_overlap(benchmark, scenario_result, publish):
    result = benchmark(s51_overlap, scenario_result)
    publish("s51_jaccard", result.render())
    # Paper shape: source sets are highly distinct (avg JS ~0.1, max 0.2)...
    assert result.average_jaccard < 0.3
    assert result.max_jaccard < 0.5
    # ...yet the few overlapping /64 sources carry most of the traffic
    # (97.3% of NT-A's and 99.2% of NT-C's in the paper).
    ac = result.reports["A-C"]
    assert ac.shared_traffic_share_a > 0.5
    assert ac.shared_traffic_share_b > 0.5
