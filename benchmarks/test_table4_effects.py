"""Table 4: BSTM effect sizes of the controlled experiments."""

import pytest

from repro.experiments.effects import table4


def test_table4_effect_sizes(benchmark, scenario_result, publish):
    result = benchmark.pedantic(table4, args=(scenario_result,),
                                rounds=1, iterations=1)
    publish("table4", result.render())
    traffic = {k: v.aes for k, v in result.traffic.items()}

    # Every deployed feature produced a significant positive traffic effect.
    for name, est in result.traffic.items():
        assert est.significant and est.aes > 0, name

    # Paper orderings:
    # 1. the TPot1 TLS trigger is the largest effect (224k pkts/day);
    tls = result.triggers["TPot1+TLS"].aes
    assert all(tls > aes for aes in traffic.values())
    # 2. the manually hitlisted H_UDP beats the plain aliased prefix
    #    (112k vs 10.7k in the paper);
    assert traffic["H_UDP"] > traffic["H_Alias"]
    # 3. domain-bearing prefixes beat BGP-only prefixes;
    assert traffic["H_Com"] > traffic["H_BGP1"]
    assert traffic["H_Org/net"] > traffic["H_BGP1"]
    # 4. ASN diversity peaks on a domain-bearing prefix (H_Org/net's 39
    #    source ASNs/day in the paper) and beats BGP-only.
    asn = {k: v.aes for k, v in result.asn.items()}
    best = max(asn, key=asn.get)
    assert best in ("H_Org/net", "H_Combined", "H_Com")
    assert asn[best] > asn["H_BGP1"]
