"""Figure 10: hyper-specific honeyprefixes get bimodal, sporadic traffic."""

import numpy as np

from repro.experiments import fig10


def test_fig10_hyper_specific_bimodality(benchmark, scenario_result,
                                         publish):
    result = benchmark(fig10, scenario_result)
    publish("fig10", result.render())
    packets = np.array(result.packets)
    assert len(packets) == 16
    # Paper shape: a low mode (75% of prefixes) and a high mode (>8x).
    assert 0.4 <= result.low_mode_fraction <= 0.95
    low = np.mean(sorted(packets)[: len(packets) // 2])
    high = np.mean(sorted(packets)[-4:])
    assert high > 3 * max(low, 1)
    # No correlation between announced length and traffic.
    assert result.length_correlation < 0.6
