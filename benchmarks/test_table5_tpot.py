"""Table 5: T-Pot container/port matrix."""

from repro.experiments import table5


def test_table5_container_matrix(benchmark, publish):
    result = benchmark(table5)
    publish("table5", result.render())
    # Paper's matrix: cowrie and redis only on TPot1; sentrypeer, conpot,
    # elasticpot, dicompot only on TPot2; dionaea/ddospot/snare on both.
    assert "cowrie" in result.tpot1_ports
    assert "cowrie" not in result.tpot2_ports
    assert "redishoneypot" in result.tpot1_ports
    assert "sentrypeer" in result.tpot2_ports
    assert "elasticpot" in result.tpot2_ports
    assert "dicompot" in result.tpot2_ports
    for shared in ("dionaea", "ddospot", "snare", "mailoney",
                   "citrixhoneypot", "ciscoasa", "adbhoney"):
        assert shared in result.tpot1_ports and shared in result.tpot2_ports
    # Port spot checks.
    assert result.tpot1_ports["cowrie"][0] == (22, 23)
    assert 27017 in result.tpot1_ports["dionaea"][0]
    assert 1900 in result.tpot1_ports["ddospot"][1]
