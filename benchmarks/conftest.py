"""Shared benchmark fixtures.

One scenario run (the paper's full deployment at laptop scale) is shared by
every scenario-driven benchmark; the CDN vantage is shared by the
longitudinal ones.  Each benchmark times its *analysis* step and writes the
paper-shaped rows to ``results/<experiment>.txt`` (stdout is captured by
pytest; the files are the artifact).
"""

import os
import pathlib

import pytest

from repro.sim import ScenarioConfig, run_scenario
from repro.sim.cdn import CdnVantage

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: The shared scenario is cached on disk so a benchmark session after the
#: first skips its ~2-minute simulation; REPRO_BENCH_CACHE overrides the
#: location, REPRO_BENCH_CACHE=0 disables caching.
BENCH_CACHE_DIR = os.environ.get(
    "REPRO_BENCH_CACHE",
    str(pathlib.Path(__file__).resolve().parent.parent / ".cache"),
)


@pytest.fixture(scope="session")
def scenario_result():
    """The deployment scenario every NT-A experiment analyzes."""
    config = ScenarioConfig(
        seed=11,
        duration_days=100,
        volume_scale=2e-4,
        n_tail=140,
        withdraw_after_days=50,
    )
    cache_dir = None if BENCH_CACHE_DIR == "0" else BENCH_CACHE_DIR
    return run_scenario(config, cache_dir=cache_dir)


@pytest.fixture(scope="session")
def cdn_vantage():
    """The two-year CDN capture model (Figs 1/2/13, Table 6)."""
    return CdnVantage(rng=42)


@pytest.fixture
def publish():
    """Write an experiment's rendered rows to results/ and echo them."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _publish(experiment_id: str, rendered: str) -> None:
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(rendered + "\n")
        print(f"\n{rendered}\n[written to {path}]")

    return _publish
