"""Ablation bench: what each scanner data channel contributes.

The counterfactual the paper could not run on the real Internet: rerun the
deployment with one public data channel silenced at a time and measure the
drop per honeyprefix class.  This validates the causal story behind
Table 4 — the traffic attributed to a feature disappears when the
scanners' corresponding data source does.
"""

import pytest

from repro.sim import PaperScenario, ScenarioConfig


def _variant(seed: int, **overrides) -> dict:
    config = ScenarioConfig(
        seed=seed, duration_days=45, volume_scale=1e-4, n_tail=60,
        phase1_day=5, phase2_day=8, phase3_day=11, specific_start_day=14,
        tls_offset_days=7, tpot_hitlist_offset_days=10,
        tpot_tls_offset_days=16, udp_hitlist_offset_days=4,
        withdraw_after_days=100,
        population_overrides=overrides,
    )
    scenario = PaperScenario(config)
    scenario.run()
    records = scenario.telescope.capturer.to_records()
    per_class: dict[str, int] = {"total": len(records)}
    for name, hp in scenario.honeyprefixes.items():
        key = name.split("/")[0].rstrip("123")
        per_class[key] = per_class.get(key, 0) + int(
            records.mask_dst_in(hp.prefix).sum()
        )
    return per_class


@pytest.fixture(scope="module")
def baseline():
    return _variant(seed=9)


def test_ablation_ct_channel(benchmark, baseline, publish):
    ablated = benchmark.pedantic(_variant, args=(9,),
                                 kwargs={"ctlog_rate": 0.0},
                                 rounds=1, iterations=1)
    rendered = (
        "Ablation — CT-log channel silenced\n"
        f"  total: {baseline['total']} -> {ablated['total']}\n"
        f"  H_TPot (TLS-trigger targets): {baseline['H_TPot']} -> "
        f"{ablated['H_TPot']}\n"
        f"  H_BGP (control class):        {baseline['H_BGP']} -> "
        f"{ablated['H_BGP']}"
    )
    publish("ablation_ctlog", rendered)
    # CT bots drive the TPots' post-TLS surge; BGP-only prefixes are
    # untouched by the channel.
    assert ablated["H_TPot"] < baseline["H_TPot"] * 0.8
    assert ablated["H_BGP"] > baseline["H_BGP"] * 0.6


def test_ablation_hitlist_channel(benchmark, baseline, publish):
    ablated = benchmark.pedantic(_variant, args=(9,),
                                 kwargs={"hitlist_rate": 0.0},
                                 rounds=1, iterations=1)
    rendered = (
        "Ablation — hitlist channel silenced\n"
        f"  total: {baseline['total']} -> {ablated['total']}\n"
        f"  H_UDP (manual hitlist entry): {baseline['H_UDP']} -> "
        f"{ablated['H_UDP']}\n"
        f"  H_Com (domain-driven):        {baseline['H_Com']} -> "
        f"{ablated['H_Com']}"
    )
    publish("ablation_hitlist", rendered)
    # H_UDP's effect rides almost entirely on the hitlist ecosystem
    # (direct consumers plus hitlist-seeded TGAs); domain-driven prefixes
    # keep their zone-file traffic, so their relative drop is smaller.
    assert ablated["H_UDP"] < baseline["H_UDP"] * 0.5
    udp_drop = 1 - ablated["H_UDP"] / baseline["H_UDP"]
    com_drop = 1 - ablated["H_Com"] / baseline["H_Com"]
    assert udp_drop > com_drop
    assert ablated["H_Com"] > baseline["H_Com"] * 0.3


def test_ablation_zonefile_channel(benchmark, baseline, publish):
    ablated = benchmark.pedantic(_variant, args=(9,),
                                 kwargs={"zonefile_rate": 0.0},
                                 rounds=1, iterations=1)
    rendered = (
        "Ablation — zone-file channel silenced\n"
        f"  H_Com: {baseline['H_Com']} -> {ablated['H_Com']}\n"
        f"  H_Alias: {baseline['H_Alias']} -> {ablated['H_Alias']}"
    )
    publish("ablation_zonefile", rendered)
    # Zone-file watchers feed the domain prefixes (their pre-TLS 'D'
    # traffic); aliased prefixes don't depend on the channel.
    assert ablated["H_Com"] <= baseline["H_Com"]
    assert ablated["H_Alias"] > baseline["H_Alias"] * 0.5
