"""Table 1: per-telescope capture overview."""

from repro.experiments import table1


def test_table1_telescope_overview(benchmark, scenario_result, publish):
    result = benchmark(table1, scenario_result)
    publish("table1", result.render())
    nta = result.row("NT-A")
    ntb = result.row("NT-B")
    ntc = result.row("NT-C")
    # Paper shape: NT-A captures ~70% of everything, NT-C most of the rest,
    # NT-B a sliver (its /48 is four orders of magnitude smaller).
    total = nta.packets + ntb.packets + ntc.packets
    assert nta.packets / total > 0.5
    assert ntc.packets / total > 0.03
    assert ntb.packets / total < 0.01
    # Source diversity: NT-A sees the most ASes (1.9k vs 507 vs 60).
    assert nta.source_asns > ntc.source_asns > ntb.source_asns
    # Source aggregation hierarchy holds everywhere.
    for row in result.rows:
        assert row.sources_128 >= row.sources_64 >= row.sources_48
