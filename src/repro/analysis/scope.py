"""Scanner-scope analysis (§5.3.2, Figure 9).

How many /48 prefixes does each scanner probe?  The paper found scanners
confine themselves to announced honeyprefixes: 95% probed <= 2 /48s, 99.92%
fewer than 11, and non-honeyprefix traffic was only 1.6% of the total, half
of it aimed at the first 16 /48s of the covering /32.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.records import PacketRecords
from repro.net.addr import IPv6Prefix


@dataclass(frozen=True)
class ScopeReport:
    """Figure 9's statistics."""

    #: sorted array: number of /48s probed, one entry per scanner source.
    prefixes_per_scanner: np.ndarray
    #: fraction of packets destined to any honeyprefix.
    honeyprefix_traffic_share: float
    #: fraction of non-honeyprefix packets aimed at the first 16 /48s.
    low_prefix_share_of_other: float
    #: number of scanner sources exceeding ``wide_threshold`` /48s.
    wide_scanners: int

    def fraction_at_most(self, k: int) -> float:
        """Fraction of scanners probing at most ``k`` /48 prefixes."""
        if len(self.prefixes_per_scanner) == 0:
            return 0.0
        return float(np.mean(self.prefixes_per_scanner <= k))

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) suitable for plotting Figure 9."""
        x = np.sort(self.prefixes_per_scanner)
        f = np.arange(1, len(x) + 1) / len(x)
        return x, f


def scanner_scope(
    records: PacketRecords,
    covering_prefix: IPv6Prefix,
    honeyprefixes: list[IPv6Prefix],
    source_length: int = 128,
    wide_threshold: int = 27,
) -> ScopeReport:
    """Compute the Figure 9 scope statistics.

    ``wide_threshold`` defaults to the paper's 27 deployed honeyprefixes;
    sources probing more /48s than that are "wide scanners" roaming outside
    the experiment's scope.
    """
    if len(records) == 0:
        return ScopeReport(
            prefixes_per_scanner=np.zeros(0, dtype=np.int64),
            honeyprefix_traffic_share=0.0,
            low_prefix_share_of_other=0.0,
            wide_scanners=0,
        )
    shift_src = 128 - source_length
    per_scanner: dict[int, set[int]] = {}
    honey_nets = {hp.supernet(48).network if hp.length > 48 else hp.network
                  for hp in honeyprefixes}
    first16 = {covering_prefix.subnet_at(i, 48).network for i in range(16)}

    honey_packets = 0
    other_packets = 0
    other_low = 0
    src_iter = records.src_addresses()
    for dst in records.dst_addresses():
        src = next(src_iter)
        source = (src >> shift_src) << shift_src if shift_src else src
        dst48 = (dst >> 80) << 80
        per_scanner.setdefault(source, set()).add(dst48)
        if dst48 in honey_nets:
            honey_packets += 1
        else:
            other_packets += 1
            if dst48 in first16:
                other_low += 1

    counts = np.array(sorted(len(s) for s in per_scanner.values()),
                      dtype=np.int64)
    total = honey_packets + other_packets
    return ScopeReport(
        prefixes_per_scanner=counts,
        honeyprefix_traffic_share=honey_packets / total if total else 0.0,
        low_prefix_share_of_other=(
            other_low / other_packets if other_packets else 0.0
        ),
        wide_scanners=int(np.sum(counts > wide_threshold)),
    )
