"""Blocklist-granularity recommendation (the §6 operational implication).

Traditional blocklists pin individual /128s; IPv6 scanners rotate sources
across allocations as wide as a /30, so per-address entries are useless
against them while /32 entries cause collateral damage against clouds.
This module turns a capture into per-AS blocklist entries at the *narrowest
prefix length that actually contains the observed sources*, with an
explicit collateral-risk signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.asinfo import MetadataJoiner
from repro.analysis.records import PacketRecords
from repro.net.addr import IPv6Prefix


@dataclass(frozen=True)
class BlocklistEntry:
    """One recommended block: the covering prefixes plus risk metadata."""

    asn: int
    as_name: str
    prefixes: tuple[IPv6Prefix, ...]
    packets: int
    sources_128: int
    #: How much address space the entry covers beyond observed sources
    #: (log2 of covered /128s per observed source); high values mean the
    #: scanner's rotation forces a wide block — expect collateral damage.
    overreach_bits: float

    @property
    def granularity(self) -> int:
        """Prefix length of the recommended entries."""
        return self.prefixes[0].length if self.prefixes else 128


def _covering_prefixes(sources: list[int], max_entries: int) -> tuple[
    IPv6Prefix, ...
]:
    """Shortest prefix set (all one length) covering ``sources`` with at
    most ``max_entries`` entries.

    Walks lengths from /128 upward (coarser) until the distinct covering
    networks fit the budget — the same trade-off an operator makes when a
    feed caps their entry count.
    """
    for length in (128, 112, 96, 80, 64, 56, 48, 40, 32, 30, 29):
        shift = 128 - length
        networks = {(s >> shift) << shift for s in sources}
        if len(networks) <= max_entries:
            return tuple(
                IPv6Prefix(network, length) for network in sorted(networks)
            )
    return (IPv6Prefix(0, 0),)


def recommend_blocklist(
    records: PacketRecords,
    joiner: MetadataJoiner,
    max_entries_per_as: int = 16,
    min_packets: int = 10,
) -> list[BlocklistEntry]:
    """Build per-AS blocklist recommendations from captured traffic.

    ASes contributing fewer than ``min_packets`` are skipped (blocklisting
    one-probe sources is how feeds fill with noise).  Entries are sorted by
    packet volume, heaviest first.
    """
    if len(records) == 0:
        return []
    asns = joiner.row_asns(records)
    entries: list[BlocklistEntry] = []
    sources = list(records.src_addresses())
    sources_arr = np.array(asns)
    for asn in np.unique(sources_arr):
        if asn <= 0:
            continue
        mask = sources_arr == asn
        packets = int(mask.sum())
        if packets < min_packets:
            continue
        as_sources = sorted({s for s, m in zip(sources, mask) if m})
        prefixes = _covering_prefixes(as_sources, max_entries_per_as)
        covered = sum(p.num_addresses for p in prefixes)
        overreach = float(np.log2(max(covered / len(as_sources), 1.0)))
        entries.append(BlocklistEntry(
            asn=int(asn),
            as_name=joiner.asdb.name(int(asn)),
            prefixes=prefixes,
            packets=packets,
            sources_128=len(as_sources),
            overreach_bits=overreach,
        ))
    entries.sort(key=lambda e: -e.packets)
    return entries


def render_blocklist(entries: list[BlocklistEntry],
                     max_rows: int = 10) -> str:
    """Human-readable summary of the recommendations."""
    lines = ["blocklist recommendations (narrowest covering prefixes)"]
    for entry in entries[:max_rows]:
        risk = ("low" if entry.overreach_bits < 16
                else "medium" if entry.overreach_bits < 48 else "HIGH")
        lines.append(
            f"  {entry.as_name:22s} {len(entry.prefixes):3d} x /"
            f"{entry.granularity:<3d} covering {entry.sources_128:6d} "
            f"sources ({entry.packets:7d} pkts, collateral risk {risk})"
        )
    return "\n".join(lines)
