"""Effect-size estimation for the controlled experiments (Table 4, Figs 7-10).

Builds per-honeyprefix daily series (traffic volume and unique source ASNs),
pairs each treatment with its control series, and runs the
:class:`~repro.analysis.bstm.CausalImpact` estimator to produce the paper's
two metrics:

* ``delta_traffic`` — average daily packet-count effect,
* ``delta_asn`` — average daily unique-source-ASN effect,

each with a 95% resampling interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import DAY
from repro.analysis.asinfo import MetadataJoiner
from repro.analysis.bstm import CausalImpact, ImpactResult
from repro.analysis.records import PacketRecords


def daily_series(
    records: PacketRecords,
    start: float,
    end: float,
    metric: str = "packets",
    joiner: MetadataJoiner | None = None,
) -> np.ndarray:
    """Per-day series of ``metric`` over ``[start, end)``.

    Metrics: ``"packets"`` (daily packet count) and ``"asns"`` (daily count
    of distinct source ASNs; requires ``joiner``).
    """
    if metric == "packets":
        return records.daily_packet_counts(start, end)
    if metric == "asns":
        if joiner is None:
            raise ValueError("the 'asns' metric requires a MetadataJoiner")
        asns = joiner.row_asns(records)
        return records.daily_unique(start, end, asns)
    raise ValueError(f"unknown metric {metric!r}")


@dataclass(frozen=True)
class EffectEstimate:
    """One Table 4 cell: an AES with its interval."""

    name: str
    metric: str
    aes: float
    ci_low: float
    ci_high: float
    significant: bool
    impact: ImpactResult

    def summary(self) -> str:
        return (
            f"{self.name} Δ{self.metric}={self.aes:,.0f} "
            f"[{self.ci_high:,.0f} – {self.ci_low:,.0f}]"
            f"{' *' if self.significant else ''}"
        )


def estimate_effect(
    name: str,
    treatment: PacketRecords,
    control: PacketRecords,
    intervention_time: float,
    start: float,
    end: float,
    metric: str = "packets",
    joiner: MetadataJoiner | None = None,
    alpha: float = 0.05,
    rng=0,
    seasonal_period: int | None = None,
) -> EffectEstimate:
    """Estimate one experiment's effect on one metric.

    ``control`` should be the control subnet that received the most scanner
    attention during the experiment (the paper's conservative choice, which
    lower-bounds the effect).  ``seasonal_period=7`` adds the weekly
    seasonal state to the counterfactual model.
    """
    y = daily_series(treatment, start, end, metric, joiner)
    x = daily_series(control, start, end, metric, joiner)
    idx = int((intervention_time - start) // DAY)
    impact = CausalImpact(alpha=alpha, rng=rng,
                          seasonal_period=seasonal_period).run(y, x, idx)
    return EffectEstimate(
        name=name,
        metric=metric,
        aes=impact.average_effect,
        ci_low=impact.ci_low,
        ci_high=impact.ci_high,
        significant=impact.significant,
        impact=impact,
    )


def pointwise_effect_matrix(
    estimates: list[EffectEstimate],
    n_days: int,
) -> np.ndarray:
    """Stack pointwise daily effects into a (n_prefixes, n_days) heatmap.

    Rows shorter than ``n_days`` (later interventions) are left-aligned at
    their intervention day and NaN-padded — exactly Figure 7's layout where
    day 0 is each honeyprefix's own BGP announcement.
    """
    matrix = np.full((len(estimates), n_days), np.nan)
    for i, estimate in enumerate(estimates):
        pw = estimate.impact.pointwise[:n_days]
        matrix[i, : len(pw)] = pw
    return matrix


def convergence_day(
    pointwise: np.ndarray,
    window: int = 5,
    threshold_fraction: float = 0.25,
) -> int | None:
    """First day after which the effect stays below a fraction of its peak.

    Implements the Fig. 7/8 observation that scanner attention converges to
    a stable lower value after an initial burst (15 days for one
    honeyprefix, 40 for another).  Returns None when the series never
    settles.
    """
    if len(pointwise) < window:
        return None
    peak = float(np.nanmax(pointwise))
    if peak <= 0:
        return 0
    threshold = peak * threshold_fraction
    for day in range(len(pointwise) - window + 1):
        segment = pointwise[day : day + window]
        if np.all(np.isnan(segment)):
            continue
        if np.nanmax(segment) < threshold:
            return day
    return None
