"""Scan-event detection.

The paper's definition (footnote 1): a scan is a source hitting at least
100 distinct IPv6 destinations with a maximum packet inter-arrival time of
3600 seconds.  Sources can be aggregated at /128, /64, or /48 before
detection to catch scanners that rotate source addresses within a covering
prefix to evade per-address thresholds.

:func:`detect_scans` is fully columnar: one lexsort by (source group,
timestamp), session splits where the within-group inter-arrival gap exceeds
the timeout, per-segment packet counts from the segment boundaries, and
per-segment unique-target counts from a second sort over (segment, dst).
The original per-packet loop is retained as
:func:`detect_scans_reference` and cross-checked by randomized equivalence
tests; both produce identical event lists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive
from repro.analysis.records import PacketRecords
from repro.net.addr import mask_u64, pack_key_u64
from repro.obs import get_journal, get_registry, get_tracer

#: Paper's scan definition parameters.
DEFAULT_MIN_TARGETS = 100
DEFAULT_TIMEOUT = 3_600.0


@dataclass(frozen=True, slots=True)
class ScanEvent:
    """One detected scan: an aggregated source's burst of probing."""

    source: int          # source subnet (truncated to the aggregation length)
    source_length: int   # the aggregation prefix length
    start: float
    end: float
    packets: int
    unique_targets: int

    @property
    def duration(self) -> float:
        return self.end - self.start


def _event_order(event: ScanEvent) -> tuple[float, int]:
    # Total order over distinct events: two sessions of the same source
    # cannot share a start time (they are separated by > timeout), so
    # (start, source) disambiguates every tie.
    return (event.start, event.source)


def _validate(min_targets: int, timeout: float) -> None:
    check_positive("timeout", timeout)
    if min_targets < 1:
        raise ValueError(f"min_targets must be >= 1, got {min_targets}")


def detect_scans(
    records: PacketRecords,
    source_length: int = 64,
    min_targets: int = DEFAULT_MIN_TARGETS,
    timeout: float = DEFAULT_TIMEOUT,
) -> list[ScanEvent]:
    """Detect scan events in ``records``.

    A session per aggregated source ends when its packet inter-arrival gap
    exceeds ``timeout``; sessions reaching ``min_targets`` distinct /128
    destinations become :class:`ScanEvent`s.
    """
    registry = get_registry()
    with registry.timer("analysis.detect_scans"), \
            get_tracer().span("analysis.detect_scans",
                              records=len(records),
                              source_length=source_length):
        events = _detect_scans_impl(records, source_length, min_targets,
                                    timeout)
    registry.counter("analysis.detect_scans.records_in").inc(len(records))
    registry.counter("analysis.detect_scans.events_out").inc(len(events))
    get_journal().emit(
        "detection",
        source_length=source_length, min_targets=min_targets,
        timeout=timeout, records_in=len(records), events_out=len(events),
    )
    return events


def sessionize(
    group_change: np.ndarray,
    t: np.ndarray,
    dst_hi: np.ndarray,
    dst_lo: np.ndarray,
    timeout: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split group-contiguous, time-sorted rows into gap-bounded sessions.

    The shared kernel behind :func:`detect_scans` and the ground-truth
    session builder (:func:`repro.analysis.groundtruth.truth_events`):
    callers sort their rows so each source group is one contiguous,
    time-ordered run and pass ``group_change`` (row ``i+1`` starts a new
    group).  A new session starts at a group change or a gap strictly
    exceeding the timeout (a gap exactly equal to the timeout stays
    in-session).

    Returns ``(starts, packets, start_ts, end_ts, uniq_targets)``, one
    entry per session, where ``starts`` indexes the session's first row.
    """
    n = len(t)
    new_seg = np.empty(n, dtype=bool)
    new_seg[0] = True
    new_seg[1:] = group_change | (t[1:] - t[:-1] > timeout)
    seg_of = np.cumsum(new_seg) - 1
    starts = np.flatnonzero(new_seg)
    n_segs = len(starts)
    packets = np.diff(starts, append=n)
    ends = starts + packets - 1
    start_ts = t[starts]
    end_ts = t[ends]

    # Unique /128 targets per session: sort by (session, dst) and count
    # first occurrences.
    ord2 = np.lexsort((dst_lo, dst_hi, seg_of))
    s2, h2, l2 = seg_of[ord2], dst_hi[ord2], dst_lo[ord2]
    first = np.empty(n, dtype=bool)
    first[0] = True
    first[1:] = (s2[1:] != s2[:-1]) | (h2[1:] != h2[:-1]) | (l2[1:] != l2[:-1])
    uniq_targets = np.bincount(s2[first], minlength=n_segs)
    return starts, packets, start_ts, end_ts, uniq_targets


def _detect_scans_impl(
    records: PacketRecords,
    source_length: int,
    min_targets: int,
    timeout: float,
) -> list[ScanEvent]:
    _validate(min_targets, timeout)
    n = len(records)
    if n == 0:
        return []

    ts = records.ts
    # Sort rows by (truncated source, timestamp): each aggregated source
    # becomes one contiguous, time-ordered run.  Sources aggregated at
    # <= /64 (the paper's levels) pack into a single uint64 key column;
    # longer lengths sort on the masked (hi, lo) pair.
    packed = pack_key_u64(records.src_hi, records.src_lo, source_length)
    if packed is not None:
        order = np.lexsort((ts, packed))
        k = packed[order]
        group_change = k[1:] != k[:-1]
        src_hi_sorted, src_lo_sorted = k, None
    else:
        mhi, mlo = mask_u64(records.src_hi, records.src_lo, source_length)
        order = np.lexsort((ts, mlo, mhi))
        h, l = mhi[order], mlo[order]
        group_change = (h[1:] != h[:-1]) | (l[1:] != l[:-1])
        src_hi_sorted, src_lo_sorted = h, l
    t = ts[order]

    starts, packets, start_ts, end_ts, uniq_targets = sessionize(
        group_change, t, records.dst_hi[order], records.dst_lo[order],
        timeout,
    )

    # The truncated source value of each session is its sort key at the
    # segment's first row.
    qualifying = np.flatnonzero(uniq_targets >= min_targets)
    rep_rows = starts[qualifying]
    rep_hi = src_hi_sorted[rep_rows].tolist()
    rep_lo = (src_lo_sorted[rep_rows].tolist() if src_lo_sorted is not None
              else [0] * len(rep_rows))

    events = [
        ScanEvent(
            source=(hi << 64) | lo,
            source_length=source_length,
            start=float(start_ts[i]),
            end=float(end_ts[i]),
            packets=int(packets[i]),
            unique_targets=int(uniq_targets[i]),
        )
        for hi, lo, i in zip(rep_hi, rep_lo, qualifying)
    ]
    events.sort(key=_event_order)
    return events


def detect_scans_reference(
    records: PacketRecords,
    source_length: int = 64,
    min_targets: int = DEFAULT_MIN_TARGETS,
    timeout: float = DEFAULT_TIMEOUT,
) -> list[ScanEvent]:
    """Per-packet reference implementation of :func:`detect_scans`.

    Kept as the ground truth for the randomized equivalence tests and as
    the baseline the microbenchmarks measure the vectorized path against.
    """
    _validate(min_targets, timeout)
    if len(records) == 0:
        return []

    ordered = records.sorted_by_time()
    groups = ordered.source_groups(source_length)
    # Representative truncated source value per group.
    reps: dict[int, int] = {}
    src_iter = ordered.src_addresses()
    dst_iter = ordered.dst_addresses()

    mask_shift = 128 - source_length
    sessions: dict[int, dict] = {}
    events: list[ScanEvent] = []

    def _close(state: dict, source: int) -> None:
        if len(state["targets"]) >= min_targets:
            events.append(ScanEvent(
                source=source,
                source_length=source_length,
                start=state["start"],
                end=state["last"],
                packets=state["packets"],
                unique_targets=len(state["targets"]),
            ))

    for i in range(len(ordered)):
        src = next(src_iter)
        dst = next(dst_iter)
        ts = float(ordered.ts[i])
        group = int(groups[i])
        if group not in reps:
            reps[group] = (src >> mask_shift) << mask_shift if mask_shift else src
        state = sessions.get(group)
        if state is not None and ts - state["last"] > timeout:
            _close(state, reps[group])
            state = None
        if state is None:
            state = sessions[group] = {
                "start": ts, "last": ts, "packets": 0, "targets": set(),
            }
        state["last"] = ts
        state["packets"] += 1
        state["targets"].add(dst)

    for group, state in sessions.items():
        _close(state, reps[group])
    events.sort(key=_event_order)
    return events


def weekly_scan_sources(
    records: PacketRecords,
    start: float,
    end: float,
    source_length: int = 64,
    min_targets: int = DEFAULT_MIN_TARGETS,
    timeout: float = DEFAULT_TIMEOUT,
) -> np.ndarray:
    """Per-week count of distinct scanning sources (Fig. 1's metric).

    A source counts in every week during which one of its scan events was
    active.
    """
    from repro._util import WEEK

    n_weeks = int(np.ceil((end - start) / WEEK))
    if n_weeks <= 0:
        return np.zeros(0)
    events = detect_scans(records, source_length=source_length,
                          min_targets=min_targets, timeout=timeout)
    per_week: list[set[int]] = [set() for _ in range(n_weeks)]
    for event in events:
        w0 = max(0, int((event.start - start) // WEEK))
        w1 = min(n_weeks - 1, int((event.end - start) // WEEK))
        for w in range(w0, w1 + 1):
            per_week[w].add(event.source)
    return np.array([len(s) for s in per_week], dtype=np.float64)


def weekly_scan_packets(
    records: PacketRecords,
    start: float,
    end: float,
    source_length: int = 64,
    min_targets: int = DEFAULT_MIN_TARGETS,
    timeout: float = DEFAULT_TIMEOUT,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-week scan packets: (total, from the single most active source).

    Fig. 2's two series: total weekly scan traffic, and the share of the
    top source — whose dominance faded as scanning dispersed.
    """
    from repro._util import WEEK

    n_weeks = int(np.ceil((end - start) / WEEK))
    totals = np.zeros(n_weeks)
    per_source: list[dict[int, int]] = [dict() for _ in range(n_weeks)]
    events = detect_scans(records, source_length=source_length,
                          min_targets=min_targets, timeout=timeout)
    for event in events:
        # Attribute the event's packets to the week it started in: events
        # are short relative to weeks, and this matches per-event tallies.
        # Events starting outside [start, end) are dropped, not mis-bucketed.
        w = int((event.start - start) // WEEK)
        if 0 <= w < n_weeks:
            totals[w] += event.packets
            bucket = per_source[w]
            bucket[event.source] = bucket.get(event.source, 0) + event.packets
    top = np.array(
        [max(bucket.values()) if bucket else 0 for bucket in per_source],
        dtype=np.float64,
    )
    return totals, top
