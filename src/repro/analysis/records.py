"""Columnar packet records: the analysis pipeline's working format.

Addresses are stored as two uint64 columns (hi/lo halves of the 128-bit
value) so that numpy can mask, compare, and group them without per-packet
Python objects.  All filtering operations return new views/copies; records
are immutable once built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro._util import DAY
from repro.net.addr import (
    IPv6Prefix,
    group_ids_u64,
    mask_u64,
    pack_key_u64,
    unique_pairs_u64,
)
from repro.net.packet import Packet

_U64 = 0xFFFFFFFFFFFFFFFF


def _prefix_halves(prefix: IPv6Prefix) -> tuple[np.uint64, np.uint64]:
    return (
        np.uint64((prefix.network >> 64) & _U64),
        np.uint64(prefix.network & _U64),
    )


@dataclass(frozen=True)
class PacketRecords:
    """Immutable columnar packet capture."""

    ts: np.ndarray        # float64
    src_hi: np.ndarray    # uint64
    src_lo: np.ndarray    # uint64
    dst_hi: np.ndarray    # uint64
    dst_lo: np.ndarray    # uint64
    proto: np.ndarray     # uint8
    sport: np.ndarray     # uint16
    dport: np.ndarray     # uint16

    def __post_init__(self) -> None:
        n = len(self.ts)
        for name in ("src_hi", "src_lo", "dst_hi", "dst_lo",
                     "proto", "sport", "dport"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} length mismatch")

    # -- construction ---------------------------------------------------

    @classmethod
    def from_columns(cls, ts, src_hi, src_lo, dst_hi, dst_lo,
                     proto, sport, dport) -> "PacketRecords":
        return cls(
            ts=np.asarray(ts, dtype=np.float64),
            src_hi=np.asarray(src_hi, dtype=np.uint64),
            src_lo=np.asarray(src_lo, dtype=np.uint64),
            dst_hi=np.asarray(dst_hi, dtype=np.uint64),
            dst_lo=np.asarray(dst_lo, dtype=np.uint64),
            proto=np.asarray(proto, dtype=np.uint8),
            sport=np.asarray(sport, dtype=np.uint16),
            dport=np.asarray(dport, dtype=np.uint16),
        )

    @classmethod
    def from_packets(cls, packets: Iterable[Packet]) -> "PacketRecords":
        cols: tuple[list, ...] = ([], [], [], [], [], [], [], [])
        for p in packets:
            cols[0].append(p.timestamp)
            cols[1].append((p.src >> 64) & _U64)
            cols[2].append(p.src & _U64)
            cols[3].append((p.dst >> 64) & _U64)
            cols[4].append(p.dst & _U64)
            cols[5].append(p.proto)
            cols[6].append(p.sport)
            cols[7].append(p.dport)
        return cls.from_columns(*cols)

    @classmethod
    def empty(cls) -> "PacketRecords":
        return cls.from_columns([], [], [], [], [], [], [], [])

    @classmethod
    def concat(cls, parts: list["PacketRecords"]) -> "PacketRecords":
        if not parts:
            return cls.empty()
        return cls(
            ts=np.concatenate([p.ts for p in parts]),
            src_hi=np.concatenate([p.src_hi for p in parts]),
            src_lo=np.concatenate([p.src_lo for p in parts]),
            dst_hi=np.concatenate([p.dst_hi for p in parts]),
            dst_lo=np.concatenate([p.dst_lo for p in parts]),
            proto=np.concatenate([p.proto for p in parts]),
            sport=np.concatenate([p.sport for p in parts]),
            dport=np.concatenate([p.dport for p in parts]),
        )

    # -- basics ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ts)

    def select(self, mask: np.ndarray) -> "PacketRecords":
        """New records containing the rows where ``mask`` is True."""
        return PacketRecords(
            ts=self.ts[mask],
            src_hi=self.src_hi[mask], src_lo=self.src_lo[mask],
            dst_hi=self.dst_hi[mask], dst_lo=self.dst_lo[mask],
            proto=self.proto[mask], sport=self.sport[mask],
            dport=self.dport[mask],
        )

    def sorted_by_time(self) -> "PacketRecords":
        order = np.argsort(self.ts, kind="stable")
        return self.select(order)

    # -- masks -----------------------------------------------------------

    def mask_time(self, start: float, end: float) -> np.ndarray:
        """Rows with ``start <= ts < end``."""
        return (self.ts >= start) & (self.ts < end)

    def mask_proto(self, proto: int) -> np.ndarray:
        return self.proto == np.uint8(proto)

    def mask_dst_in(self, prefix: IPv6Prefix) -> np.ndarray:
        hi, lo = mask_u64(self.dst_hi, self.dst_lo, prefix.length)
        want_hi, want_lo = _prefix_halves(prefix)
        return (hi == want_hi) & (lo == want_lo)

    def mask_src_in(self, prefix: IPv6Prefix) -> np.ndarray:
        hi, lo = mask_u64(self.src_hi, self.src_lo, prefix.length)
        want_hi, want_lo = _prefix_halves(prefix)
        return (hi == want_hi) & (lo == want_lo)

    # -- address reconstruction -------------------------------------------

    def src_addresses(self) -> Iterator[int]:
        for hi, lo in zip(self.src_hi, self.src_lo):
            yield (int(hi) << 64) | int(lo)

    def dst_addresses(self) -> Iterator[int]:
        for hi, lo in zip(self.dst_hi, self.dst_lo):
            yield (int(hi) << 64) | int(lo)

    # -- aggregation -------------------------------------------------------
    #
    # All aggregation goes through _agg_key: a packed single-column uint64
    # key when the aggregation length fits in the hi half (<= 64 — the
    # paper's /32, /48, /64 levels), so np.unique runs its fast 1-D sort,
    # and masked (hi, lo) columns handled by the lexsort-based helpers in
    # repro.net.addr otherwise.  Either way numpy never falls back to the
    # slow void-view sort it performs on 2-D input.

    def _agg_key(self, hi: np.ndarray, lo: np.ndarray, prefix_len: int
                 ) -> tuple[np.ndarray, np.ndarray | None]:
        """Truncated grouping key: ``(packed, None)`` or ``(mhi, mlo)``."""
        packed = pack_key_u64(hi, lo, prefix_len)
        if packed is not None:
            return packed, None
        return mask_u64(hi, lo, prefix_len)

    def unique_sources(self, prefix_len: int = 128) -> int:
        """Count distinct source /``prefix_len`` subnets."""
        if len(self) == 0:
            return 0
        key, lo = self._agg_key(self.src_hi, self.src_lo, prefix_len)
        if lo is None:
            return len(np.unique(key))
        return len(unique_pairs_u64(key, lo)[0])

    def unique_destinations(self, prefix_len: int = 128) -> int:
        """Count distinct destination /``prefix_len`` subnets."""
        if len(self) == 0:
            return 0
        key, lo = self._agg_key(self.dst_hi, self.dst_lo, prefix_len)
        if lo is None:
            return len(np.unique(key))
        return len(unique_pairs_u64(key, lo)[0])

    def source_set(self, prefix_len: int = 128) -> set[int]:
        """The set of source subnets (as truncated 128-bit ints)."""
        if len(self) == 0:
            return set()
        key, lo = self._agg_key(self.src_hi, self.src_lo, prefix_len)
        if lo is None:
            return {int(k) << 64 for k in np.unique(key)}
        uhi, ulo = unique_pairs_u64(key, lo)
        return {(int(h) << 64) | int(l) for h, l in zip(uhi, ulo)}

    def destination_set(self, prefix_len: int = 128) -> set[int]:
        if len(self) == 0:
            return set()
        key, lo = self._agg_key(self.dst_hi, self.dst_lo, prefix_len)
        if lo is None:
            return {int(k) << 64 for k in np.unique(key)}
        uhi, ulo = unique_pairs_u64(key, lo)
        return {(int(h) << 64) | int(l) for h, l in zip(uhi, ulo)}

    def source_groups(self, prefix_len: int = 128) -> np.ndarray:
        """Integer group id per row, grouping rows by source subnet.

        Ids are assigned in ascending order of the truncated source value.
        """
        if len(self) == 0:
            return np.empty(0, dtype=np.int64)
        key, lo = self._agg_key(self.src_hi, self.src_lo, prefix_len)
        if lo is None:
            _, inverse = np.unique(key, return_inverse=True)
            return inverse.astype(np.int64, copy=False)
        ids, _ = group_ids_u64(key, lo)
        return ids

    # -- time series ---------------------------------------------------------

    def daily_packet_counts(self, start: float, end: float) -> np.ndarray:
        """Packets per simulation day over ``[start, end)``."""
        n_days = int(np.ceil((end - start) / DAY))
        if n_days <= 0:
            return np.zeros(0)
        mask = self.mask_time(start, end)
        days = ((self.ts[mask] - start) // DAY).astype(np.int64)
        return np.bincount(days, minlength=n_days).astype(np.float64)

    def daily_unique(self, start: float, end: float,
                     values: np.ndarray) -> np.ndarray:
        """Per-day count of distinct ``values`` (one value per row)."""
        n_days = int(np.ceil((end - start) / DAY))
        if n_days <= 0:
            return np.zeros(0)
        mask = self.mask_time(start, end)
        days = ((self.ts[mask] - start) // DAY).astype(np.int64)
        vals = np.asarray(values)[mask]
        out = np.zeros(n_days)
        if len(vals) == 0:
            return out
        combos = np.unique(np.stack([days, vals.astype(np.int64)], axis=1),
                           axis=0)
        uniq_days, counts = np.unique(combos[:, 0], return_counts=True)
        out[uniq_days] = counts
        return out

    # -- persistence -----------------------------------------------------

    def save_npz(self, path) -> None:
        """Persist the columns as a compressed ``.npz`` archive."""
        np.savez_compressed(
            path,
            ts=self.ts, src_hi=self.src_hi, src_lo=self.src_lo,
            dst_hi=self.dst_hi, dst_lo=self.dst_lo,
            proto=self.proto, sport=self.sport, dport=self.dport,
        )

    @classmethod
    def load_npz(cls, path) -> "PacketRecords":
        """Load records saved by :meth:`save_npz` (dtypes re-coerced, so a
        hand-built archive with wider integer columns still loads)."""
        with np.load(path) as archive:
            return cls.from_columns(
                ts=archive["ts"],
                src_hi=archive["src_hi"], src_lo=archive["src_lo"],
                dst_hi=archive["dst_hi"], dst_lo=archive["dst_lo"],
                proto=archive["proto"], sport=archive["sport"],
                dport=archive["dport"],
            )

    #: Back-compat aliases for the pre-cache spelling.
    save = save_npz
    load = load_npz
