"""Zeek-like flow aggregation.

Packets sharing a 5-tuple (src, dst, proto, sport, dport) within an
inactivity timeout form one flow.  The paper used Zeek to aggregate captures
into flows before analysis; this module provides the same building block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive
from repro.analysis.records import PacketRecords
from repro.obs import get_registry, get_tracer

#: Zeek's default UDP/ICMP inactivity timeout is 60 s; TCP's is longer.  A
#: single uniform timeout keeps flow semantics simple and matches how the
#: paper's analysis consumed flows (as probe groupings, not byte counters).
DEFAULT_FLOW_TIMEOUT = 60.0


@dataclass(frozen=True, slots=True)
class Flow:
    """One aggregated flow."""

    src: int
    dst: int
    proto: int
    sport: int
    dport: int
    first_seen: float
    last_seen: float
    packets: int

    @property
    def duration(self) -> float:
        return self.last_seen - self.first_seen


def _flow_order(flow: Flow) -> tuple:
    # Total order over distinct flows: two flows of the same 5-tuple are
    # separated by > timeout and cannot share a first_seen, so the full
    # tuple disambiguates every tie.
    return (flow.first_seen, flow.src, flow.dst,
            flow.proto, flow.sport, flow.dport)


def aggregate_flows(
    records: PacketRecords, timeout: float = DEFAULT_FLOW_TIMEOUT
) -> list[Flow]:
    """Aggregate packet records into flows.

    Packets are processed in timestamp order; a packet extends an existing
    flow when it shares the 5-tuple and arrives within ``timeout`` of the
    flow's last packet, otherwise it opens a new flow.

    Columnar implementation: one lexsort by (5-tuple, timestamp) makes each
    flow a contiguous run, split where the within-tuple gap exceeds the
    timeout; Python only materializes the resulting :class:`Flow` objects.
    The per-packet loop is retained as :func:`aggregate_flows_reference`.
    """
    registry = get_registry()
    with registry.timer("analysis.aggregate_flows"), \
            get_tracer().span("analysis.aggregate_flows",
                              records=len(records)):
        flows = _aggregate_flows_impl(records, timeout)
    registry.counter("analysis.aggregate_flows.records_in").inc(len(records))
    registry.counter("analysis.aggregate_flows.flows_out").inc(len(flows))
    return flows


def _aggregate_flows_impl(records: PacketRecords, timeout: float) -> list[Flow]:
    check_positive("timeout", timeout)
    n = len(records)
    if n == 0:
        return []
    ts = records.ts
    tuple_cols = (records.src_hi, records.src_lo,
                  records.dst_hi, records.dst_lo,
                  records.proto, records.sport, records.dport)
    # Primary keys: the 5-tuple columns; timestamp varies fastest.
    order = np.lexsort((ts,) + tuple_cols[::-1])
    cols = [c[order] for c in tuple_cols]
    t = ts[order]

    new_flow = np.empty(n, dtype=bool)
    new_flow[0] = True
    split = t[1:] - t[:-1] > timeout
    for c in cols:
        split |= c[1:] != c[:-1]
    new_flow[1:] = split
    starts = np.flatnonzero(new_flow)
    ends = np.append(starts[1:], n) - 1
    counts = np.diff(np.append(starts, n))

    # tolist() converts whole columns to Python scalars at C speed; the
    # per-flow work below is just shifts and Flow construction.
    rows = zip(*(c[starts].tolist() for c in cols),
               t[starts].tolist(), t[ends].tolist(), counts.tolist())
    flows = [
        Flow(src=(sh << 64) | sl, dst=(dh << 64) | dl,
             proto=pr, sport=sp, dport=dp,
             first_seen=first, last_seen=last, packets=count)
        for sh, sl, dh, dl, pr, sp, dp, first, last, count in rows
    ]
    flows.sort(key=_flow_order)
    return flows


def aggregate_flows_reference(
    records: PacketRecords, timeout: float = DEFAULT_FLOW_TIMEOUT
) -> list[Flow]:
    """Per-packet reference implementation of :func:`aggregate_flows`.

    Kept as the ground truth for the randomized equivalence tests and as
    the baseline the microbenchmarks measure the vectorized path against.
    """
    check_positive("timeout", timeout)
    if len(records) == 0:
        return []
    ordered = records.sorted_by_time()
    flows: list[Flow] = []
    # 5-tuple -> open state: [first_seen, last_seen, packets]
    open_flows: dict[tuple[int, int, int, int, int], list] = {}

    src_iter = ordered.src_addresses()
    dst_iter = ordered.dst_addresses()
    for i in range(len(ordered)):
        src = next(src_iter)
        dst = next(dst_iter)
        ts = float(ordered.ts[i])
        key = (src, dst, int(ordered.proto[i]),
               int(ordered.sport[i]), int(ordered.dport[i]))
        state = open_flows.get(key)
        if state is not None and ts - state[1] <= timeout:
            state[1] = ts
            state[2] += 1
            continue
        if state is not None:
            flows.append(Flow(*key, first_seen=state[0],
                              last_seen=state[1], packets=state[2]))
        open_flows[key] = [ts, ts, 1]

    for key, state in open_flows.items():
        flows.append(Flow(*key, first_seen=state[0],
                          last_seen=state[1], packets=state[2]))
    flows.sort(key=_flow_order)
    return flows


#: Zeek conn.log-style column header.
CONN_LOG_FIELDS = ("ts", "uid", "id.orig_h", "id.orig_p", "id.resp_h",
                   "id.resp_p", "proto", "duration", "orig_pkts")

_PROTO_NAMES = {1: "icmp", 6: "tcp", 17: "udp", 58: "icmp6"}


def write_conn_log(flows: list[Flow], path) -> int:
    """Write flows as a Zeek-style tab-separated ``conn.log``.

    Emits the ``#fields`` header Zeek consumers expect; returns the number
    of rows written.
    """
    from repro.net.addr import format_address

    with open(path, "w") as stream:
        stream.write("#separator \\x09\n")
        stream.write("#fields\t" + "\t".join(CONN_LOG_FIELDS) + "\n")
        for index, flow in enumerate(flows):
            row = (
                f"{flow.first_seen:.6f}",
                f"C{index:08x}",
                format_address(flow.src),
                str(flow.sport),
                format_address(flow.dst),
                str(flow.dport),
                _PROTO_NAMES.get(flow.proto, str(flow.proto)),
                f"{flow.duration:.6f}",
                str(flow.packets),
            )
            stream.write("\t".join(row) + "\n")
    return len(flows)
