"""Incremental (online) scan detection and flow aggregation.

:func:`~repro.analysis.scandetect.detect_scans` and
:func:`~repro.analysis.flows.aggregate_flows` lexsort the *entire run* at
the end — memory scales with total packet count.  This module evaluates the
same definitions online: a :class:`SessionTracker` (and its 5-tuple
sibling :class:`FlowTracker`) consumes per-day :class:`PacketRecords`
chunks, carries open sessions across chunk boundaries, and emits exactly
the event list the batch path would — element-identical at every
aggregation level, pinned by randomized equivalence tests.

The trick that keeps each chunk fully columnar is the **synthetic carry
row**: every open session contributes one sentinel row (timestamp = the
session's last packet, destination = one of its already-counted targets)
that is prepended to the chunk before the per-chunk lexsort.  The ordinary
gap rule then decides continuation for free — if the session's first real
packet in this chunk arrives within the timeout, it lands in the sentinel's
segment and the session extends; if not, the sentinel forms a lone segment
and the carried session closes with its stored stats.  Because the
sentinel's destination is already a member of the open session's target
set, the segment's unique-target union is unpolluted.  Only segments that
touch a carry row or survive the chunk's horizon are handled in Python;
everything else — the overwhelming majority — closes through the same
vectorized path as the batch kernel.

Memory is O(open sessions + one chunk), never O(run): at each feed
boundary any session whose last packet is more than a timeout behind the
chunk horizon is finalized (no future packet can extend it), so the carry
state tracks only currently-active sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import check_positive
from repro.analysis.flows import DEFAULT_FLOW_TIMEOUT, Flow, _flow_order
from repro.analysis.records import PacketRecords
from repro.analysis.scandetect import (
    DEFAULT_MIN_TARGETS,
    DEFAULT_TIMEOUT,
    ScanEvent,
    _event_order,
    _validate,
)
from repro.net.addr import mask_u64, pack_key_u64

#: The paper's three source-aggregation levels, in report order.
SCAN_LEVELS = (128, 64, 48)

_NEG_INF = float("-inf")


class SessionTracker:
    """Online equivalent of :func:`~repro.analysis.scandetect.detect_scans`.

    Feed time-ordered chunks (each chunk may be internally unsorted, but no
    chunk may contain a timestamp earlier than a previous chunk's horizon);
    call :meth:`finish` for the final event list.  The emitted events are
    element-identical — same fields, same order — to running the batch
    detector over the concatenation of every chunk.
    """

    def __init__(
        self,
        source_length: int = 64,
        min_targets: int = DEFAULT_MIN_TARGETS,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        _validate(min_targets, timeout)
        if not 0 <= source_length <= 128:
            raise ValueError(
                f"prefix length must be in [0, 128], got {source_length}")
        self.source_length = source_length
        self.min_targets = min_targets
        self.timeout = timeout
        self._watermark = _NEG_INF
        self._events: list[ScanEvent] = []
        # Open-session carry state, parallel lists.  Keys are python ints
        # (packed, length <= 64) or (hi, lo) tuples; targets are sorted
        # unique (hi, lo) uint64 arrays — 16 bytes per distinct target,
        # the tracker's only per-session payload.
        self._keys: list = []
        self._start: list[float] = []
        self._last: list[float] = []
        self._packets: list[int] = []
        self._targets: list[tuple[np.ndarray, np.ndarray]] = []

    # -- introspection ----------------------------------------------------

    @property
    def open_sessions(self) -> int:
        return len(self._keys)

    @property
    def events_closed(self) -> int:
        return len(self._events)

    def carry_bytes(self) -> int:
        """Approximate size of the open-session target payload."""
        return sum(hi.nbytes + lo.nbytes for hi, lo in self._targets)

    # -- internals --------------------------------------------------------

    def _source_of(self, key) -> int:
        if isinstance(key, tuple):
            return (key[0] << 64) | key[1]
        return key << 64

    def _emit(self, key, start: float, end: float,
              packets: int, uniq: int) -> None:
        if uniq >= self.min_targets:
            self._events.append(ScanEvent(
                source=self._source_of(key),
                source_length=self.source_length,
                start=start, end=end,
                packets=packets, unique_targets=uniq,
            ))

    @staticmethod
    def _union(targets: tuple[np.ndarray, np.ndarray],
               add_hi: np.ndarray, add_lo: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        hi = np.concatenate([targets[0], add_hi])
        lo = np.concatenate([targets[1], add_lo])
        order = np.lexsort((lo, hi))
        hi, lo = hi[order], lo[order]
        keep = np.empty(len(hi), dtype=bool)
        keep[0] = True
        keep[1:] = (hi[1:] != hi[:-1]) | (lo[1:] != lo[:-1])
        return hi[keep], lo[keep]

    def _expire(self, horizon: float) -> None:
        """Finalize open sessions no future packet can extend.

        Strict inequality: a future packet arrives at ts >= horizon, so a
        session with last == horizon - timeout sits at gap == timeout —
        which the gap rule (strictly >) still merges.
        """
        keep = [i for i, last in enumerate(self._last)
                if last >= horizon - self.timeout]
        if len(keep) == len(self._keys):
            return
        for i, last in enumerate(self._last):
            if last < horizon - self.timeout:
                self._emit(self._keys[i], self._start[i], last,
                           self._packets[i], len(self._targets[i][0]))
        self._keys = [self._keys[i] for i in keep]
        self._start = [self._start[i] for i in keep]
        self._last = [self._last[i] for i in keep]
        self._packets = [self._packets[i] for i in keep]
        self._targets = [self._targets[i] for i in keep]

    # -- the per-chunk kernel ---------------------------------------------

    def feed(self, records: PacketRecords, now: float | None = None) -> int:
        """Consume one chunk; returns the number of events closed.

        ``now`` is the chunk horizon (defaults to the chunk's max
        timestamp): the tracker may finalize any session idle for more
        than a timeout before it, so later chunks must not carry earlier
        timestamps.
        """
        n = len(records)
        k = len(self._keys)
        before = len(self._events)
        if n:
            t_lo = float(records.ts.min())
            if t_lo < self._watermark:
                raise ValueError(
                    f"out-of-order feed: chunk starts at {t_lo}, before "
                    f"the tracker's horizon {self._watermark}")
        horizon = self._watermark
        if now is not None:
            horizon = max(horizon, float(now))
        if n:
            horizon = max(horizon, float(records.ts.max()))
        if n == 0:
            self._expire(horizon)
            self._watermark = horizon
            return len(self._events) - before

        length = self.source_length
        timeout = self.timeout

        # Columns with the k synthetic carry rows prepended (index < k in
        # the original order identifies them after the sort).
        ts = records.ts
        dst_hi, dst_lo = records.dst_hi, records.dst_lo
        if k:
            ts = np.concatenate([
                np.asarray(self._last, dtype=np.float64), ts])
            dst_hi = np.concatenate([
                np.array([t[0][0] for t in self._targets], dtype=np.uint64),
                dst_hi])
            dst_lo = np.concatenate([
                np.array([t[1][0] for t in self._targets], dtype=np.uint64),
                dst_lo])

        packed = pack_key_u64(records.src_hi, records.src_lo, length)
        if packed is not None:
            if k:
                packed = np.concatenate([
                    np.asarray(self._keys, dtype=np.uint64), packed])
            # Stable lexsort: a carry row ties with a real row only at the
            # watermark, and concatenation order keeps it first.
            order = np.lexsort((ts, packed))
            key_hi, key_lo = packed[order], None
            group_change = key_hi[1:] != key_hi[:-1]
        else:
            mhi, mlo = mask_u64(records.src_hi, records.src_lo, length)
            if k:
                mhi = np.concatenate([
                    np.array([key[0] for key in self._keys],
                             dtype=np.uint64), mhi])
                mlo = np.concatenate([
                    np.array([key[1] for key in self._keys],
                             dtype=np.uint64), mlo])
            order = np.lexsort((ts, mlo, mhi))
            key_hi, key_lo = mhi[order], mlo[order]
            group_change = ((key_hi[1:] != key_hi[:-1])
                            | (key_lo[1:] != key_lo[:-1]))
        t = ts[order]
        dh = dst_hi[order]
        dl = dst_lo[order]
        m = n + k

        # Same segmentation as the batch kernel (sessionize), inlined to
        # keep the per-segment unique-target *slices*, not just counts.
        new_seg = np.empty(m, dtype=bool)
        new_seg[0] = True
        new_seg[1:] = group_change | (t[1:] - t[:-1] > timeout)
        seg_of = np.cumsum(new_seg) - 1
        starts = np.flatnonzero(new_seg)
        n_segs = len(starts)
        seg_packets = np.diff(starts, append=m)
        ends = starts + seg_packets - 1
        start_ts = t[starts]
        end_ts = t[ends]

        ord2 = np.lexsort((dl, dh, seg_of))
        s2, h2, l2 = seg_of[ord2], dh[ord2], dl[ord2]
        first = np.empty(m, dtype=bool)
        first[0] = True
        first[1:] = ((s2[1:] != s2[:-1]) | (h2[1:] != h2[:-1])
                     | (l2[1:] != l2[:-1]))
        u_hi, u_lo = h2[first], l2[first]
        uniq_counts = np.bincount(s2[first], minlength=n_segs)
        u_off = np.zeros(n_segs + 1, dtype=np.int64)
        np.cumsum(uniq_counts, out=u_off[1:])

        # Segment classification.  A carry row sorts first in its group
        # (its timestamp precedes every chunk row of the same source), so
        # it can only be a segment's first row; and a non-final segment of
        # a group is followed by a > timeout gap, so only group-final
        # segments can reach past the horizon's timeout window.
        gc_full = np.empty(m, dtype=bool)
        gc_full[0] = True
        gc_full[1:] = group_change
        seg_new_group = gc_full[starts]
        seg_last = np.empty(n_segs, dtype=bool)
        seg_last[:-1] = seg_new_group[1:]
        seg_last[-1] = True
        first_orig = order[starts]
        seg_carry = first_orig < k
        # >= : a segment ending exactly a timeout before the horizon can
        # still merge with a row at ts == horizon (the gap rule is > ).
        stay_open = seg_last & (end_ts >= horizon - timeout)
        special = seg_carry | stay_open

        # Vectorized close of every plain segment (no carry, not staying
        # open) — the hot path, identical math to the batch detector.
        qual = np.flatnonzero(~special & (uniq_counts >= self.min_targets))
        if qual.size:
            rows = starts[qual]
            if key_lo is None:
                sources = [v << 64 for v in key_hi[rows].tolist()]
            else:
                sources = [(hv << 64) | lv for hv, lv in
                           zip(key_hi[rows].tolist(), key_lo[rows].tolist())]
            events = self._events
            for source, s, e, p, u in zip(
                    sources, start_ts[qual].tolist(), end_ts[qual].tolist(),
                    seg_packets[qual].tolist(), uniq_counts[qual].tolist()):
                events.append(ScanEvent(
                    source=source, source_length=length,
                    start=s, end=e, packets=p, unique_targets=u))

        # Python handles only carry-merges and the sessions that survive
        # this chunk — O(active sources), not O(segments).
        new_keys: list = []
        new_start: list[float] = []
        new_last: list[float] = []
        new_packets: list[int] = []
        new_targets: list[tuple[np.ndarray, np.ndarray]] = []
        for i in np.flatnonzero(special).tolist():
            stays = bool(stay_open[i])
            if seg_carry[i]:
                o = int(first_orig[i])
                if int(seg_packets[i]) == 1:
                    # Idle carry: no chunk row joined this session.
                    if stays:
                        new_keys.append(self._keys[o])
                        new_start.append(self._start[o])
                        new_last.append(self._last[o])
                        new_packets.append(self._packets[o])
                        new_targets.append(self._targets[o])
                    else:
                        self._emit(self._keys[o], self._start[o],
                                   self._last[o], self._packets[o],
                                   len(self._targets[o][0]))
                    continue
                # Carried session extended by this segment.  The carry
                # row's destination is already in the stored target set,
                # so the union double-counts nothing; its packet is
                # subtracted from the segment count.
                key = self._keys[o]
                start = self._start[o]
                packets = self._packets[o] + int(seg_packets[i]) - 1
                t_hi, t_lo = self._union(
                    self._targets[o],
                    u_hi[u_off[i]:u_off[i + 1]],
                    u_lo[u_off[i]:u_off[i + 1]])
            else:
                row = int(starts[i])
                key = (int(key_hi[row]) if key_lo is None
                       else (int(key_hi[row]), int(key_lo[row])))
                start = float(start_ts[i])
                packets = int(seg_packets[i])
                # Copy: the slices view this chunk's full unique array.
                t_hi = u_hi[u_off[i]:u_off[i + 1]].copy()
                t_lo = u_lo[u_off[i]:u_off[i + 1]].copy()
            if stays:
                new_keys.append(key)
                new_start.append(start)
                new_last.append(float(end_ts[i]))
                new_packets.append(packets)
                new_targets.append((t_hi, t_lo))
            else:
                self._emit(key, start, float(end_ts[i]), packets,
                           len(t_hi))

        self._keys = new_keys
        self._start = new_start
        self._last = new_last
        self._packets = new_packets
        self._targets = new_targets
        self._watermark = horizon
        return len(self._events) - before

    def finish(self) -> list[ScanEvent]:
        """Close every open session and return the full sorted event list.

        Idempotent: a second call returns the same list.
        """
        for i in range(len(self._keys)):
            self._emit(self._keys[i], self._start[i], self._last[i],
                       self._packets[i], len(self._targets[i][0]))
        self._keys = []
        self._start = []
        self._last = []
        self._packets = []
        self._targets = []
        self._events.sort(key=_event_order)
        return list(self._events)


class FlowTracker:
    """Online equivalent of :func:`~repro.analysis.flows.aggregate_flows`.

    Same synthetic-carry construction as :class:`SessionTracker`, keyed by
    the 5-tuple; flows have no target sets, so the carry state is just
    (first_seen, last_seen, packets) per open flow — with the default 60 s
    inactivity timeout only flows active in a chunk's final minute survive
    a day boundary.
    """

    _TUPLE_DTYPES = (np.uint64, np.uint64, np.uint64, np.uint64,
                     np.uint8, np.uint16, np.uint16)

    def __init__(self, timeout: float = DEFAULT_FLOW_TIMEOUT):
        check_positive("timeout", timeout)
        self.timeout = timeout
        self._watermark = _NEG_INF
        self._flows: list[Flow] = []
        self._keys: list[tuple] = []  # (sh, sl, dh, dl, proto, sport, dport)
        self._first: list[float] = []
        self._last: list[float] = []
        self._packets: list[int] = []

    @property
    def open_flows(self) -> int:
        return len(self._keys)

    def _emit(self, key: tuple, first: float, last: float,
              packets: int) -> None:
        sh, sl, dh, dl, proto, sport, dport = key
        self._flows.append(Flow(
            src=(sh << 64) | sl, dst=(dh << 64) | dl,
            proto=proto, sport=sport, dport=dport,
            first_seen=first, last_seen=last, packets=packets))

    def _expire(self, horizon: float) -> None:
        keep = [i for i, last in enumerate(self._last)
                if last >= horizon - self.timeout]
        if len(keep) == len(self._keys):
            return
        for i, last in enumerate(self._last):
            if last < horizon - self.timeout:
                self._emit(self._keys[i], self._first[i], last,
                           self._packets[i])
        self._keys = [self._keys[i] for i in keep]
        self._first = [self._first[i] for i in keep]
        self._last = [self._last[i] for i in keep]
        self._packets = [self._packets[i] for i in keep]

    def feed(self, records: PacketRecords, now: float | None = None) -> int:
        """Consume one chunk; returns the number of flows closed."""
        n = len(records)
        k = len(self._keys)
        before = len(self._flows)
        if n:
            t_lo = float(records.ts.min())
            if t_lo < self._watermark:
                raise ValueError(
                    f"out-of-order feed: chunk starts at {t_lo}, before "
                    f"the tracker's horizon {self._watermark}")
        horizon = self._watermark
        if now is not None:
            horizon = max(horizon, float(now))
        if n:
            horizon = max(horizon, float(records.ts.max()))
        if n == 0:
            self._expire(horizon)
            self._watermark = horizon
            return len(self._flows) - before

        timeout = self.timeout
        ts = records.ts
        cols = [records.src_hi, records.src_lo,
                records.dst_hi, records.dst_lo,
                records.proto, records.sport, records.dport]
        if k:
            ts = np.concatenate([
                np.asarray(self._last, dtype=np.float64), ts])
            cols = [
                np.concatenate([
                    np.array([key[c] for key in self._keys], dtype=dtype),
                    col])
                for c, (col, dtype) in enumerate(
                    zip(cols, self._TUPLE_DTYPES))
            ]
        order = np.lexsort((ts,) + tuple(cols[::-1]))
        t = ts[order]
        sc = [c[order] for c in cols]
        m = n + k

        tuple_change = np.zeros(m - 1, dtype=bool)
        for c in sc:
            tuple_change |= c[1:] != c[:-1]
        new_seg = np.empty(m, dtype=bool)
        new_seg[0] = True
        new_seg[1:] = tuple_change | (t[1:] - t[:-1] > timeout)
        starts = np.flatnonzero(new_seg)
        n_segs = len(starts)
        seg_packets = np.diff(starts, append=m)
        ends = starts + seg_packets - 1
        start_ts = t[starts]
        end_ts = t[ends]

        tc_full = np.empty(m, dtype=bool)
        tc_full[0] = True
        tc_full[1:] = tuple_change
        seg_new_group = tc_full[starts]
        seg_last = np.empty(n_segs, dtype=bool)
        seg_last[:-1] = seg_new_group[1:]
        seg_last[-1] = True
        first_orig = order[starts]
        seg_carry = first_orig < k
        stay_open = seg_last & (end_ts >= horizon - timeout)
        special = seg_carry | stay_open

        plain = np.flatnonzero(~special)
        if plain.size:
            rows = starts[plain]
            flows = self._flows
            packed_rows = zip(*(c[rows].tolist() for c in sc),
                              start_ts[plain].tolist(),
                              end_ts[plain].tolist(),
                              seg_packets[plain].tolist())
            for sh, sl, dh, dl, pr, sp, dp, f, last, count in packed_rows:
                flows.append(Flow(
                    src=(sh << 64) | sl, dst=(dh << 64) | dl,
                    proto=pr, sport=sp, dport=dp,
                    first_seen=f, last_seen=last, packets=count))

        new_keys: list[tuple] = []
        new_first: list[float] = []
        new_last: list[float] = []
        new_packets: list[int] = []
        for i in np.flatnonzero(special).tolist():
            stays = bool(stay_open[i])
            if seg_carry[i]:
                o = int(first_orig[i])
                if int(seg_packets[i]) == 1:
                    if stays:
                        new_keys.append(self._keys[o])
                        new_first.append(self._first[o])
                        new_last.append(self._last[o])
                        new_packets.append(self._packets[o])
                    else:
                        self._emit(self._keys[o], self._first[o],
                                   self._last[o], self._packets[o])
                    continue
                key = self._keys[o]
                first = self._first[o]
                packets = self._packets[o] + int(seg_packets[i]) - 1
            else:
                row = int(starts[i])
                key = tuple(int(c[row]) for c in sc)
                first = float(start_ts[i])
                packets = int(seg_packets[i])
            if stays:
                new_keys.append(key)
                new_first.append(first)
                new_last.append(float(end_ts[i]))
                new_packets.append(packets)
            else:
                self._emit(key, first, float(end_ts[i]), packets)

        self._keys = new_keys
        self._first = new_first
        self._last = new_last
        self._packets = new_packets
        self._watermark = horizon
        return len(self._flows) - before

    def finish(self) -> list[Flow]:
        """Close every open flow and return the full sorted flow list."""
        for i in range(len(self._keys)):
            self._emit(self._keys[i], self._first[i], self._last[i],
                       self._packets[i])
        self._keys = []
        self._first = []
        self._last = []
        self._packets = []
        self._flows.sort(key=_flow_order)
        return list(self._flows)


@dataclass
class StreamSummary:
    """What a finished streaming run carries instead of full records."""

    name: str
    records_in: int
    #: aggregation level -> the run's full scan-event list (identical to
    #: batch ``detect_scans`` over the materialized records).
    events: dict[int, list[ScanEvent]] = field(default_factory=dict)
    #: the run's flow list (identical to batch ``aggregate_flows``), when
    #: flow tracking was enabled.
    flows: list[Flow] | None = None


class StreamAnalyzer:
    """One telescope's online analysis bundle.

    Holds a :class:`SessionTracker` per aggregation level (the paper's
    /128, /64, /48 by default) plus an optional :class:`FlowTracker`, all
    fed the same day chunk.  Fully picklable, so a streaming run's open
    state checkpoints alongside the scenario.
    """

    def __init__(
        self,
        name: str = "NT-A",
        levels: tuple[int, ...] = SCAN_LEVELS,
        min_targets: int = DEFAULT_MIN_TARGETS,
        timeout: float = DEFAULT_TIMEOUT,
        flows: bool = False,
        flow_timeout: float = DEFAULT_FLOW_TIMEOUT,
    ):
        self.name = name
        self.levels = tuple(levels)
        self.trackers = {
            level: SessionTracker(source_length=level,
                                  min_targets=min_targets, timeout=timeout)
            for level in self.levels
        }
        self.flow_tracker = FlowTracker(timeout=flow_timeout) if flows \
            else None
        self.records_in = 0
        self._summary: StreamSummary | None = None

    def feed(self, records: PacketRecords, now: float | None = None) -> int:
        """Feed one day chunk to every tracker; returns events closed."""
        closed = 0
        for tracker in self.trackers.values():
            closed += tracker.feed(records, now=now)
        if self.flow_tracker is not None:
            self.flow_tracker.feed(records, now=now)
        self.records_in += len(records)
        return closed

    @property
    def open_sessions(self) -> int:
        return sum(t.open_sessions for t in self.trackers.values())

    def finish(self) -> StreamSummary:
        """Finalize every tracker into a :class:`StreamSummary`
        (idempotent)."""
        if self._summary is None:
            self._summary = StreamSummary(
                name=self.name,
                records_in=self.records_in,
                events={level: tracker.finish()
                        for level, tracker in self.trackers.items()},
                flows=(self.flow_tracker.finish()
                       if self.flow_tracker is not None else None),
            )
        return self._summary
