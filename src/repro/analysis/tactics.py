"""Scan-tactic attribution (§5.4, Figure 11).

For each (scanner source /48, honeyprefix) pair, determine which deployed
features the scanner's probes match: protocol + destination port identify
ICMP/TCP/UDP probing; destination addresses identify domain, subdomain, and
hitlist targets; and probe *timing* disambiguates features sharing addresses
and ports — a probe to a domain-target web port before TLS issuance is
attributed to the domain (zone files), after issuance to the certificate
(CT logs).  Probes matching nothing responsive get the catch-all ``O``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.records import PacketRecords
from repro.core.features import Feature, combo_label
from repro.core.honeyprefix import Honeyprefix
from repro.net.packet import ICMPV6, TCP, UDP


@dataclass(frozen=True)
class TacticReport:
    """Figure 11 data for one honeyprefix."""

    honeyprefix: str
    #: combination label (e.g. "ID", "ITH") -> number of scanner sources.
    combos: Counter
    #: total scanner sources observed.
    total_sources: int

    def sources_using(self, code: str) -> int:
        """Sources whose combination includes feature code ``code``."""
        return sum(n for label, n in self.combos.items() if code in label)


def _classify_probe(
    hp: Honeyprefix,
    ts: float,
    dst: int,
    proto: int,
    dport: int,
    tls_root_time: float | None,
    tls_sub_time: float | None,
    hitlist_time: float | None,
) -> Feature:
    """Attribute one probe to one feature."""
    domain_addrs = set(hp.domain_targets.values())
    sub_addrs = set(hp.subdomain_targets.values())
    manual = set(hp.manual_hitlist_addresses)

    if dst in manual and hitlist_time is not None and ts >= hitlist_time:
        return Feature.HITLIST
    if dst in domain_addrs:
        if tls_root_time is not None and ts >= tls_root_time:
            return Feature.TLS_ROOT
        return Feature.DOMAIN
    if dst in sub_addrs:
        if tls_sub_time is not None and ts >= tls_sub_time:
            return Feature.TLS_SUB
        return Feature.SUBDOMAIN
    if proto == ICMPV6:
        return Feature.ICMP if hp.responds(dst, ICMPV6, None) else Feature.OTHER
    if proto == TCP:
        return Feature.TCP if hp.responds(dst, TCP, dport) else Feature.OTHER
    if proto == UDP:
        return Feature.UDP if hp.responds(dst, UDP, dport) else Feature.OTHER
    return Feature.OTHER


def label_tactics(
    records: PacketRecords,
    hp: Honeyprefix,
    source_length: int = 48,
) -> TacticReport:
    """Build the Figure 11 tactic combinations for one honeyprefix.

    ``records`` should already be restricted to traffic destined to the
    honeyprefix (use ``records.select(records.mask_dst_in(hp.prefix))``).
    """
    from repro.obs import get_tracer

    with get_tracer().span("analysis.label_tactics", honeyprefix=hp.name,
                           records=len(records)):
        return _label_tactics_impl(records, hp, source_length)


def _label_tactics_impl(
    records: PacketRecords,
    hp: Honeyprefix,
    source_length: int,
) -> TacticReport:
    tls_root_time = hp.feature_time(Feature.TLS_ROOT)
    tls_sub_time = hp.feature_time(Feature.TLS_SUB)
    hitlist_time = hp.feature_time(Feature.HITLIST)

    shift = 128 - source_length
    per_source: dict[int, set[Feature]] = {}
    src_iter = records.src_addresses()
    dst_iter = records.dst_addresses()
    for i in range(len(records)):
        src = next(src_iter)
        dst = next(dst_iter)
        source = (src >> shift) << shift if shift else src
        feature = _classify_probe(
            hp,
            float(records.ts[i]),
            dst,
            int(records.proto[i]),
            int(records.dport[i]),
            tls_root_time,
            tls_sub_time,
            hitlist_time,
        )
        per_source.setdefault(source, set()).add(feature)

    combos: Counter = Counter()
    for features in per_source.values():
        combos[combo_label(features)] += 1
    return TacticReport(
        honeyprefix=hp.name,
        combos=combos,
        total_sources=len(per_source),
    )
