"""Scan-campaign clustering.

Scan events (§ ``scandetect``) are per-source probing sessions; real-world
analyses group them into *campaigns*: one scanning operation possibly
spanning many sessions, days, and honeyprefixes.  A campaign here is a
maximal set of scan events from the same aggregated source whose active
windows lie within ``max_gap`` of each other, annotated with a strategy
fingerprint: protocol mix, targeting style (low-address vs. spread), and
the /48 footprint.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro._util import DAY, check_positive
from repro.analysis.records import PacketRecords
from repro.analysis.scandetect import ScanEvent, detect_scans
from repro.net.packet import ICMPV6, TCP, UDP


@dataclass(frozen=True)
class Campaign:
    """One clustered scanning operation."""

    source: int
    source_length: int
    start: float
    end: float
    sessions: int
    packets: int
    unique_targets: int
    prefixes_48: int
    protocol_mix: dict[str, float]
    #: Fraction of probes aimed at low host addresses (< 2^16 offset in
    #: their /64) — the "::1-style" targeting signature.
    low_address_fraction: float

    @property
    def duration_days(self) -> float:
        return (self.end - self.start) / DAY

    @property
    def dominant_protocol(self) -> str:
        return max(self.protocol_mix, key=self.protocol_mix.get)

    @property
    def targeting_style(self) -> str:
        """Coarse strategy label: liveness sweep vs. exploration."""
        if self.low_address_fraction > 0.6:
            return "low-address sweep"
        if self.unique_targets > 0.8 * self.packets:
            return "exploration (TGA-like)"
        return "mixed"


def _fingerprint(records: PacketRecords, source: int,
                 source_length: int) -> tuple[dict[str, float], float, int]:
    """Protocol mix, low-address fraction, and /48 footprint of a source."""
    shift = 128 - source_length
    mask = np.fromiter(
        (((s >> shift) << shift if shift else s) == source
         for s in records.src_addresses()),
        dtype=bool, count=len(records),
    )
    sub = records.select(mask)
    n = len(sub)
    if n == 0:
        return {"icmpv6": 0.0, "tcp": 0.0, "udp": 0.0}, 0.0, 0
    mix = {
        "icmpv6": float((sub.proto == np.uint8(ICMPV6)).sum()) / n,
        "tcp": float((sub.proto == np.uint8(TCP)).sum()) / n,
        "udp": float((sub.proto == np.uint8(UDP)).sum()) / n,
    }
    low = 0
    nets = set()
    for dst in sub.dst_addresses():
        if dst & 0xFFFFFFFFFFFFFFFF < (1 << 16):
            low += 1
        nets.add((dst >> 80) << 80)
    return mix, low / n, len(nets)


def cluster_campaigns(
    records: PacketRecords,
    source_length: int = 48,
    max_gap: float = 3 * DAY,
    min_targets: int = 100,
    timeout: float = 3_600.0,
) -> list[Campaign]:
    """Cluster scan events into campaigns.

    Events from the same /``source_length`` source merge when the gap
    between one event's end and the next one's start is at most
    ``max_gap``.
    """
    check_positive("max_gap", max_gap)
    events = detect_scans(records, source_length=source_length,
                          min_targets=min_targets, timeout=timeout)
    by_source: dict[int, list[ScanEvent]] = {}
    for event in events:
        by_source.setdefault(event.source, []).append(event)

    campaigns: list[Campaign] = []
    for source, source_events in by_source.items():
        source_events.sort(key=lambda e: e.start)
        cluster: list[ScanEvent] = []
        mix, low_fraction, prefixes = _fingerprint(
            records, source, source_length
        )

        def _flush() -> None:
            if not cluster:
                return
            campaigns.append(Campaign(
                source=source,
                source_length=source_length,
                start=cluster[0].start,
                end=max(e.end for e in cluster),
                sessions=len(cluster),
                packets=sum(e.packets for e in cluster),
                unique_targets=sum(e.unique_targets for e in cluster),
                prefixes_48=prefixes,
                protocol_mix=mix,
                low_address_fraction=low_fraction,
            ))

        for event in source_events:
            if cluster and event.start - max(e.end for e in cluster) > max_gap:
                _flush()
                cluster = []
            cluster.append(event)
        _flush()
    campaigns.sort(key=lambda c: -c.packets)
    return campaigns


def campaign_summary(campaigns: list[Campaign], max_rows: int = 10) -> str:
    """Human-readable campaign table."""
    lines = [f"scan campaigns ({len(campaigns)} total)"]
    lines.append(f"  {'style':22s} {'proto':7s} {'days':>5s} "
                 f"{'sessions':>8s} {'packets':>8s} {'targets':>8s} "
                 f"{'/48s':>5s}")
    for campaign in campaigns[:max_rows]:
        lines.append(
            f"  {campaign.targeting_style:22s} "
            f"{campaign.dominant_protocol:7s} "
            f"{campaign.duration_days:5.1f} {campaign.sessions:8d} "
            f"{campaign.packets:8d} {campaign.unique_targets:8d} "
            f"{campaign.prefixes_48:5d}"
        )
    styles = Counter(c.targeting_style for c in campaigns)
    lines.append("  styles: " + ", ".join(
        f"{style}={count}" for style, count in styles.most_common()
    ))
    return "\n".join(lines)
