"""Hilbert-curve address-space maps (Appendix E, Figure 14).

Maps the 65,536 /48 subnets of a /32 onto a 256x256 Hilbert curve so that
numerically adjacent subnets stay visually adjacent — the standard way to
render telescope address space.  Returns plain numpy grids; rendering is
left to the caller (the benchmark prints an ASCII digest).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.records import PacketRecords
from repro.net.addr import IPv6Prefix


def hilbert_d2xy(order: int, d: int) -> tuple[int, int]:
    """Convert distance ``d`` along a Hilbert curve of 2^order x 2^order
    cells into (x, y) coordinates."""
    n = 1 << order
    if not 0 <= d < n * n:
        raise ValueError(f"distance {d} outside curve of order {order}")
    x = y = 0
    t = d
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # Rotate quadrant.
        if ry == 0:
            if rx == 1:
                x, y = s - 1 - x, s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_xy2d(order: int, x: int, y: int) -> int:
    """Inverse of :func:`hilbert_d2xy`."""
    n = 1 << order
    if not (0 <= x < n and 0 <= y < n):
        raise ValueError(f"({x}, {y}) outside grid of order {order}")
    d = 0
    s = n // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        if ry == 0:
            if rx == 1:
                x, y = s - 1 - x, s - 1 - y
            x, y = y, x
        s //= 2
    return d


def hilbert_map(
    records: PacketRecords,
    covering_prefix: IPv6Prefix,
    cell_length: int = 48,
) -> np.ndarray:
    """Packet counts per /``cell_length`` subnet laid out on a Hilbert grid.

    For a /32 covering prefix with /48 cells the result is a 256x256 grid
    (order 8): Figure 14's canvas.
    """
    bits = cell_length - covering_prefix.length
    if bits <= 0 or bits % 2 != 0:
        raise ValueError(
            "cell_length - covering length must be a positive even number"
        )
    order = bits // 2
    size = 1 << order
    grid = np.zeros((size, size), dtype=np.float64)
    shift = 128 - cell_length
    base_index = covering_prefix.network >> shift
    for dst in records.dst_addresses():
        if dst not in covering_prefix:
            continue
        d = (dst >> shift) - base_index
        x, y = hilbert_d2xy(order, int(d))
        grid[y, x] += 1
    return grid


def prefix_cells(
    prefixes: list[IPv6Prefix],
    covering_prefix: IPv6Prefix,
    cell_length: int = 48,
) -> list[tuple[int, int]]:
    """Grid coordinates of given prefixes (honeyprefix markers on Fig 14)."""
    bits = cell_length - covering_prefix.length
    order = bits // 2
    shift = 128 - cell_length
    base_index = covering_prefix.network >> shift
    cells = []
    for prefix in prefixes:
        if not covering_prefix.contains_prefix(prefix):
            raise ValueError(f"{prefix} outside {covering_prefix}")
        d = (prefix.network >> shift) - base_index
        cells.append(hilbert_d2xy(order, int(d)))
    return cells
