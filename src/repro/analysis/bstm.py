"""Bayesian structural time-series (BSTM) causal-impact estimation.

The paper quantifies each controlled experiment with a
CausalImpact-style analysis (Brodersen et al.): fit a structural
time-series model to the *pre-intervention* treatment series with the
best-matched control series as a regression covariate, project the
counterfactual ("what would the honeyprefix have seen without the
feature?") over the post-period, and report the average effect size with a
95% interval.

Model
-----
Observation:  y_t = mu_t + gamma_t + beta' x_t + eps_t,
              eps_t ~ N(0, sigma_obs^2)
Level:        mu_{t+1} = mu_t + eta_t,  eta_t ~ N(0, sigma_level^2)
Seasonal:     gamma_{t+1} = -(gamma_t + ... + gamma_{t-S+2}) + omega_t,
              omega_t ~ N(0, sigma_seasonal^2)   [optional, period S]

``beta`` is a static regression on the control series (fit by ridge-
regularized least squares on the pre-period); the local level absorbs the
treatment prefix's own baseline and drift, so parallel trends are *not*
assumed — the paper's stated reason for preferring BSTM over
difference-in-differences.  The optional dummy-seasonal component (weekly
by default, as in CausalImpact) captures day-of-week scanning rhythms.
The variance hyperparameters are fit by maximum likelihood through a
Kalman filter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize, stats

from repro._util import make_rng

#: Hoisted out of the Kalman likelihood loops: recomputing ``log(2*pi)``
#: per step is pure overhead.
_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass(frozen=True)
class KalmanResult:
    """Filtered local-level estimates."""

    level: np.ndarray        # filtered state mean per step
    level_var: np.ndarray    # filtered state variance per step
    loglik: float
    sigma_obs2: float
    sigma_level2: float


def kalman_filter_local_level(
    z: np.ndarray, sigma_obs2: float, sigma_level2: float
) -> KalmanResult:
    """Run a Kalman filter for the local-level model on series ``z``.

    Missing observations (NaN) are skipped (pure prediction step), which
    supports gappy daily series.
    """
    n = len(z)
    level = np.zeros(n)
    level_var = np.zeros(n)
    # Diffuse-ish initialization around the first finite observation.
    finite_mask = np.isfinite(z)
    finite = z[finite_mask]
    mu = float(finite[0]) if len(finite) else 0.0
    var = float(np.var(finite)) + sigma_obs2 + 1.0 if len(finite) else 1.0
    loglik = 0.0
    # Hot loop: everything is a Python float and a local name — the numpy
    # per-step scalar ops and repeated attribute/ufunc lookups the naive
    # version paid for dominate its runtime.
    z_values = z.tolist()
    observed = finite_mask.tolist()
    log = math.log
    for t in range(n):
        # Predict.
        var = var + sigma_level2
        if observed[t]:
            # Update.
            innovation = z_values[t] - mu
            innovation_var = var + sigma_obs2
            gain = var / innovation_var
            mu = mu + gain * innovation
            var = (1.0 - gain) * var
            loglik -= 0.5 * (
                _LOG_2PI + log(innovation_var)
                + innovation * innovation / innovation_var
            )
        level[t] = mu
        level_var[t] = var
    return KalmanResult(
        level=level, level_var=level_var, loglik=float(loglik),
        sigma_obs2=sigma_obs2, sigma_level2=sigma_level2,
    )


def fit_local_level(z: np.ndarray) -> KalmanResult:
    """MLE fit of the local-level variances via L-BFGS on log-variances."""
    z = np.asarray(z, dtype=float)
    finite = z[np.isfinite(z)]
    if len(finite) < 3:
        raise ValueError("need at least 3 finite observations to fit")
    scale = max(float(np.var(finite)), 1e-8)

    def negloglik(params: np.ndarray) -> float:
        sigma_obs2 = np.exp(params[0]) * scale
        sigma_level2 = np.exp(params[1]) * scale
        return -kalman_filter_local_level(z, sigma_obs2, sigma_level2).loglik

    best = None
    for start in ([0.0, -2.0], [-1.0, 0.0], [0.0, 0.0]):
        res = optimize.minimize(
            negloglik, np.array(start), method="L-BFGS-B",
            bounds=[(-12.0, 6.0), (-12.0, 6.0)],
        )
        if best is None or res.fun < best.fun:
            best = res
    sigma_obs2 = float(np.exp(best.x[0]) * scale)
    sigma_level2 = float(np.exp(best.x[1]) * scale)
    return kalman_filter_local_level(z, sigma_obs2, sigma_level2)


class BstmModel:
    """Structural time-series model with static control regression."""

    def __init__(self, ridge: float = 1e-3):
        self.ridge = ridge
        self.beta: np.ndarray | None = None
        self.intercept: float = 0.0
        self._kalman: KalmanResult | None = None

    def fit(self, y_pre: np.ndarray, x_pre: np.ndarray) -> "BstmModel":
        """Fit on the pre-intervention window.

        ``x_pre`` has shape (n, k) — one column per control series; pass an
        (n, 0) array for a control-free (pure local level) model.
        """
        y_pre = np.asarray(y_pre, dtype=float)
        x_pre = np.atleast_2d(np.asarray(x_pre, dtype=float))
        if x_pre.shape[0] != len(y_pre):
            x_pre = x_pre.T
        if x_pre.shape[0] != len(y_pre):
            raise ValueError("control series length mismatch")
        k = x_pre.shape[1]
        if k:
            # Ridge-regularized least squares with intercept.
            design = np.column_stack([np.ones(len(y_pre)), x_pre])
            gram = design.T @ design + self.ridge * np.eye(k + 1)
            coef = np.linalg.solve(gram, design.T @ y_pre)
            self.intercept = float(coef[0])
            self.beta = coef[1:]
            residual = y_pre - design @ coef
        else:
            self.intercept = 0.0
            self.beta = np.zeros(0)
            residual = y_pre.copy()
        self._kalman = fit_local_level(residual)
        return self

    def _require_fit(self) -> KalmanResult:
        if self._kalman is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self._kalman

    def predict(
        self, x_post: np.ndarray, horizon: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Counterfactual mean and variance over the post-period.

        The level's predictive mean stays at the last filtered level while
        its variance grows by sigma_level^2 per step (random-walk fan-out);
        the regression part follows the observed control series.
        """
        kal = self._require_fit()
        x_post = np.asarray(x_post, dtype=float)
        # A control-free model is fed an (h, 0) matrix (mirroring fit());
        # its row count still defines the horizon even though size == 0.
        control_free = x_post.ndim == 2 and x_post.shape[1] == 0
        x_post = np.atleast_2d(x_post)
        if horizon is None:
            horizon = (
                x_post.shape[0] if (x_post.size or control_free) else 0
            )
        if x_post.size and x_post.shape[0] != horizon:
            x_post = x_post.T
        steps = np.arange(1, horizon + 1)
        level_mean = np.full(horizon, kal.level[-1])
        level_var = kal.level_var[-1] + steps * kal.sigma_level2
        if len(self.beta):
            regression = self.intercept + x_post @ self.beta
        else:
            regression = np.zeros(horizon)
        mean = level_mean + regression
        var = level_var + kal.sigma_obs2
        return mean, var


@dataclass(frozen=True)
class ImpactResult:
    """Causal-impact summary for one intervention."""

    counterfactual: np.ndarray        # predicted series over the post-period
    counterfactual_var: np.ndarray
    pointwise: np.ndarray             # observed - counterfactual, per day
    average_effect: float             # the paper's AES
    ci_low: float
    ci_high: float
    significant: bool
    relative_effect: float


class CausalImpact:
    """End-to-end effect estimation for one treatment/control pair."""

    def __init__(self, alpha: float = 0.05,
                 rng: np.random.Generator | int | None = 0,
                 n_resamples: int = 1000,
                 seasonal_period: int | None = None):
        """``seasonal_period=7`` adds the weekly dummy-seasonal component
        (CausalImpact's default); None keeps the pure local-level model."""
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1): {alpha}")
        self.alpha = alpha
        self._rng = make_rng(rng)
        self.n_resamples = n_resamples
        self.seasonal_period = seasonal_period

    def run(
        self,
        y: np.ndarray,
        x: np.ndarray,
        intervention_index: int,
    ) -> ImpactResult:
        """Estimate the intervention's effect.

        ``y`` is the treatment series (daily metric), ``x`` the control
        series (same length; may be (n, k) for several controls), and
        ``intervention_index`` the first post-intervention day.
        """
        from repro.obs import get_tracer

        with get_tracer().span("analysis.causal_impact",
                               n=len(y), intervention=intervention_index):
            return self._run_impl(y, x, intervention_index)

    def bootstrap_draws(
        self,
        pointwise: np.ndarray,
        cf_sd: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """All ``n_resamples`` bootstrap means in one batched draw.

        One ``(B, n_post)`` index draw plus one matching noise draw replace
        the per-resample loop; the centered row means come out identical to
        :meth:`bootstrap_draws_reference` under the same generator state
        because both consume the stream in the same order (all indices
        first, then all noise, row-major).
        """
        n_post = len(pointwise)
        idx = rng.integers(0, n_post, size=(self.n_resamples, n_post))
        noise = rng.normal(0.0, cf_sd[idx])
        resampled = pointwise[idx] + noise - noise.mean(axis=1, keepdims=True)
        return resampled.mean(axis=1)

    def bootstrap_draws_reference(
        self,
        pointwise: np.ndarray,
        cf_sd: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Scalar per-resample loop: the readable spec for
        :meth:`bootstrap_draws`, kept for the seeded equivalence test."""
        n_post = len(pointwise)
        idx_rows = [rng.integers(0, n_post, size=n_post)
                    for _ in range(self.n_resamples)]
        draws = np.empty(self.n_resamples)
        for b, idx in enumerate(idx_rows):
            noise = rng.normal(0.0, cf_sd[idx])
            draws[b] = np.mean(pointwise[idx] + noise - noise.mean())
        return draws

    def _run_impl(
        self,
        y: np.ndarray,
        x: np.ndarray,
        intervention_index: int,
    ) -> ImpactResult:
        y = np.asarray(y, dtype=float)
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        if len(y) != x.shape[0]:
            raise ValueError("treatment/control length mismatch")
        if not 3 <= intervention_index < len(y):
            raise ValueError(
                "intervention index must leave >= 3 pre days and >= 1 post day"
            )
        y_pre, y_post = y[:intervention_index], y[intervention_index:]
        x_pre, x_post = x[:intervention_index], x[intervention_index:]

        if self.seasonal_period is not None:
            model = SeasonalBstmModel(period=self.seasonal_period).fit(
                y_pre, x_pre
            )
        else:
            model = BstmModel().fit(y_pre, x_pre)
        counterfactual, cf_var = model.predict(x_post)
        pointwise = y_post - counterfactual
        average_effect = float(np.mean(pointwise))

        # 95% interval by resampling the daily effects (paper §3.4),
        # combined with the model's predictive uncertainty.
        n_post = len(pointwise)
        cf_sd = np.sqrt(np.maximum(cf_var, 0.0))
        draws = self.bootstrap_draws(pointwise, cf_sd, self._rng)
        # Add predictive-mean uncertainty from the counterfactual itself.
        mean_sd = float(np.sqrt(np.sum(cf_var)) / n_post)
        spread = self._rng.normal(0.0, mean_sd, size=self.n_resamples)
        draws = draws + spread
        ci_low = float(np.quantile(draws, self.alpha / 2))
        ci_high = float(np.quantile(draws, 1 - self.alpha / 2))
        significant = not (ci_low <= 0.0 <= ci_high)
        baseline = float(np.sum(counterfactual))
        relative = (
            float(np.sum(pointwise)) / baseline if abs(baseline) > 1e-12 else
            float("inf") if np.sum(pointwise) > 0 else 0.0
        )
        return ImpactResult(
            counterfactual=counterfactual,
            counterfactual_var=cf_var,
            pointwise=pointwise,
            average_effect=average_effect,
            ci_low=ci_low,
            ci_high=ci_high,
            significant=significant,
            relative_effect=relative,
        )


@dataclass(frozen=True)
class SeasonalKalmanResult:
    """Filtered level+seasonal state-space estimates."""

    state_mean: np.ndarray       # final filtered state vector
    state_cov: np.ndarray        # final filtered state covariance
    fitted_level: np.ndarray     # filtered (mu_t + gamma_t) per step
    loglik: float
    sigma_obs2: float
    sigma_level2: float
    sigma_seasonal2: float
    period: int


def _seasonal_system(period: int) -> tuple[np.ndarray, np.ndarray]:
    """Transition matrix T and observation vector Z for level+seasonal."""
    dim = period  # 1 level + (period - 1) seasonal states
    transition = np.zeros((dim, dim))
    transition[0, 0] = 1.0
    # Seasonal block: gamma_{t+1} = -(sum of previous period-1 gammas).
    transition[1, 1:] = -1.0
    for i in range(2, dim):
        transition[i, i - 1] = 1.0
    observation = np.zeros(dim)
    observation[0] = 1.0
    observation[1] = 1.0
    return transition, observation


def kalman_filter_seasonal(
    z: np.ndarray,
    sigma_obs2: float,
    sigma_level2: float,
    sigma_seasonal2: float,
    period: int = 7,
) -> SeasonalKalmanResult:
    """Kalman filter for the local-level + dummy-seasonal model."""
    if period < 2:
        raise ValueError(f"seasonal period must be >= 2, got {period}")
    n = len(z)
    transition, observation = _seasonal_system(period)
    dim = period
    state_noise = np.zeros((dim, dim))
    state_noise[0, 0] = sigma_level2
    state_noise[1, 1] = sigma_seasonal2

    finite = z[np.isfinite(z)]
    state = np.zeros(dim)
    state[0] = float(finite[0]) if len(finite) else 0.0
    scale = float(np.var(finite)) + sigma_obs2 + 1.0 if len(finite) else 1.0
    covariance = np.eye(dim) * scale

    fitted = np.zeros(n)
    loglik = 0.0
    # Hot loop: the observation vector picks out states 0 and 1, so the
    # ``observation @ ...`` products reduce to two-element sums — worth
    # spelling out since this filter runs inside an L-BFGS objective.
    z_values = z.tolist()
    observed = np.isfinite(z).tolist()
    transition_t = transition.T
    log = math.log
    for t in range(n):
        # Predict.
        state = transition @ state
        covariance = transition @ covariance @ transition_t + state_noise
        if observed[t]:
            prediction = state[0] + state[1]
            innovation = z_values[t] - prediction
            obs_cov = covariance[0] + covariance[1]
            innovation_var = obs_cov[0] + obs_cov[1] + sigma_obs2
            gain = obs_cov / innovation_var
            state = state + gain * innovation
            covariance = covariance - np.outer(gain, obs_cov)
            loglik -= 0.5 * (
                _LOG_2PI + log(innovation_var)
                + innovation * innovation / innovation_var
            )
        fitted[t] = state[0] + state[1]
    return SeasonalKalmanResult(
        state_mean=state, state_cov=covariance, fitted_level=fitted,
        loglik=float(loglik), sigma_obs2=sigma_obs2,
        sigma_level2=sigma_level2, sigma_seasonal2=sigma_seasonal2,
        period=period,
    )


def fit_seasonal(z: np.ndarray, period: int = 7) -> SeasonalKalmanResult:
    """MLE fit of the three variances for the seasonal model."""
    z = np.asarray(z, dtype=float)
    finite = z[np.isfinite(z)]
    if len(finite) < period + 2:
        raise ValueError(
            f"need at least {period + 2} finite observations to fit a "
            f"period-{period} seasonal model"
        )
    scale = max(float(np.var(finite)), 1e-8)

    def negloglik(params: np.ndarray) -> float:
        return -kalman_filter_seasonal(
            z,
            np.exp(params[0]) * scale,
            np.exp(params[1]) * scale,
            np.exp(params[2]) * scale,
            period=period,
        ).loglik

    best = None
    for start in ([0.0, -2.0, -4.0], [-1.0, -1.0, -2.0]):
        res = optimize.minimize(
            negloglik, np.array(start), method="L-BFGS-B",
            bounds=[(-12.0, 6.0)] * 3,
        )
        if best is None or res.fun < best.fun:
            best = res
    return kalman_filter_seasonal(
        z,
        float(np.exp(best.x[0]) * scale),
        float(np.exp(best.x[1]) * scale),
        float(np.exp(best.x[2]) * scale),
        period=period,
    )


class SeasonalBstmModel(BstmModel):
    """BSTM with static regression plus a weekly seasonal component.

    Drop-in extension of :class:`BstmModel`: the residual (after the
    control regression) is modeled as local level + dummy seasonal, and
    predictions roll the seasonal pattern forward deterministically while
    the level fans out.
    """

    def __init__(self, ridge: float = 1e-3, period: int = 7):
        super().__init__(ridge=ridge)
        self.period = period
        self._seasonal: SeasonalKalmanResult | None = None

    def fit(self, y_pre: np.ndarray, x_pre: np.ndarray) -> "SeasonalBstmModel":
        y_pre = np.asarray(y_pre, dtype=float)
        x_pre = np.atleast_2d(np.asarray(x_pre, dtype=float))
        if x_pre.shape[0] != len(y_pre):
            x_pre = x_pre.T
        if x_pre.shape[0] != len(y_pre):
            raise ValueError("control series length mismatch")
        k = x_pre.shape[1]
        if k:
            design = np.column_stack([np.ones(len(y_pre)), x_pre])
            gram = design.T @ design + self.ridge * np.eye(k + 1)
            coef = np.linalg.solve(gram, design.T @ y_pre)
            self.intercept = float(coef[0])
            self.beta = coef[1:]
            residual = y_pre - design @ coef
        else:
            self.intercept = 0.0
            self.beta = np.zeros(0)
            residual = y_pre.copy()
        self._seasonal = fit_seasonal(residual, period=self.period)
        return self

    def predict(self, x_post: np.ndarray,
                horizon: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        if self._seasonal is None:
            raise RuntimeError("model is not fitted; call fit() first")
        seasonal = self._seasonal
        x_post = np.atleast_2d(np.asarray(x_post, dtype=float))
        if horizon is None:
            horizon = x_post.shape[0] if x_post.size else 0
        if x_post.size and x_post.shape[0] != horizon:
            x_post = x_post.T
        transition, observation = _seasonal_system(seasonal.period)
        state_noise = np.zeros_like(transition)
        state_noise[0, 0] = seasonal.sigma_level2
        state_noise[1, 1] = seasonal.sigma_seasonal2
        state = seasonal.state_mean.copy()
        covariance = seasonal.state_cov.copy()
        mean = np.zeros(horizon)
        var = np.zeros(horizon)
        for t in range(horizon):
            state = transition @ state
            covariance = (transition @ covariance @ transition.T
                          + state_noise)
            mean[t] = float(observation @ state)
            var[t] = float(observation @ covariance @ observation
                           + seasonal.sigma_obs2)
        if len(self.beta):
            mean = mean + self.intercept + x_post @ self.beta
        return mean, var
