"""Analysis pipeline: flow aggregation, scan detection, metadata joins,
telescope comparison, causal effect estimation, and the paper's
figure-specific analyses (scope, tactics, Hilbert maps).
"""

from repro.analysis.records import PacketRecords
from repro.analysis.flows import Flow, aggregate_flows
from repro.analysis.scandetect import ScanEvent, detect_scans
from repro.analysis.jaccard import jaccard_similarity, overlap_report
from repro.analysis.asinfo import MetadataJoiner, SourceBreakdown
from repro.analysis.bstm import BstmModel, CausalImpact
from repro.analysis.effects import EffectEstimate, daily_series, estimate_effect
from repro.analysis.scope import scanner_scope
from repro.analysis.tactics import label_tactics
from repro.analysis.hilbert import hilbert_map
from repro.analysis.blocklist import (
    BlocklistEntry,
    recommend_blocklist,
    render_blocklist,
)
from repro.analysis.campaigns import (
    Campaign,
    campaign_summary,
    cluster_campaigns,
)
from repro.analysis.streaming import (
    FlowTracker,
    SessionTracker,
    StreamAnalyzer,
    StreamSummary,
)

__all__ = [
    "PacketRecords",
    "Flow",
    "aggregate_flows",
    "ScanEvent",
    "detect_scans",
    "jaccard_similarity",
    "overlap_report",
    "MetadataJoiner",
    "SourceBreakdown",
    "BstmModel",
    "CausalImpact",
    "EffectEstimate",
    "daily_series",
    "estimate_effect",
    "scanner_scope",
    "label_tactics",
    "hilbert_map",
    "BlocklistEntry",
    "recommend_blocklist",
    "render_blocklist",
    "Campaign",
    "campaign_summary",
    "cluster_campaigns",
    "FlowTracker",
    "SessionTracker",
    "StreamAnalyzer",
    "StreamSummary",
]
