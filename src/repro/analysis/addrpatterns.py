"""IPv6 address-structure analysis.

Classifies interface identifiers (IIDs, the low 64 bits) into the
categories the hitlist literature uses (Gasser et al.'s "Clusters in the
Expanse"): low-byte addresses, embedded-IPv4, EUI-64 (MAC-derived),
embedded-port, and pseudorandom (privacy) addresses.  The telescope side
uses this to characterize *what kind of targets* scanners generate — a
low-byte-heavy mix betrays hitlist/::1-style targeting, a random-heavy mix
betrays TGA exploration.
"""

from __future__ import annotations

import enum
import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

import numpy as np


class IidClass(enum.Enum):
    """Interface-identifier structural classes."""

    LOW_BYTE = "low_byte"          # ::1, ::2, ... (machine-assigned)
    EMBEDDED_IPV4 = "embedded_ipv4"
    EUI64 = "eui64"                # ff:fe in the middle (MAC-derived)
    EMBEDDED_PORT = "embedded_port"  # ::443, ::80 style service hints
    PATTERN_BYTES = "pattern_bytes"  # repeated/structured nibbles
    RANDOM = "random"              # pseudorandom (privacy addresses)


#: Common service ports that show up as vanity IIDs.
_SERVICE_PORTS = {21, 22, 25, 53, 80, 110, 123, 143, 443, 587, 993, 995,
                  3306, 5060, 8080, 8443}


def classify_iid(address: int) -> IidClass:
    """Classify the IID (low 64 bits) of one address."""
    iid = address & 0xFFFFFFFFFFFFFFFF
    if iid < (1 << 16):
        # Vanity port IIDs are written so the *hex digits* read as the
        # decimal port (2001:db8::443 serves HTTPS), so check both the
        # raw value and the digits-as-decimal reading.
        if iid in _SERVICE_PORTS:
            return IidClass.EMBEDDED_PORT
        digits = f"{iid:x}"
        if digits.isdigit() and int(digits) in _SERVICE_PORTS:
            return IidClass.EMBEDDED_PORT
        return IidClass.LOW_BYTE
    # EUI-64: 0xfffe in bytes 3-4 of the IID.
    if (iid >> 24) & 0xFFFF == 0xFFFE:
        return IidClass.EUI64
    # Embedded IPv4: hex digits that read as dotted-quad nibble groups —
    # heuristic: top 32 bits zero, bottom 32 bits look like an IPv4 in hex
    # (each byte <= 255 trivially true) with a plausible first octet.
    if iid >> 32 == 0 and iid > (1 << 16):
        first_octet = (iid >> 24) & 0xFF
        if first_octet != 0:
            return IidClass.EMBEDDED_IPV4
    # Structured nibbles: low entropy over the 16 IID nibbles.
    nibbles = [(iid >> shift) & 0xF for shift in range(0, 64, 4)]
    counts = Counter(nibbles)
    entropy = -sum(
        (c / 16) * math.log2(c / 16) for c in counts.values()
    )
    if entropy < 2.0:
        return IidClass.PATTERN_BYTES
    return IidClass.RANDOM


@dataclass(frozen=True)
class AddressProfile:
    """Structural profile of a set of addresses."""

    total: int
    class_counts: dict[IidClass, int]
    #: Mean per-nibble entropy over the IID (bits, 0..4).
    mean_iid_entropy: float

    def share(self, iid_class: IidClass) -> float:
        if self.total == 0:
            return 0.0
        return self.class_counts.get(iid_class, 0) / self.total

    @property
    def dominant(self) -> IidClass:
        if not self.class_counts:
            return IidClass.RANDOM
        return max(self.class_counts, key=self.class_counts.get)

    def render(self) -> str:
        lines = [f"address-structure profile ({self.total} addresses, "
                 f"mean IID nibble entropy {self.mean_iid_entropy:.2f} bits)"]
        for iid_class, count in sorted(self.class_counts.items(),
                                       key=lambda kv: -kv[1]):
            lines.append(f"  {iid_class.value:15s} {count:8d} "
                         f"({count / self.total:6.1%})")
        return "\n".join(lines)


def profile_addresses(addresses: Iterable[int]) -> AddressProfile:
    """Build the structural profile of an address set."""
    counts: Counter = Counter()
    entropies = []
    total = 0
    for address in addresses:
        total += 1
        counts[classify_iid(address)] += 1
        iid = address & 0xFFFFFFFFFFFFFFFF
        nibbles = np.array([(iid >> shift) & 0xF
                            for shift in range(0, 64, 4)])
        _, nibble_counts = np.unique(nibbles, return_counts=True)
        p = nibble_counts / 16
        entropies.append(float(-(p * np.log2(p)).sum()))
    return AddressProfile(
        total=total,
        class_counts=dict(counts),
        mean_iid_entropy=float(np.mean(entropies)) if entropies else 0.0,
    )


def nibble_entropy_profile(addresses: list[int]) -> np.ndarray:
    """Per-position nibble entropy across an address *set* (32 values).

    The entropy fingerprint the clustering TGAs operate on: positions
    where all addresses agree contribute 0 bits, fully mixed positions
    contribute 4.
    """
    if not addresses:
        return np.zeros(32)
    columns = np.zeros((len(addresses), 32), dtype=np.int8)
    for i, address in enumerate(addresses):
        for pos in range(32):
            columns[i, pos] = (address >> (124 - 4 * pos)) & 0xF
    out = np.zeros(32)
    n = len(addresses)
    for pos in range(32):
        _, counts = np.unique(columns[:, pos], return_counts=True)
        p = counts / n
        out[pos] = float(-(p * np.log2(p)).sum())
    return out
