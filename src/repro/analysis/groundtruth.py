"""Ground-truth detection scoring.

The simulator knows which scanner agent emitted every packet — provenance
the paper's telescopes could never observe.  The emission path threads a
stable agent id through :class:`~repro.net.batch.PacketBatch` as the
``origin`` column; the capture boundary strips it from the analysis-facing
records and retains it in a sidecar :class:`GroundTruthRecords` table.

This module closes the loop: :func:`truth_events` builds the *actual* scan
sessions per agent (the same ≥``min_targets``-distinct-destinations /
``timeout``-gap definition the detector uses, but grouped by the true
emitter instead of the observed source prefix), and :func:`score_detection`
grades the detector's output against them:

* **precision** — fraction of detected events whose packets all came from
  a single agent (an impure event blends scanners the analysis would then
  mis-attribute);
* **recall** — fraction of truth scan events recovered by at least one
  detected event (same agent contributing, overlapping time);
* **fragmentation** — mean number of detected events covering one
  recovered truth event (>1 at /128 when an agent rotates source
  addresses and the detector splits its scan);
* **merge rate** — fraction of detected events containing packets from
  more than one agent (rises with coarser aggregation, /48 merging
  co-located scanners).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.records import PacketRecords
from repro.analysis.scandetect import (
    DEFAULT_MIN_TARGETS,
    DEFAULT_TIMEOUT,
    ScanEvent,
    detect_scans,
    sessionize,
)
from repro.net.addr import mask_u64
from repro.obs import get_tracer

_U64 = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class GroundTruthRecords:
    """Sidecar provenance table: one row per captured packet.

    Column-compatible with :class:`~repro.analysis.records.PacketRecords`
    plus the ``origin`` agent-id column the telescopes never saw.
    """

    ts: np.ndarray        # float64
    src_hi: np.ndarray    # uint64
    src_lo: np.ndarray    # uint64
    dst_hi: np.ndarray    # uint64
    dst_lo: np.ndarray    # uint64
    origin: np.ndarray    # int32 agent ids (< 0: unknown emitter)

    def __post_init__(self) -> None:
        n = len(self.ts)
        for name in ("src_hi", "src_lo", "dst_hi", "dst_lo", "origin"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} length mismatch")

    @classmethod
    def from_columns(cls, ts, src_hi, src_lo, dst_hi, dst_lo,
                     origin) -> "GroundTruthRecords":
        return cls(
            ts=np.asarray(ts, dtype=np.float64),
            src_hi=np.asarray(src_hi, dtype=np.uint64),
            src_lo=np.asarray(src_lo, dtype=np.uint64),
            dst_hi=np.asarray(dst_hi, dtype=np.uint64),
            dst_lo=np.asarray(dst_lo, dtype=np.uint64),
            origin=np.asarray(origin, dtype=np.int32),
        )

    @classmethod
    def empty(cls) -> "GroundTruthRecords":
        return cls.from_columns([], [], [], [], [], [])

    @classmethod
    def from_batches(cls, batches) -> "GroundTruthRecords":
        """Concatenate capture-order batches (each must carry ``origin``)."""
        parts = [b for b in batches if len(b)]
        if not parts:
            return cls.empty()
        for b in parts:
            if b.origin is None:
                raise ValueError("ground truth requires the origin column")
        return cls(
            ts=np.concatenate([b.ts for b in parts]),
            src_hi=np.concatenate([b.src_hi for b in parts]),
            src_lo=np.concatenate([b.src_lo for b in parts]),
            dst_hi=np.concatenate([b.dst_hi for b in parts]),
            dst_lo=np.concatenate([b.dst_lo for b in parts]),
            origin=np.concatenate([b.origin for b in parts]),
        )

    @classmethod
    def concat(cls, parts: list["GroundTruthRecords"]) -> "GroundTruthRecords":
        parts = [p for p in parts if len(p)]
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        return cls(
            ts=np.concatenate([p.ts for p in parts]),
            src_hi=np.concatenate([p.src_hi for p in parts]),
            src_lo=np.concatenate([p.src_lo for p in parts]),
            dst_hi=np.concatenate([p.dst_hi for p in parts]),
            dst_lo=np.concatenate([p.dst_lo for p in parts]),
            origin=np.concatenate([p.origin for p in parts]),
        )

    def __len__(self) -> int:
        return len(self.ts)

    def agents(self) -> np.ndarray:
        """Distinct (known) agent ids present in the table."""
        known = self.origin[self.origin >= 0]
        return np.unique(known)

    # -- persistence -----------------------------------------------------

    def save_npz(self, path) -> None:
        """Persist the columns as a compressed ``.npz`` archive."""
        np.savez_compressed(
            path,
            ts=self.ts, src_hi=self.src_hi, src_lo=self.src_lo,
            dst_hi=self.dst_hi, dst_lo=self.dst_lo, origin=self.origin,
        )

    @classmethod
    def load_npz(cls, path) -> "GroundTruthRecords":
        """Load a sidecar saved by :meth:`save_npz`.

        An archive without the ``origin`` column (e.g. a plain
        :class:`~repro.analysis.records.PacketRecords` archive) still
        loads: every row gets origin ``-1``, the unknown-emitter marker.
        """
        with np.load(path) as archive:
            origin = (archive["origin"] if "origin" in archive.files
                      else np.full(len(archive["ts"]), -1, dtype=np.int32))
            return cls.from_columns(
                ts=archive["ts"],
                src_hi=archive["src_hi"], src_lo=archive["src_lo"],
                dst_hi=archive["dst_hi"], dst_lo=archive["dst_lo"],
                origin=origin,
            )


@dataclass(frozen=True, slots=True)
class TruthEvent:
    """One actual scan session of one agent (the detector's target)."""

    agent: int
    start: float
    end: float
    packets: int
    unique_targets: int


def truth_events(
    truth: GroundTruthRecords,
    min_targets: int = DEFAULT_MIN_TARGETS,
    timeout: float = DEFAULT_TIMEOUT,
) -> list[TruthEvent]:
    """The scan events a perfect detector would report.

    Applies the paper's scan definition — sessions bounded by
    ``timeout``-second gaps, qualifying at ``min_targets`` distinct /128
    destinations — but grouped by the *emitting agent* rather than the
    observed source prefix.  Rows with unknown provenance (``origin`` < 0)
    are excluded.
    """
    known = truth.origin >= 0
    if not known.any():
        return []
    ts = truth.ts[known]
    origin = truth.origin[known]
    order = np.lexsort((ts, origin))
    o = origin[order]
    t = ts[order]
    starts, packets, start_ts, end_ts, uniq = sessionize(
        o[1:] != o[:-1], t,
        truth.dst_hi[known][order], truth.dst_lo[known][order],
        timeout,
    )
    qualifying = np.flatnonzero(uniq >= min_targets)
    events = [
        TruthEvent(
            agent=int(o[starts[i]]),
            start=float(start_ts[i]),
            end=float(end_ts[i]),
            packets=int(packets[i]),
            unique_targets=int(uniq[i]),
        )
        for i in qualifying
    ]
    events.sort(key=lambda e: (e.start, e.agent))
    return events


@dataclass(frozen=True)
class DetectionScore:
    """How well detected scan-events recover the true scanner sessions."""

    source_length: int
    n_events: int          # detected events
    n_truth_events: int    # actual agent scan sessions
    n_agents: int          # distinct agents with >= 1 truth event
    precision: float       # single-agent ("pure") events / detected events
    recall: float          # truth events recovered / truth events
    fragmentation: float   # mean detected events per recovered truth event
    merge_rate: float      # multi-agent events / detected events

    def render_row(self) -> str:
        return (
            f"  /{self.source_length:<4d} events {self.n_events:>6d}  "
            f"truth {self.n_truth_events:>6d}  "
            f"precision {self.precision:6.1%}  recall {self.recall:6.1%}  "
            f"frag {self.fragmentation:5.2f}  merge {self.merge_rate:6.1%}"
        )


def _event_contributors(
    events: list[ScanEvent],
    truth: GroundTruthRecords,
    source_length: int,
) -> list[np.ndarray]:
    """Per detected event: the distinct agent ids of its truth packets.

    The truth rows are sorted once by (masked source, timestamp); each
    event then resolves to a contiguous slice via binary search, so the
    total cost is one sort plus O(log n) per event.
    """
    mhi, mlo = mask_u64(truth.src_hi, truth.src_lo, source_length)
    order = np.lexsort((truth.ts, mlo, mhi))
    khi, klo = mhi[order], mlo[order]
    kts = truth.ts[order]
    korigin = truth.origin[order]

    contributors: list[np.ndarray] = []
    for event in events:
        ehi = np.uint64((event.source >> 64) & _U64)
        elo = np.uint64(event.source & _U64)
        lo = int(np.searchsorted(khi, ehi, side="left"))
        hi = int(np.searchsorted(khi, ehi, side="right"))
        lo += int(np.searchsorted(klo[lo:hi], elo, side="left"))
        hi = lo + int(np.searchsorted(klo[lo:hi], elo, side="right"))
        lo += int(np.searchsorted(kts[lo:hi], event.start, side="left"))
        hi = lo + int(np.searchsorted(kts[lo:hi], event.end, side="right"))
        rows = korigin[lo:hi]
        contributors.append(np.unique(rows[rows >= 0]))
    return contributors


def score_detection(
    events: list[ScanEvent],
    truth: GroundTruthRecords,
    min_targets: int = DEFAULT_MIN_TARGETS,
    timeout: float = DEFAULT_TIMEOUT,
    source_length: int | None = None,
) -> DetectionScore:
    """Grade detected scan-events against the simulated scanner population.

    ``events`` must all share one aggregation level (the usual output of
    :func:`~repro.analysis.scandetect.detect_scans`); truth events are
    built with the same ``min_targets``/``timeout`` the detector used, so
    the comparison is apples-to-apples.  ``source_length`` is derived from
    the events; pass it explicitly when the list may be empty (an empty
    detection is still a score — recall 0 against a non-empty truth).
    """
    lengths = {e.source_length for e in events}
    if len(lengths) > 1:
        raise ValueError(
            f"events mix aggregation levels {sorted(lengths)}; score one "
            f"level at a time"
        )
    if lengths:
        derived = lengths.pop()
        if source_length is not None and source_length != derived:
            raise ValueError(
                f"events are aggregated at /{derived}, not /{source_length}"
            )
        source_length = derived
    elif source_length is None:
        source_length = 128

    with get_tracer().span("analysis.score_detection",
                           source_length=source_length,
                           events=len(events)):
        truths = truth_events(truth, min_targets=min_targets,
                              timeout=timeout)
        contributors = _event_contributors(events, truth, source_length)

        pure = sum(1 for c in contributors if len(c) == 1)
        merged = sum(1 for c in contributors if len(c) > 1)

        # agent id -> [(start, end), ...] of detected events it contributed to
        by_agent: dict[int, list[tuple[float, float]]] = {}
        for event, agents in zip(events, contributors):
            for agent in agents:
                by_agent.setdefault(int(agent), []).append(
                    (event.start, event.end)
                )

        recovered = 0
        fragments = 0
        for te in truths:
            n_overlapping = sum(
                1 for (s, e) in by_agent.get(te.agent, ())
                if s <= te.end and e >= te.start
            )
            if n_overlapping:
                recovered += 1
                fragments += n_overlapping

        return DetectionScore(
            source_length=source_length,
            n_events=len(events),
            n_truth_events=len(truths),
            n_agents=len({te.agent for te in truths}),
            precision=pure / len(events) if events else 1.0,
            recall=recovered / len(truths) if truths else 1.0,
            fragmentation=fragments / recovered if recovered else 0.0,
            merge_rate=merged / len(events) if events else 0.0,
        )


def score_all_levels(
    records: PacketRecords,
    truth: GroundTruthRecords,
    levels: tuple[int, ...] = (128, 64, 48),
    min_targets: int = DEFAULT_MIN_TARGETS,
    timeout: float = DEFAULT_TIMEOUT,
) -> dict[int, DetectionScore]:
    """Run detection and scoring at each aggregation level."""
    scores: dict[int, DetectionScore] = {}
    for length in levels:
        events = detect_scans(records, source_length=length,
                              min_targets=min_targets, timeout=timeout)
        scores[length] = score_detection(
            events, truth, min_targets=min_targets, timeout=timeout,
            source_length=length,
        )
    return scores
