"""Telescope source-overlap analysis (§5.1).

Jaccard similarity of scan-source sets between telescopes, at the paper's
three aggregation levels (/32, /64, /128), plus the traffic-share analysis:
what fraction of each telescope's traffic the *overlapping* sources account
for (small at /128, dominant at /64).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.records import PacketRecords
from repro.net.addr import (
    mask_u64,
    member_mask_u64,
    pack_key_u64,
    split_u64,
    unique_pairs_u64,
)

#: The aggregation levels used in §5.1.
DEFAULT_LEVELS = (32, 64, 128)


def jaccard_similarity(a: set, b: set) -> float:
    """Plain Jaccard similarity of two sets (0 when both are empty)."""
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


@dataclass(frozen=True, slots=True)
class OverlapReport:
    """Pairwise overlap between two telescopes at one aggregation level."""

    name_a: str
    name_b: str
    prefix_length: int
    jaccard: float
    #: Fraction of telescope A's packets sent by sources seen at both.
    shared_traffic_share_a: float
    #: Fraction of telescope B's packets sent by sources seen at both.
    shared_traffic_share_b: float
    #: Fraction of A's unique /128 destinations probed by shared sources.
    shared_dest_share_a: float


def _shared_src_mask(records: PacketRecords, shared: set[int],
                     prefix_length: int) -> np.ndarray:
    """Boolean row mask: source (truncated to ``prefix_length``) in ``shared``.

    Uses the packed single-column uint64 key + ``np.isin`` when the
    aggregation length fits in the hi half (<= 64), and the two-column
    128-bit membership helper otherwise — no per-packet Python lookups.
    """
    shared_hi, shared_lo = split_u64(shared)
    packed = pack_key_u64(records.src_hi, records.src_lo, prefix_length)
    if packed is not None:
        # Truncated shared values live entirely in the hi half.
        return np.isin(packed, shared_hi)
    mhi, mlo = mask_u64(records.src_hi, records.src_lo, prefix_length)
    return member_mask_u64(mhi, mlo, shared_hi, shared_lo)


def _traffic_share(records: PacketRecords, shared: set[int],
                   prefix_length: int) -> float:
    if len(records) == 0 or not shared:
        return 0.0
    member = _shared_src_mask(records, shared, prefix_length)
    return int(member.sum()) / len(records)


def _dest_share(records: PacketRecords, shared: set[int],
                prefix_length: int) -> float:
    if len(records) == 0 or not shared:
        return 0.0
    member = _shared_src_mask(records, shared, prefix_length)
    n_all = len(unique_pairs_u64(records.dst_hi, records.dst_lo)[0])
    n_shared = len(unique_pairs_u64(records.dst_hi[member],
                                    records.dst_lo[member])[0])
    return n_shared / n_all if n_all else 0.0


def _traffic_share_reference(records: PacketRecords, shared: set[int],
                             prefix_length: int) -> float:
    """Per-packet reference for :func:`_traffic_share` (equivalence tests)."""
    if len(records) == 0 or not shared:
        return 0.0
    shift = 128 - prefix_length
    count = 0
    for src in records.src_addresses():
        truncated = (src >> shift) << shift if shift else src
        if truncated in shared:
            count += 1
    return count / len(records)


def _dest_share_reference(records: PacketRecords, shared: set[int],
                          prefix_length: int) -> float:
    """Per-packet reference for :func:`_dest_share` (equivalence tests)."""
    if len(records) == 0 or not shared:
        return 0.0
    shift = 128 - prefix_length
    shared_dests: set[int] = set()
    all_dests: set[int] = set()
    src_iter = records.src_addresses()
    for dst in records.dst_addresses():
        src = next(src_iter)
        truncated = (src >> shift) << shift if shift else src
        all_dests.add(dst)
        if truncated in shared:
            shared_dests.add(dst)
    return len(shared_dests) / len(all_dests) if all_dests else 0.0


def overlap_report(
    name_a: str,
    records_a: PacketRecords,
    name_b: str,
    records_b: PacketRecords,
    prefix_length: int = 64,
) -> OverlapReport:
    """Compute the §5.1 overlap metrics for one telescope pair."""
    from repro.obs import get_tracer

    with get_tracer().span("analysis.overlap_report",
                           pair=f"{name_a}/{name_b}",
                           prefix_length=prefix_length):
        sources_a = records_a.source_set(prefix_length)
        sources_b = records_b.source_set(prefix_length)
        shared = sources_a & sources_b
        return OverlapReport(
            name_a=name_a,
            name_b=name_b,
            prefix_length=prefix_length,
            jaccard=jaccard_similarity(sources_a, sources_b),
            shared_traffic_share_a=_traffic_share(records_a, shared,
                                                  prefix_length),
            shared_traffic_share_b=_traffic_share(records_b, shared,
                                                  prefix_length),
            shared_dest_share_a=_dest_share(records_a, shared, prefix_length),
        )


def jaccard_matrix(
    telescopes: dict[str, PacketRecords],
    levels: tuple[int, ...] = DEFAULT_LEVELS,
) -> dict[tuple[str, str, int], float]:
    """All pairwise Jaccard similarities at every aggregation level."""
    names = sorted(telescopes)
    out: dict[tuple[str, str, int], float] = {}
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            for level in levels:
                out[(a, b, level)] = jaccard_similarity(
                    telescopes[a].source_set(level),
                    telescopes[b].source_set(level),
                )
    return out
