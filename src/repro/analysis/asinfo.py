"""Metadata joins: source IP -> ASN, AS type, country; source breakdowns.

Implements the paper's §4.4/§5.2 processing: map each source to its origin
AS (RouteViews prefix2as), classify the AS (ASdb, with the paper's manual
overrides applied upstream), geolocate (IPinfo), and produce the Table 3/8
top-ASN rows, the Fig. 5 per-category protocol/source/destination
breakdown, and the Fig. 6 per-country source counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.records import PacketRecords
from repro.datasets.asdb import AsCategory, AsDatabase
from repro.datasets.geodb import GeoDatabase
from repro.datasets.prefix2as import Prefix2As
from repro.net.packet import ICMPV6, TCP, UDP


@dataclass(frozen=True, slots=True)
class AsnRow:
    """One Table 3/8 row."""

    asn: int
    name: str
    packets: int
    share: float
    unique_128: int
    unique_64: int
    unique_48: int


@dataclass
class CategoryStats:
    """Fig. 5 statistics for one AS category."""

    category: AsCategory
    packets: int = 0
    packets_icmp: int = 0
    packets_tcp: int = 0
    packets_udp: int = 0
    unique_sources_128: int = 0
    unique_destinations_128: int = 0

    @property
    def dominant_protocol(self) -> str:
        best = max(
            (self.packets_icmp, "icmpv6"),
            (self.packets_tcp, "tcp"),
            (self.packets_udp, "udp"),
        )
        return best[1]


@dataclass
class SourceBreakdown:
    """The full §5.2 source characterization."""

    total_packets: int
    total_sources_128: int
    total_asns: int
    top_asns: list[AsnRow]
    by_category: dict[AsCategory, CategoryStats]
    by_country: dict[str, int]
    protocol_shares: dict[str, float]


class MetadataJoiner:
    """Joins packet records against the metadata datasets."""

    def __init__(self, prefix2as: Prefix2As, asdb: AsDatabase,
                 geodb: GeoDatabase | None = None):
        self.prefix2as = prefix2as
        self.asdb = asdb
        self.geodb = geodb
        self._asn_cache: dict[int, int] = {}
        self._country_cache: dict[int, str | None] = {}

    def asn_of(self, address: int, at: float | None = None) -> int:
        """Origin ASN for a source address (0 when unmapped)."""
        cached = self._asn_cache.get(address)
        if cached is None:
            cached = self.prefix2as.lookup(address, at=at) or 0
            self._asn_cache[address] = cached
        return cached

    def country_of(self, address: int, at: float | None = None) -> str | None:
        if self.geodb is None:
            return None
        if address not in self._country_cache:
            self._country_cache[address] = self.geodb.lookup(address, at=at)
        return self._country_cache[address]

    def row_asns(self, records: PacketRecords) -> np.ndarray:
        """Per-row source ASN array."""
        out = np.zeros(len(records), dtype=np.int64)
        for i, src in enumerate(records.src_addresses()):
            out[i] = self.asn_of(src)
        return out

    # -- Table 3 / Table 8 -------------------------------------------------

    def top_asns(self, records: PacketRecords, n: int = 20) -> list[AsnRow]:
        """The top-``n`` source ASNs by packet count."""
        if len(records) == 0:
            return []
        asns = self.row_asns(records)
        total = len(records)
        rows: list[AsnRow] = []
        unique_asns, counts = np.unique(asns, return_counts=True)
        order = np.argsort(counts)[::-1]
        for idx in order[:n]:
            asn = int(unique_asns[idx])
            sub = records.select(asns == asn)
            rows.append(AsnRow(
                asn=asn,
                name=self.asdb.name(asn),
                packets=int(counts[idx]),
                share=float(counts[idx]) / total,
                unique_128=sub.unique_sources(128),
                unique_64=sub.unique_sources(64),
                unique_48=sub.unique_sources(48),
            ))
        return rows

    # -- Fig. 5 ---------------------------------------------------------------

    def category_breakdown(
        self, records: PacketRecords
    ) -> dict[AsCategory, CategoryStats]:
        """Per-AS-category protocol/source/destination statistics."""
        asns = self.row_asns(records)
        categories = {
            asn: self.asdb.classify(int(asn)) for asn in np.unique(asns)
        }
        out: dict[AsCategory, CategoryStats] = {}
        for asn, category in categories.items():
            stats = out.setdefault(category, CategoryStats(category=category))
            sub = records.select(asns == asn)
            stats.packets += len(sub)
            stats.packets_icmp += int(np.sum(sub.proto == np.uint8(ICMPV6)))
            stats.packets_tcp += int(np.sum(sub.proto == np.uint8(TCP)))
            stats.packets_udp += int(np.sum(sub.proto == np.uint8(UDP)))
        # Unique counts need set semantics across the category's ASNs.
        for category, stats in out.items():
            cat_asns = [a for a, c in categories.items() if c is category]
            mask = np.isin(asns, cat_asns)
            sub = records.select(mask)
            stats.unique_sources_128 = sub.unique_sources(128)
            stats.unique_destinations_128 = sub.unique_destinations(128)
        return out

    # -- Fig. 6 ---------------------------------------------------------------

    def country_breakdown(self, records: PacketRecords) -> dict[str, int]:
        """Unique /128 sources per country."""
        countries: dict[str, set[int]] = {}
        for src in records.source_set(128):
            country = self.country_of(src)
            if country is not None:
                countries.setdefault(country, set()).add(src)
        return {c: len(s) for c, s in countries.items()}

    # -- combined -------------------------------------------------------------

    def breakdown(self, records: PacketRecords, top_n: int = 20) -> SourceBreakdown:
        """The full §5.2 characterization in one pass."""
        total = len(records)
        protocol_shares = {}
        if total:
            protocol_shares = {
                "icmpv6": float(np.sum(records.proto == np.uint8(ICMPV6))) / total,
                "tcp": float(np.sum(records.proto == np.uint8(TCP))) / total,
                "udp": float(np.sum(records.proto == np.uint8(UDP))) / total,
            }
        asns = self.row_asns(records)
        return SourceBreakdown(
            total_packets=total,
            total_sources_128=records.unique_sources(128),
            total_asns=len(np.unique(asns[asns > 0])),
            top_asns=self.top_asns(records, n=top_n),
            by_category=self.category_breakdown(records),
            by_country=self.country_breakdown(records),
            protocol_shares=protocol_shares,
        )
