"""The scenario service: a multi-tenant async API over the scenario cache.

The simulator as a queryable measurement platform (ROADMAP open item 1):
clients POST a :class:`~repro.sim.scenario.ScenarioConfig`, identical
configs dedupe onto one in-flight run keyed by the config hash, warm
configs are served straight from the content-addressed
:class:`~repro.exec.cache.ScenarioCache`, cold runs are scheduled on a
bounded process pool, progress streams from the run journal, and
``/metrics`` + ``/traces`` expose the :mod:`repro.obs` registries as the
ops surface.

* :mod:`repro.service.core` — :class:`ScenarioService`, the transport-
  agnostic, thread-safe run registry (dedupe, admission, warm tier,
  cache lifecycle, graceful shutdown);
* :mod:`repro.service.http` — :class:`ScenarioServer`, the stdlib
  asyncio HTTP/1.1 front end (``python -m repro serve``);
* :mod:`repro.service.client` — :class:`ServiceClient`, the blocking
  stdlib client (tests, load generator, CI smoke).

Headline guarantee: a result fetched through the service is byte-
identical to a direct ``run_scenario(config)`` for the same config —
the service only ever serves verified cache entries produced by
``run_scenario`` itself.
"""

from repro.service.client import RunFailed, ServiceClient, ServiceClientError
from repro.service.core import (
    AdmissionFull,
    ResultUnavailable,
    RunState,
    ScenarioService,
    ServiceClosed,
    ServiceError,
    UnknownRun,
    coerce_config,
)
from repro.service.http import ScenarioServer

__all__ = [
    "AdmissionFull",
    "ResultUnavailable",
    "RunFailed",
    "RunState",
    "ScenarioServer",
    "ScenarioService",
    "ServiceClient",
    "ServiceClientError",
    "ServiceClosed",
    "ServiceError",
    "UnknownRun",
    "coerce_config",
]
