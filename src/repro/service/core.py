"""The scenario service core: dedupe, admission, warm tier, lifecycle.

:class:`ScenarioService` turns the content-addressed
:class:`~repro.exec.cache.ScenarioCache` into the backing store of a
long-lived multi-tenant run registry.  It is transport-agnostic and
thread-safe — the asyncio HTTP layer (:mod:`repro.service.http`) and the
concurrency tests drive the same object — and upholds one guarantee:
**a result served by the service is byte-identical to a direct
``run_scenario(config)`` for the same config**, because the service never
computes results itself; it only schedules ``run_scenario`` (which stores
into the cache) and serves the verified cache entry's bytes.

Request lifecycle
-----------------
``submit(config)`` resolves, under one lock, to exactly one of:

* **deduped** — a run for this config hash is already registered (queued,
  running, or done): the caller shares it.  Identical configs collapse
  onto one in-flight run, however many clients post them concurrently.
* **warm** — the cache holds a fully verified entry for this config: a
  completed run record is registered without simulating anything.
* **created** — a cold config: the run is scheduled on a bounded process
  pool (the :func:`repro.exec.parallel.process_context` workers every
  in-repo fan-out uses).  When ``queue_limit`` runs are already pending,
  admission fails with :class:`AdmissionFull` instead of queueing
  unboundedly.

The run id is the cache entry key (``<repro version>-<config hash>``), so
ids are stable across service restarts and shared between tenants.

Workers journal to ``journals/<run_id>.jsonl`` (line-buffered), which the
progress stream tails; each worker ships its metrics snapshot back and the
service folds it into its own registry (the ``/metrics`` ops surface),
so ``scenario.cache.stores`` counts cache writes across every worker.

Cache lifecycle: after each completed run (and on demand) the service
sweeps the cache against its byte budget, protecting pinned entries and
every registered run's entry — an in-flight or just-completed run can
never lose its artifacts to the sweep that its own store triggered.

Shutdown: ``close(drain=True)`` stops admitting, then waits for in-flight
runs to finish.  ``close(drain=False)`` abandons queued work; runs
launched with a ``checkpoint_dir`` have their cadence checkpoints on
disk, so a later service picks them up with ``resume`` semantics instead
of recomputing from day zero.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path

from repro.exec.cache import ScenarioCache
from repro.exec.parallel import process_context
from repro.obs import (
    Journal,
    MetricsRegistry,
    Tracer,
    config_hash,
    use_journal,
    use_registry,
)
from repro.sim.scenario import ScenarioConfig


class ServiceError(RuntimeError):
    """Base class for service-level failures."""


class AdmissionFull(ServiceError):
    """The bounded admission queue is at capacity; retry later."""


class ServiceClosed(ServiceError):
    """The service is draining and admits no new runs."""


class UnknownRun(KeyError):
    """No run with that id is registered."""


class ResultUnavailable(ServiceError):
    """The run is not done, failed, or its cache entry was evicted."""


def coerce_config(payload) -> ScenarioConfig:
    """A :class:`ScenarioConfig` from itself or a plain field dict.

    Unknown fields raise ``TypeError`` — the HTTP layer maps that to a
    400 so a typoed knob never silently runs the default scenario.
    """
    if isinstance(payload, ScenarioConfig):
        return payload
    if is_dataclass(payload):
        payload = asdict(payload)
    if not isinstance(payload, dict):
        raise TypeError(f"config must be an object, got {type(payload).__name__}")
    return ScenarioConfig(**payload)


@dataclass
class RunState:
    """One registered run, shared by every client that posted its config."""

    run_id: str
    config: dict
    config_hash: str
    status: str  # "pending" | "done" | "failed"
    warm: bool = False
    error: str | None = None
    journal_path: str | None = None
    packets: int | None = None
    done_event: threading.Event = field(default_factory=threading.Event)
    future: object = None

    def public(self, running: bool = False) -> dict:
        """The JSON-facing status view."""
        state = self.status
        if state == "pending" and running:
            state = "running"
        return {
            "run_id": self.run_id,
            "state": state,
            "warm": self.warm,
            "config_hash": self.config_hash,
            "error": self.error,
            "packets": self.packets,
        }


def _execute_run(config_fields: dict, cache_dir: str, journal_path: str,
                 checkpoint_dir, checkpoint_every: int) -> dict:
    """Worker entry point: one journaled, cached ``run_scenario``.

    Module-level and picklable.  Installs a fresh registry and a
    line-buffered journal (the parent tails the file while this runs),
    then runs the scenario through the shared cache so the result lands
    as a verified entry.  ``resume=True`` whenever checkpointing is on:
    a worker re-dispatched after a crash fast-forwards from the last
    cadence checkpoint and replays the journal history, keeping the
    progress stream byte-compatible with an uninterrupted run.
    """
    from repro.sim.runner import run_scenario

    config = ScenarioConfig(**config_fields)
    registry = MetricsRegistry()
    journal = Journal(journal_path)
    try:
        with use_registry(registry), use_journal(journal):
            result = run_scenario(
                config, cache_dir=cache_dir,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                resume=checkpoint_dir is not None,
            )
        return {
            "telemetry": registry.snapshot(),
            "packets": len(result.nta) + len(result.ntb) + len(result.ntc),
        }
    finally:
        journal.close()


class ScenarioService:
    """Thread-safe multi-tenant run registry over one scenario cache."""

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        *,
        jobs: int = 1,
        queue_limit: int = 32,
        max_cache_bytes: int | None = None,
        journals_dir: str | os.PathLike | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        checkpoint_every: int = 10,
        observatory_dir: str | os.PathLike | None = None,
    ):
        self.cache = ScenarioCache(cache_dir, max_bytes=max_cache_bytes)
        self.jobs = max(1, int(jobs))
        self.queue_limit = max(1, int(queue_limit))
        self.journals_dir = Path(
            journals_dir if journals_dir is not None
            else Path(cache_dir) / "journals"
        )
        self.checkpoint_dir = (
            str(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        #: Observatory directory exposed at ``GET /observatory`` (live
        #: SSE tail) and ``GET /observatory/<day>``; None leaves the
        #: endpoints unconfigured (404).
        self.observatory_dir = (
            Path(observatory_dir) if observatory_dir is not None else None
        )
        #: The service's own ops registry/tracer — the ``/metrics`` and
        #: ``/traces`` surfaces.  Worker snapshots are merged in.
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self._lock = threading.Lock()
        self._runs: dict[str, RunState] = {}
        self._closing = False
        self._pool = ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=process_context(),
        )

    # -- admission ---------------------------------------------------------

    def submit(self, payload) -> tuple[RunState, str]:
        """Register (or join) the run for one config.

        Returns ``(run, outcome)`` with outcome one of ``"created"``
        (cold, scheduled now), ``"deduped"`` (joined an existing run), or
        ``"warm"`` (served straight from the verified cache).
        """
        config = coerce_config(payload)
        run_id = self.cache.key(config)
        self.registry.counter("service.requests").inc()
        with self.tracer.span("service.submit", run_id=run_id) as span:
            with self._lock:
                if self._closing:
                    raise ServiceClosed("service is shutting down")
                run = self._runs.get(run_id)
                if run is not None and run.status != "failed":
                    self.registry.counter("service.deduped").inc()
                    span.set(outcome="deduped")
                    return run, "deduped"
                fields = asdict(config)
                chash = config_hash(config)
                if self.cache.probe(config):
                    run = RunState(
                        run_id=run_id, config=fields, config_hash=chash,
                        status="done", warm=True,
                        journal_path=self._journal_path(run_id),
                    )
                    run.done_event.set()
                    self._runs[run_id] = run
                    self.registry.counter("service.warm_hits").inc()
                    span.set(outcome="warm")
                    return run, "warm"
                pending = sum(
                    1 for r in self._runs.values() if r.status == "pending"
                )
                if pending >= self.queue_limit:
                    self.registry.counter("service.rejected").inc()
                    span.set(outcome="rejected")
                    raise AdmissionFull(
                        f"{pending} runs pending (queue limit "
                        f"{self.queue_limit}); retry later"
                    )
                self.journals_dir.mkdir(parents=True, exist_ok=True)
                journal_path = self._journal_path(run_id)
                run = RunState(
                    run_id=run_id, config=fields, config_hash=chash,
                    status="pending", journal_path=journal_path,
                )
                self._runs[run_id] = run
                run.future = self._pool.submit(
                    _execute_run, fields, str(self.cache.root), journal_path,
                    self.checkpoint_dir, self.checkpoint_every,
                )
                run.future.add_done_callback(
                    lambda future, rid=run_id: self._on_done(rid, future)
                )
                self.registry.counter("service.cold_runs").inc()
                self.registry.gauge("service.pending").set(pending + 1)
                span.set(outcome="created")
                return run, "created"

    def _journal_path(self, run_id: str) -> str:
        return str(self.journals_dir / f"{run_id}.jsonl")

    def _on_done(self, run_id: str, future) -> None:
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                return
            error = future.exception()
            if error is not None:
                run.status = "failed"
                run.error = f"{type(error).__name__}: {error}"
                self.registry.counter("service.failed").inc()
            else:
                outcome = future.result()
                run.status = "done"
                run.packets = outcome.get("packets")
                telemetry = outcome.get("telemetry")
                if telemetry:
                    self.registry.merge(telemetry)
                self.registry.counter("service.completed").inc()
            self.registry.gauge("service.pending").set(sum(
                1 for r in self._runs.values() if r.status == "pending"
            ))
            run.done_event.set()
        # Sweep outside the registry updates but with the same protection
        # set a concurrent submit would extend: every registered run.
        self.sweep_cache()

    # -- queries -----------------------------------------------------------

    def get(self, run_id: str) -> RunState:
        with self._lock:
            run = self._runs.get(run_id)
        if run is None:
            raise UnknownRun(run_id)
        return run

    def status(self, run_id: str) -> dict:
        run = self.get(run_id)
        running = False
        if run.status == "pending" and run.journal_path:
            try:
                running = os.path.getsize(run.journal_path) > 0
            except OSError:
                running = False
        return run.public(running=running)

    def wait(self, run_id: str, timeout: float | None = None) -> RunState:
        """Block until the run completes (or ``timeout`` elapses)."""
        run = self.get(run_id)
        run.done_event.wait(timeout)
        return run

    def runs(self) -> list[dict]:
        with self._lock:
            states = list(self._runs.values())
        return [run.public() for run in states]

    # -- results -----------------------------------------------------------

    def result_entry(self, run_id: str) -> Path:
        """The verified cache entry directory backing a completed run."""
        run = self.get(run_id)
        if run.status == "failed":
            raise ResultUnavailable(f"run failed: {run.error}")
        if run.status != "done":
            raise ResultUnavailable("run still in progress")
        entry = self.cache.root / run_id
        if not (entry / "manifest.json").is_file():
            raise ResultUnavailable("cache entry evicted; resubmit the config")
        return entry

    def result_manifest(self, run_id: str) -> dict:
        import json

        entry = self.result_entry(run_id)
        return json.loads((entry / "manifest.json").read_text())

    def result_file(self, run_id: str, name: str) -> Path:
        """One artifact file of a completed run, by manifest name."""
        entry = self.result_entry(run_id)
        manifest = self.result_manifest(run_id)
        if name != "manifest.json" and name not in manifest.get("files", {}):
            raise UnknownRun(f"{run_id} has no artifact {name!r}")
        return entry / name

    # -- progress ----------------------------------------------------------

    def progress_records(self, run_id: str, *, follow: bool = True,
                         poll_interval: float = 0.05,
                         timeout: float | None = None):
        """Yield the run's journal records (tailing while it runs).

        The stream ends when the run reaches a terminal state and the
        file is fully drained (``cache_store`` trails ``run_end``, so the
        stream must not stop at ``run_end`` itself), or at ``timeout``.
        A torn final line (worker killed mid-write) is never yielded; a
        worker re-dispatched with checkpoint resume rewrites the journal
        with its full history and the tail restarts from the top,
        byte-compatibly.
        """
        from repro.obs import tail_journal

        run = self.get(run_id)
        if run.journal_path is None:
            return iter(())
        return tail_journal(
            run.journal_path, follow=follow, poll_interval=poll_interval,
            timeout=timeout, stop=run.done_event.is_set, end_types=(),
        )

    # -- observatory -------------------------------------------------------

    def _require_observatory(self) -> Path:
        if self.observatory_dir is None:
            raise UnknownRun(
                "no observatory directory configured (serve --observatory)"
            )
        return self.observatory_dir

    def observatory_stream_path(self) -> Path:
        """The live ``observations.jsonl`` the SSE endpoint tails."""
        from repro.observatory.observer import OBSERVATIONS_NAME

        return self._require_observatory() / OBSERVATIONS_NAME

    def observatory_day(self, day: int) -> dict:
        """One validated observer day record from the data directory."""
        from repro.observatory import day_file_path, load_observer_day

        path = day_file_path(self._require_observatory(), day)
        if not path.is_file():
            raise UnknownRun(f"no observer record for day {day}")
        return load_observer_day(path)

    def observatory_index(self) -> list[dict]:
        """The append-only per-day index (``index.jsonl``) records."""
        from repro.observatory import read_index

        return read_index(self._require_observatory())

    # -- cache lifecycle ---------------------------------------------------

    def pin(self, run_id: str) -> None:
        """Pin a run's cache entry into the warm tier (evict-proof)."""
        self.get(run_id)  # 404 before touching the pin file
        self.cache.pin(run_id)

    def unpin(self, run_id: str) -> None:
        self.get(run_id)
        self.cache.unpin(run_id)

    def sweep_cache(self) -> list[str]:
        """Evict LRU entries over budget; never a registered run's entry."""
        with self._lock:
            protect = set(self._runs)
        return self.cache.evict(protect=protect)

    # -- ops surface -------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        from repro.obs import sample_peak_rss

        self.registry.gauge("scenario.cache.bytes").set(
            self.cache.total_bytes())
        sample_peak_rss(self.registry)
        return self.registry.snapshot()

    def trace_spans(self) -> list[dict]:
        return self.tracer.export_spans()

    # -- shutdown ----------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop admitting and shut the worker pool down.

        ``drain=True`` completes every in-flight run first (their results
        land in the cache and every waiter wakes).  ``drain=False``
        cancels queued runs and abandons running ones — with a
        ``checkpoint_dir`` configured their cadence checkpoints survive
        for a resumed service to pick up.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
        self._pool.shutdown(wait=drain, cancel_futures=not drain)

    def __enter__(self) -> "ScenarioService":
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=True)
