"""Blocking stdlib client for the scenario service.

A thin ``http.client`` wrapper speaking the service's one-request-per-
connection dialect.  Used by the tests, the load-generator benchmark, and
the CI smoke job; it is also the reference for how an analyst's tooling
would consume the API.

:meth:`ServiceClient.fetch_result` closes the byte-equality loop: it
downloads every artifact of a completed run into a local directory laid
out exactly like a cache entry, then loads it through
:class:`~repro.exec.cache.ScenarioCache` — re-running the same manifest
and checksum verification the server ran, so a corrupted transfer
surfaces as a miss instead of silently wrong arrays.
"""

from __future__ import annotations

import http.client
import json
import time
from pathlib import Path


class ServiceClientError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class RunFailed(ServiceClientError):
    """The awaited run reached the ``failed`` state."""

    def __init__(self, run_id: str, error: str | None):
        RuntimeError.__init__(self, f"run {run_id} failed: {error}")
        self.status = 500


class ServiceClient:
    """One service endpoint; safe to use from many threads (each request
    opens its own connection)."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = (json.dumps(body).encode() if body is not None else None)
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
        finally:
            connection.close()
        if response.status >= 400:
            try:
                message = json.loads(data).get("error", data.decode())
            except (ValueError, UnicodeDecodeError):
                message = data.decode(errors="replace")
            raise ServiceClientError(response.status, message)
        return response.status, data

    def _json(self, method: str, path: str, body: dict | None = None):
        status, data = self._request(method, path, body)
        return status, json.loads(data)

    # -- API ---------------------------------------------------------------

    def healthz(self) -> bool:
        return self._json("GET", "/healthz")[1].get("ok", False)

    def submit(self, config) -> dict:
        """POST a config (ScenarioConfig or field dict); returns the run
        view with its ``outcome`` (created/deduped/warm)."""
        from dataclasses import asdict, is_dataclass

        payload = asdict(config) if is_dataclass(config) else dict(config)
        return self._json("POST", "/runs", payload)[1]

    def status(self, run_id: str) -> dict:
        return self._json("GET", f"/runs/{run_id}")[1]

    def wait(self, run_id: str, timeout: float = 120.0,
             poll_interval: float = 0.05) -> dict:
        """Poll until the run is done; raises :class:`RunFailed` on
        failure and :class:`TimeoutError` on expiry."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.status(run_id)
            if view["state"] == "done":
                return view
            if view["state"] == "failed":
                raise RunFailed(run_id, view.get("error"))
            if time.monotonic() >= deadline:
                raise TimeoutError(f"run {run_id} still {view['state']} "
                                   f"after {timeout}s")
            time.sleep(poll_interval)

    def stream_progress(self, run_id: str):
        """Yield journal records from the SSE progress stream as dicts."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", f"/runs/{run_id}/progress")
            response = connection.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data).get("error", "")
                except ValueError:
                    message = data.decode(errors="replace")
                raise ServiceClientError(response.status, message)
            for raw in response:
                line = raw.strip()
                if line.startswith(b"data: "):
                    yield json.loads(line[len(b"data: "):].decode())
        finally:
            connection.close()

    # -- observatory -------------------------------------------------------

    def observatory_day(self, day: int) -> dict:
        """One validated observer day record (404 → ServiceClientError)."""
        return self._json("GET", f"/observatory/{day}")[1]

    def observatory_index(self) -> list:
        """The per-day sha256 index records."""
        return self._json("GET", "/observatory/index")[1]

    def stream_observatory(self):
        """Yield observer records from the SSE observatory stream.

        The server closes the stream after the ``observatory_end``
        marker, so iteration ends there; concatenating the yielded
        ``observer`` records reconstructs the on-disk day files.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", "/observatory")
            response = connection.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data).get("error", "")
                except ValueError:
                    message = data.decode(errors="replace")
                raise ServiceClientError(response.status, message)
            for raw in response:
                line = raw.strip()
                if line.startswith(b"data: "):
                    yield json.loads(line[len(b"data: "):].decode())
        finally:
            connection.close()

    def metrics(self) -> dict:
        return self._json("GET", "/metrics")[1]

    def traces(self) -> list:
        return self._json("GET", "/traces")[1]

    def pin(self, run_id: str) -> None:
        self._json("POST", f"/runs/{run_id}/pin")

    def unpin(self, run_id: str) -> None:
        self._json("DELETE", f"/runs/{run_id}/pin")

    # -- results -----------------------------------------------------------

    def result_manifest(self, run_id: str) -> dict:
        return self._json("GET", f"/runs/{run_id}/result")[1]

    def download_result(self, run_id: str, dest_root) -> Path:
        """Download every artifact into ``dest_root/<run_id>/`` (a local
        replica of the server's cache entry); returns the entry path."""
        view = self.result_manifest(run_id)
        entry = Path(dest_root) / run_id
        entry.mkdir(parents=True, exist_ok=True)
        for name in [*view["files"], "manifest.json"]:
            _status, payload = self._request(
                "GET", f"/runs/{run_id}/result/{name}")
            (entry / name).write_bytes(payload)
        return entry

    def fetch_result(self, run_id: str, config, dest_root):
        """The run's :class:`~repro.sim.runner.ScenarioResult`, verified.

        Downloads the entry, then loads it through ``ScenarioCache`` so
        the client re-checks every artifact's SHA-256 against the
        manifest before deserializing — end-to-end integrity, and the
        same arrays a direct ``run_scenario(config)`` returns.
        """
        from repro.exec.cache import ScenarioCache

        self.download_result(run_id, dest_root)
        local = ScenarioCache(dest_root)
        if local.key(config) != run_id:
            raise ServiceClientError(
                409, f"run id {run_id} does not match the local key for "
                     f"this config ({local.key(config)}): version skew?")
        result = local.load(config)
        if result is None:
            raise ServiceClientError(
                502, "downloaded entry failed verification")
        return result
