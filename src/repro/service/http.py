"""Stdlib-only asyncio HTTP front end for the scenario service.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, no dependencies — exposing :class:`~repro.service.core.
ScenarioService` to many tenants:

========================  =================================================
``GET  /healthz``         liveness probe
``POST /runs``            body: ``ScenarioConfig`` JSON → ``202`` (created)
                          or ``200`` (deduped onto an in-flight run / warm
                          from cache); ``400`` bad config, ``503`` queue
                          full or draining
``GET  /runs``            all registered runs
``GET  /runs/{id}``       one run's status
``GET  /runs/{id}/progress``  Server-Sent Events stream of the run's
                          journal records (one ``data:`` event per record,
                          ends at ``run_end``)
``GET  /runs/{id}/result``    the verified entry manifest + artifact list
``GET  /runs/{id}/result/{file}``  raw artifact bytes (npz/pkl/manifest) —
                          exactly the bytes the cache verified, which is
                          what makes service results bit-identical to a
                          direct ``run_scenario``
``POST   /runs/{id}/pin``     pin the entry into the warm tier
``DELETE /runs/{id}/pin``     unpin it
``GET  /metrics``         the service registry snapshot (ops surface)
``GET  /traces``          exported trace spans
``GET  /observatory``     Server-Sent Events tail of the observatory's
                          ``observations.jsonl`` (one ``data:`` event per
                          observer record, ends at ``observatory_end``);
                          404 unless ``serve --observatory DIR`` is set
``GET  /observatory/index``  the per-day sha256 index records
``GET  /observatory/{day}``  one validated observer day record
========================  =================================================

Responses carry ``Connection: close`` (one request per connection): every
client in this repo — tests, the load generator, curl — speaks that
dialect, and it keeps the parser honest and small.  Blocking service
calls (cache probes hash files; result lookups stat entries) run in the
default thread executor so the event loop never stalls on disk.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path

from repro.service.core import (
    AdmissionFull,
    ResultUnavailable,
    ScenarioService,
    ServiceClosed,
    UnknownRun,
)

#: Largest accepted request body (a config JSON is < 2 KB; this bound is
#: purely defensive).
MAX_BODY_BYTES = 1 << 20

#: How often the SSE stream polls the run journal for new records.
PROGRESS_POLL_S = 0.05


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {200: "OK", 202: "Accepted", 204: "No Content",
            400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
            410: "Gone", 413: "Payload Too Large", 500: "Internal Server Error",
            503: "Service Unavailable"}


def _response_bytes(status: int, body: bytes, content_type: str) -> bytes:
    reason = _REASONS.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


class ScenarioServer:
    """The asyncio server; embeddable in-process or run by the CLI.

    Two drive modes:

    * ``await serve_async()`` inside an existing event loop (the CLI's
      path, with signal handlers attached around it);
    * ``start()`` / ``stop()`` which run the loop on a daemon thread —
      what the tests and the load-generator benchmark use to boot a real
      TCP server next to their client threads.
    """

    def __init__(self, service: ScenarioService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stopping: asyncio.Event | None = None

    # -- asyncio-side ------------------------------------------------------

    async def start_async(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()

    async def serve_async(self) -> None:
        """Start and serve until :meth:`request_stop` (or cancellation)."""
        await self.start_async()
        try:
            await self._stopping.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()

    def request_stop(self) -> None:
        """Signal ``serve_async`` to return (threadsafe)."""
        if self._loop is not None and self._stopping is not None:
            self._loop.call_soon_threadsafe(self._stopping.set)

    # -- thread-embedded mode ---------------------------------------------

    def start(self) -> "ScenarioServer":
        """Boot the server on a background thread; returns when bound."""
        def runner():
            asyncio.run(self.serve_async())

        self._thread = threading.Thread(
            target=runner, name="scenario-server", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("scenario server failed to bind")
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop serving, then close the service (draining by default)."""
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        self.service.close(drain=drain)

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling --------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as error:
                await self._send_error(writer, error)
                return
            try:
                await self._route(method, path, body, writer)
            except _HttpError as error:
                await self._send_error(writer, error)
            except Exception as error:  # noqa: BLE001 — keep serving
                await self._send_error(writer, _HttpError(
                    500, f"{type(error).__name__}: {error}"))
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader) -> tuple[str, str, bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise _HttpError(400, "empty request")
        try:
            method, target, _version = request_line.decode(
                "ascii").strip().split(" ", 2)
        except ValueError as error:
            raise _HttpError(400, "malformed request line") from error
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as err:
                    raise _HttpError(400, "bad Content-Length") from err
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method.upper(), target.split("?", 1)[0], body

    async def _send(self, writer, status: int, payload,
                    content_type: str = "application/json") -> None:
        if isinstance(payload, (dict, list)):
            payload = (json.dumps(payload, sort_keys=True) + "\n").encode()
        writer.write(_response_bytes(status, payload, content_type))
        await writer.drain()

    async def _send_error(self, writer, error: _HttpError) -> None:
        try:
            await self._send(writer, error.status, {"error": error.message})
        except (ConnectionError, OSError):
            pass

    async def _in_thread(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            None, fn, *args)

    async def _route(self, method: str, path: str, body: bytes,
                     writer) -> None:
        parts = [p for p in path.split("/") if p]

        if path == "/healthz" and method == "GET":
            await self._send(writer, 200, {"ok": True})
        elif path == "/metrics" and method == "GET":
            snapshot = await self._in_thread(self.service.metrics_snapshot)
            await self._send(writer, 200, snapshot)
        elif path == "/traces" and method == "GET":
            await self._send(writer, 200, self.service.trace_spans())
        elif path == "/runs" and method == "POST":
            await self._submit(body, writer)
        elif path == "/runs" and method == "GET":
            await self._send(writer, 200, self.service.runs())
        elif len(parts) == 2 and parts[0] == "runs" and method == "GET":
            await self._send(writer, 200, self._status(parts[1]))
        elif (len(parts) == 3 and parts[0] == "runs"
                and parts[2] == "progress" and method == "GET"):
            await self._stream_progress(parts[1], writer)
        elif (len(parts) == 3 and parts[0] == "runs"
                and parts[2] == "result" and method == "GET"):
            await self._result_manifest(parts[1], writer)
        elif (len(parts) == 4 and parts[0] == "runs"
                and parts[2] == "result" and method == "GET"):
            await self._result_file(parts[1], parts[3], writer)
        elif path == "/observatory" and method == "GET":
            await self._stream_observatory(writer)
        elif path == "/observatory/index" and method == "GET":
            records = await self._in_thread(self._observatory_index)
            await self._send(writer, 200, records)
        elif (len(parts) == 2 and parts[0] == "observatory"
                and method == "GET"):
            record = await self._in_thread(self._observatory_day, parts[1])
            await self._send(writer, 200, record)
        elif (len(parts) == 3 and parts[0] == "runs" and parts[2] == "pin"
                and method in ("POST", "DELETE")):
            self._pin(parts[1], unpin=method == "DELETE")
            await self._send(writer, 200, {"run_id": parts[1],
                                           "pinned": method == "POST"})
        else:
            raise _HttpError(404 if method == "GET" else 405,
                             f"no route for {method} {path}")

    # -- handlers ----------------------------------------------------------

    async def _submit(self, body: bytes, writer) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"body is not JSON: {error}") from error
        try:
            run, outcome = await self._in_thread(self.service.submit, payload)
        except (TypeError, ValueError) as error:
            raise _HttpError(400, f"bad config: {error}") from error
        except AdmissionFull as error:
            raise _HttpError(503, str(error)) from error
        except ServiceClosed as error:
            raise _HttpError(503, str(error)) from error
        status = 202 if outcome == "created" else 200
        await self._send(writer, status, {
            **run.public(), "outcome": outcome,
            "links": {
                "status": f"/runs/{run.run_id}",
                "progress": f"/runs/{run.run_id}/progress",
                "result": f"/runs/{run.run_id}/result",
            },
        })

    def _status(self, run_id: str) -> dict:
        try:
            return self.service.status(run_id)
        except UnknownRun as error:
            raise _HttpError(404, f"unknown run {run_id}") from error

    def _pin(self, run_id: str, unpin: bool) -> None:
        try:
            (self.service.unpin if unpin else self.service.pin)(run_id)
        except UnknownRun as error:
            raise _HttpError(404, f"unknown run {run_id}") from error

    async def _stream_progress(self, run_id: str, writer) -> None:
        """SSE: one ``data:`` event per journal record, until run_end."""
        from repro.obs import JournalTail

        try:
            run = self.service.get(run_id)
        except UnknownRun as error:
            raise _HttpError(404, f"unknown run {run_id}") from error
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        if run.journal_path is None:
            return
        # The stream ends only when the run is terminal AND the journal
        # is drained: cache_store trails run_end, so stopping at run_end
        # would truncate the stream nondeterministically.
        tail = JournalTail(run.journal_path)
        while True:
            done = run.done_event.is_set()
            records = await self._in_thread(tail.poll)
            for record in records:
                event = "data: " + json.dumps(record, sort_keys=True) + "\n\n"
                writer.write(event.encode())
            if records:
                await writer.drain()
            if done and not records:
                return
            await asyncio.sleep(PROGRESS_POLL_S)

    def _observatory_index(self) -> list:
        try:
            return self.service.observatory_index()
        except UnknownRun as error:
            raise _HttpError(404, error.args[0]) from error

    def _observatory_day(self, day_text: str) -> dict:
        try:
            day = int(day_text)
        except ValueError as error:
            raise _HttpError(400, f"bad day {day_text!r}") from error
        try:
            return self.service.observatory_day(day)
        except UnknownRun as error:
            raise _HttpError(404, error.args[0]) from error

    async def _stream_observatory(self, writer) -> None:
        """SSE: one ``data:`` event per observer record, tailing the live
        ``observations.jsonl`` until its ``observatory_end`` marker.

        Each event's payload is byte-identical to the record's line in
        the day files (same ``sort_keys`` serialization), so a client
        concatenating the stream reconstructs the on-disk records.
        """
        from repro.obs import JournalTail

        try:
            path = self.service.observatory_stream_path()
        except UnknownRun as error:
            raise _HttpError(404, error.args[0]) from error
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        tail = JournalTail(str(path))
        while True:
            records = await self._in_thread(tail.poll)
            done = False
            for record in records:
                done = done or record.get("type") == "observatory_end"
                event = "data: " + json.dumps(record, sort_keys=True) + "\n\n"
                writer.write(event.encode())
            if records:
                await writer.drain()
            if done:
                return
            await asyncio.sleep(PROGRESS_POLL_S)

    async def _result_manifest(self, run_id: str, writer) -> None:
        manifest = await self._in_thread(self._manifest_or_error, run_id)
        files = sorted(manifest.get("files", {}))
        await self._send(writer, 200, {
            "run_id": run_id,
            "manifest": manifest,
            "files": {
                name: f"/runs/{run_id}/result/{name}" for name in files
            },
        })

    def _manifest_or_error(self, run_id: str) -> dict:
        try:
            return self.service.result_manifest(run_id)
        except UnknownRun as error:
            raise _HttpError(404, f"unknown run {run_id}") from error
        except ResultUnavailable as error:
            status = 410 if "evicted" in str(error) else 404
            raise _HttpError(status, str(error)) from error

    async def _result_file(self, run_id: str, name: str, writer) -> None:
        if "/" in name or name.startswith("."):
            raise _HttpError(400, "bad artifact name")
        def read() -> bytes:
            try:
                path: Path = self.service.result_file(run_id, name)
                return path.read_bytes()
            except UnknownRun as error:
                raise _HttpError(404, str(error)) from error
            except ResultUnavailable as error:
                status = 410 if "evicted" in str(error) else 404
                raise _HttpError(status, str(error)) from error
            except OSError as error:
                raise _HttpError(410, f"artifact unreadable: {error}") from error

        payload = await self._in_thread(read)
        await self._send(writer, 200, payload, "application/octet-stream")
