"""DNS zones: record sets, serials, zone-file rendering."""

from __future__ import annotations

from repro.dns.records import ResourceRecord, RRType, validate_name


class Zone:
    """A DNS zone rooted at ``origin`` (e.g. ``example.com``).

    Records are keyed by (owner name, type).  The serial increments on every
    mutation, which the registry uses to detect changed zones when building
    its daily zone-file publication.
    """

    def __init__(self, origin: str, created_at: float = 0.0):
        self.origin = validate_name(origin)
        self.created_at = created_at
        self.serial = 1
        self._records: dict[tuple[str, RRType], list[ResourceRecord]] = {}

    def _check_in_zone(self, name: str) -> str:
        name = validate_name(name)
        if name != self.origin and not name.endswith("." + self.origin):
            raise ValueError(f"{name!r} is not within zone {self.origin!r}")
        return name

    def add(self, record: ResourceRecord) -> None:
        """Add a record (owner must be at or below the zone origin)."""
        self._check_in_zone(record.name)
        self._records.setdefault((record.name, record.rtype), []).append(record)
        self.serial += 1

    def remove(self, name: str, rtype: RRType) -> int:
        """Remove all records of ``rtype`` at ``name``; returns count removed."""
        name = self._check_in_zone(name)
        removed = self._records.pop((name, rtype), [])
        if removed:
            self.serial += 1
        return len(removed)

    def lookup(self, name: str, rtype: RRType) -> list[ResourceRecord]:
        """Records of ``rtype`` at exactly ``name`` (empty when none)."""
        try:
            name = self._check_in_zone(name)
        except ValueError:
            return []
        return list(self._records.get((name, rtype), []))

    def names(self) -> set[str]:
        """All owner names present in the zone."""
        return {name for name, _ in self._records}

    def records(self) -> list[ResourceRecord]:
        """All records, sorted by (name, type) for stable zone files."""
        out = []
        for key in sorted(self._records, key=lambda k: (k[0], k[1].value)):
            out.extend(self._records[key])
        return out

    def render(self) -> str:
        """Render the zone in presentation format (zone file text)."""
        lines = [f"$ORIGIN {self.origin}.", f"; serial {self.serial}"]
        lines.extend(record.render() for record in self.records())
        return "\n".join(lines) + "\n"
