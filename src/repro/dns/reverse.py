"""Reverse DNS: the ip6.arpa tree, PTR records, and zone walking.

Zhao et al. (PAM 2024) found IPv6 scanners enumerating targets by walking
ip6.arpa.  We model the tree precisely enough for that strategy: nibble
names, PTR records, and the NXDOMAIN / NOERROR-empty distinction that makes
walking efficient (an empty non-terminal answers NOERROR, so a walker can
prune subtrees that answer NXDOMAIN).
"""

from __future__ import annotations

from typing import Iterator

from repro.net.addr import MAX_ADDRESS


def nibble_name(address: int) -> str:
    """Return the ip6.arpa owner name for a full /128 address."""
    if not 0 <= address <= MAX_ADDRESS:
        raise ValueError(f"address out of range: {address!r}")
    nibbles = [f"{(address >> shift) & 0xF:x}" for shift in range(0, 128, 4)]
    return ".".join(nibbles) + ".ip6.arpa"


def nibble_prefix_name(network: int, prefix_len: int) -> str:
    """Return the ip6.arpa name for a nibble-aligned prefix."""
    if prefix_len % 4 != 0:
        raise ValueError(f"prefix length must be nibble-aligned: /{prefix_len}")
    count = prefix_len // 4
    nibbles = [
        f"{(network >> (124 - 4 * i)) & 0xF:x}" for i in range(count)
    ]
    return ".".join(reversed(nibbles)) + ".ip6.arpa"


class ReverseZone:
    """The ip6.arpa tree with PTR records and walk-friendly semantics."""

    def __init__(self) -> None:
        # address -> list of (ptr target, created_at)
        self._ptr: dict[int, list[tuple[str, float]]] = {}

    def add_ptr(self, address: int, target: str, at: float = 0.0) -> None:
        """Install a PTR record for ``address``."""
        if not 0 <= address <= MAX_ADDRESS:
            raise ValueError(f"address out of range: {address!r}")
        self._ptr.setdefault(address, []).append((target, at))

    def lookup_ptr(self, address: int, at: float) -> list[str]:
        """PTR targets for ``address`` existing at time ``at``."""
        return [t for t, created in self._ptr.get(address, []) if created <= at]

    def node_exists(self, network: int, prefix_len: int, at: float) -> bool:
        """NOERROR/NXDOMAIN semantics for a nibble-aligned subtree.

        True (NOERROR) when any PTR record existing at ``at`` lies under the
        subtree; False (NXDOMAIN) otherwise.  Walkers prune on False.
        """
        if prefix_len % 4 != 0:
            raise ValueError(f"prefix length must be nibble-aligned: /{prefix_len}")
        if prefix_len == 0:
            return any(
                created <= at
                for records in self._ptr.values()
                for _, created in records
            )
        shift = 128 - prefix_len
        target = network >> shift
        for address, records in self._ptr.items():
            if (address >> shift) == target and any(c <= at for _, c in records):
                return True
        return False

    def walk(self, network: int, prefix_len: int, at: float,
             max_queries: int = 100_000) -> Iterator[int]:
        """Enumerate all PTR-holding addresses under a prefix by tree walking.

        Mirrors a scanner's ip6.arpa walk: descend nibble by nibble, pruning
        NXDOMAIN subtrees.  ``max_queries`` bounds the walk the way a real
        scanner budget would.  Yields addresses in ascending order.
        """
        queries = 0
        stack = [(network, prefix_len)]
        while stack:
            net, length = stack.pop()
            queries += 1
            if queries > max_queries:
                return
            if not self.node_exists(net, length, at):
                continue
            if length == 128:
                yield net
                continue
            step = 1 << (128 - length - 4)
            # Push children in reverse so they pop in ascending order.
            for i in reversed(range(16)):
                stack.append((net + i * step, length + 4))
