"""DNS resource-record model."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.net.addr import format_address

_LABEL = re.compile(r"^(?!-)[a-z0-9_-]{1,63}(?<!-)$")


class RRType(enum.Enum):
    """Resource record types used in this library."""

    AAAA = "AAAA"
    A = "A"
    NS = "NS"
    TXT = "TXT"
    PTR = "PTR"
    SOA = "SOA"
    CNAME = "CNAME"


def validate_name(name: str) -> str:
    """Validate a fully-qualified (no trailing dot) lowercase DNS name."""
    if not name or len(name) > 253:
        raise ValueError(f"invalid DNS name length: {name!r}")
    lowered = name.lower()
    for label in lowered.split("."):
        if not _LABEL.match(label):
            raise ValueError(f"invalid DNS label {label!r} in {name!r}")
    return lowered


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """One RR: owner name, type, value, TTL, and creation time.

    For AAAA records the value is the 128-bit int address; for TXT/NS/PTR it
    is a string.
    """

    name: str
    rtype: RRType
    value: int | str
    ttl: int = 3600
    created_at: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", validate_name(self.name))
        if self.rtype is RRType.AAAA and not isinstance(self.value, int):
            raise TypeError("AAAA record value must be an int address")
        if self.ttl < 0:
            raise ValueError(f"TTL must be non-negative: {self.ttl}")

    def render(self) -> str:
        """Render in zone-file presentation format."""
        if self.rtype is RRType.AAAA:
            value = format_address(self.value)
        elif self.rtype is RRType.TXT:
            value = f'"{self.value}"'
        else:
            value = str(self.value)
        return f"{self.name}. {self.ttl} IN {self.rtype.value} {value}"
