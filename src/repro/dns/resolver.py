"""Recursive resolver over the simulated DNS hierarchy.

Resolution semantics are time-aware: a record is resolvable only at or after
its ``created_at`` (and, for names under a registered domain, only after the
domain exists).  Scanner agents resolve through this class, so discovery
timing is consistent with the registration timeline.
"""

from __future__ import annotations

from repro.dns.records import ResourceRecord, RRType, validate_name
from repro.dns.registry import Registrar
from repro.dns.reverse import ReverseZone


class Resolver:
    """Resolves names against one or more registrars plus the reverse tree."""

    def __init__(self, registrars: list[Registrar] | None = None,
                 reverse_zone: ReverseZone | None = None):
        self._registrars = list(registrars or [])
        self._reverse = reverse_zone
        self.query_count = 0

    def add_registrar(self, registrar: Registrar) -> None:
        self._registrars.append(registrar)

    def resolve(self, name: str, rtype: RRType, at: float) -> list[ResourceRecord]:
        """Resolve ``name``/``rtype`` as of simulation time ``at``."""
        self.query_count += 1
        name = validate_name(name)
        for registrar in self._registrars:
            zone = registrar.zone_for(name)
            if zone is None or zone.created_at > at:
                continue
            return [r for r in zone.lookup(name, rtype) if r.created_at <= at]
        return []

    def resolve_aaaa(self, name: str, at: float) -> list[int]:
        """Convenience: the AAAA addresses for ``name`` at time ``at``."""
        return [r.value for r in self.resolve(name, RRType.AAAA, at)]

    def resolve_ptr(self, address: int, at: float) -> list[str]:
        """Reverse-resolve an address through the ip6.arpa tree."""
        self.query_count += 1
        if self._reverse is None:
            return []
        return self._reverse.lookup_ptr(address, at)
