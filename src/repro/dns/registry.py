"""TLD registries and the registrar.

``TldRegistry`` owns a TLD (``com``, ``net``, ``org``, ...) and publishes a
daily zone-file snapshot (ICANN CZDS-style).  Scanner agents diff successive
snapshots to discover newly registered domains — the channel the paper's
domain-name feature exercised.

``Registrar`` is the GoDaddy stand-in: it registers domains into the right
TLD registry and hosts their DNS zones, exposing the record-management API
the telescope (and its certbot plugin, for ACME DNS-01 TXT records) uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util import DAY
from repro.dns.records import ResourceRecord, RRType, validate_name
from repro.dns.zone import Zone


@dataclass(frozen=True, slots=True)
class DomainRegistration:
    """Registry-side record of one registered domain."""

    domain: str
    registered_at: float
    registrant: str


class TldRegistry:
    """A top-level-domain registry with daily zone-file publication."""

    def __init__(self, tld: str, publication_period: float = DAY):
        self.tld = validate_name(tld)
        if "." in self.tld:
            raise ValueError(f"TLD must be a single label: {tld!r}")
        if publication_period <= 0:
            raise ValueError("publication period must be positive")
        self.publication_period = publication_period
        self._registrations: dict[str, DomainRegistration] = {}

    def register(self, domain: str, at: float, registrant: str) -> DomainRegistration:
        """Register an eTLD+1 domain under this TLD."""
        domain = validate_name(domain)
        labels = domain.split(".")
        if len(labels) != 2 or labels[-1] != self.tld:
            raise ValueError(f"{domain!r} is not an eTLD+1 under .{self.tld}")
        if domain in self._registrations:
            raise ValueError(f"{domain!r} is already registered")
        registration = DomainRegistration(domain, at, registrant)
        self._registrations[domain] = registration
        return registration

    def registrations(self) -> tuple[DomainRegistration, ...]:
        return tuple(self._registrations.values())

    def publication_time(self, registered_at: float) -> float:
        """When a registration first appears in a published zone file.

        Zone files are cut at integer multiples of the publication period;
        a domain registered at time t appears in the next cut after t.
        """
        return (math.floor(registered_at / self.publication_period) + 1) * (
            self.publication_period
        )

    def zone_file_at(self, at: float) -> set[str]:
        """Domains visible in the most recent zone file published by ``at``."""
        return {
            reg.domain
            for reg in self._registrations.values()
            if self.publication_time(reg.registered_at) <= at
        }

    def new_domains(self, since: float, until: float) -> dict[str, float]:
        """Domains whose first zone-file appearance fell in ``(since, until]``.

        Returns domain -> publication time.  This is what a zone-file-diffing
        scanner consumes.
        """
        out: dict[str, float] = {}
        for reg in self._registrations.values():
            published = self.publication_time(reg.registered_at)
            if since < published <= until:
                out[reg.domain] = published
        return out


class Registrar:
    """Registers domains and hosts their DNS zones (registrar-provided DNS)."""

    def __init__(self, name: str = "registrar"):
        self.name = name
        self._tlds: dict[str, TldRegistry] = {}
        self._zones: dict[str, Zone] = {}

    def add_tld(self, registry: TldRegistry) -> None:
        self._tlds[registry.tld] = registry

    def tld(self, tld: str) -> TldRegistry:
        try:
            return self._tlds[tld]
        except KeyError:
            raise KeyError(f"registrar does not serve TLD {tld!r}") from None

    @property
    def tlds(self) -> tuple[str, ...]:
        return tuple(self._tlds)

    def register_domain(self, domain: str, at: float, registrant: str = "") -> Zone:
        """Register ``domain`` and create its hosted zone."""
        domain = validate_name(domain)
        tld = domain.rsplit(".", 1)[-1]
        self.tld(tld).register(domain, at, registrant)
        zone = Zone(domain, created_at=at)
        self._zones[domain] = zone
        return zone

    def zone_for(self, name: str) -> Zone | None:
        """The hosted zone containing ``name``, or None."""
        name = validate_name(name)
        labels = name.split(".")
        for i in range(len(labels) - 1):
            candidate = ".".join(labels[i:])
            if candidate in self._zones:
                return self._zones[candidate]
        return None

    def set_aaaa(self, name: str, address: int, at: float, ttl: int = 3600) -> None:
        """Create an AAAA record for ``name`` in its hosted zone."""
        zone = self.zone_for(name)
        if zone is None:
            raise KeyError(f"no hosted zone contains {name!r}")
        zone.add(ResourceRecord(name, RRType.AAAA, address, ttl=ttl, created_at=at))

    def set_txt(self, name: str, text: str, at: float, ttl: int = 120) -> None:
        """Create a TXT record (used by the ACME DNS-01 challenge flow)."""
        zone = self.zone_for(name)
        if zone is None:
            raise KeyError(f"no hosted zone contains {name!r}")
        zone.add(ResourceRecord(name, RRType.TXT, text, ttl=ttl, created_at=at))

    def remove_txt(self, name: str) -> int:
        """Delete TXT records at ``name`` (challenge cleanup)."""
        zone = self.zone_for(name)
        if zone is None:
            raise KeyError(f"no hosted zone contains {name!r}")
        return zone.remove(name, RRType.TXT)

    def zones(self) -> tuple[Zone, ...]:
        return tuple(self._zones.values())
