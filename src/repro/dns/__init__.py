"""DNS substrate: records, zones, TLD registries, resolution, reverse DNS.

The proactive telescope's second attraction channel: registering domain
names whose AAAA records point into honeyprefixes.  TLD registries publish
zone files on a daily cycle (ICANN CZDS-style); scanner agents diff those
feeds, resolve the new names, and probe the resulting addresses.  The
reverse (ip6.arpa) tree is modeled too, since prior work found scanners
walking it.
"""

from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import Zone
from repro.dns.registry import Registrar, TldRegistry, DomainRegistration
from repro.dns.resolver import Resolver
from repro.dns.reverse import ReverseZone, nibble_name

__all__ = [
    "RRType",
    "ResourceRecord",
    "Zone",
    "Registrar",
    "TldRegistry",
    "DomainRegistration",
    "Resolver",
    "ReverseZone",
    "nibble_name",
]
