"""Effect-size experiments: Table 4, Figures 7, 8, and 10.

Every driver here takes ``jobs`` and fans its per-honeyprefix estimation
out through :func:`repro.exec.parallel.parallel_map`.  The task arguments
carry everything a worker needs (records, control series, seeds derived
from ``rng_seed``) and results come back in task order, so the rendered
output is byte-identical for every ``jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import DAY
from repro.analysis.effects import (
    EffectEstimate,
    convergence_day,
    daily_series,
    estimate_effect,
    pointwise_effect_matrix,
)
from repro.core.features import Feature
from repro.exec.parallel import parallel_map
from repro.sim.runner import ScenarioResult

#: The honeyprefixes Table 4 reports (H_TCP excluded: its announcement
#: never propagated).
TABLE4_PREFIXES = (
    "H_BGP1", "H_Alias", "H_TCP", "H_UDP", "H_Com", "H_Org/net",
    "H_Combined", "H_TPot1",
)


def _bgp_time(result: ScenarioResult, name: str) -> float:
    hp = result.honeyprefixes[name]
    t = hp.feature_time(Feature.BGP)
    return t if t is not None else hp.deployed_at


@dataclass(frozen=True)
class Table4Result:
    """Per-honeyprefix traffic and ASN effect sizes."""

    traffic: dict[str, EffectEstimate]
    asn: dict[str, EffectEstimate]
    #: Trigger-level rows: TPot1's hitlist insertion and TLS issuance.
    triggers: dict[str, EffectEstimate]

    def render(self) -> str:
        lines = ["Table 4 — effect sizes of controlled experiments"]
        lines.append(f"  {'honeyprefix':14s} {'Δtraffic':>10s} "
                     f"{'95% CI':>20s} {'ΔASN':>7s} {'sig':>4s}")
        for name, est in self.traffic.items():
            asn = self.asn.get(name)
            lines.append(
                f"  {name:14s} {est.aes:10,.1f} "
                f"[{est.ci_high:8,.0f} –{est.ci_low:8,.0f}] "
                f"{asn.aes if asn else 0:7.1f} "
                f"{'yes' if est.significant else 'no':>4s}"
            )
        for name, est in self.triggers.items():
            lines.append(
                f"  {name:14s} {est.aes:10,.1f} "
                f"[{est.ci_high:8,.0f} –{est.ci_low:8,.0f}] "
                f"{'':7s} {'yes' if est.significant else 'no':>4s}"
            )
        return "\n".join(lines)


def table4(result: ScenarioResult, rng_seed: int = 0,
           jobs: int = 1) -> Table4Result:
    """Table 4: BSTM effect sizes for every honeyprefix + TPot triggers.

    The eligibility logic stays in-process (it only reads feature
    timelines); each eligible (prefix, metric) estimation becomes one
    :func:`estimate_effect` task, fanned out ``jobs`` at a time.  Seeds
    travel in the task arguments, so the table is identical for any
    ``jobs``.
    """
    control = result.control_records()
    # (kind, name) labels paired with estimate_effect argument tuples.
    labels: list[tuple[str, str]] = []
    tasks: list[tuple] = []
    for name in TABLE4_PREFIXES:
        hp = result.honeyprefixes.get(name)
        if hp is None:
            continue
        records = result.honeyprefix_records(name)
        if hp.config.announce_fails or len(records) == 0:
            continue  # H_TCP: no announcement, (almost) no traffic
        t0 = _bgp_time(result, name)
        # The per-honeyprefix row measures the *initial* deployment only:
        # later triggers (hitlist insertion, TLS issuance) are reported as
        # their own rows, exactly as Table 4 separates H_TPot1 (1,115
        # pkts/day) from its TLS trigger (224k pkts/day).
        end = result.end
        later = [hp.feature_time(f)
                 for f in (Feature.HITLIST, Feature.TLS_ROOT)
                 if hp.config.tpot and hp.feature_time(f) is not None]
        if later:
            end = min(end, min(later))
        if end - t0 < 2 * DAY:
            continue
        labels.append(("traffic", name))
        tasks.append((name, records, control, t0, result.start, end,
                      "packets", None, 0.05, rng_seed))
        labels.append(("asn", name))
        tasks.append((name, records, control, t0, result.start, end,
                      "asns", result.joiner, 0.05, rng_seed + 1))
    tpot = result.honeyprefixes.get("H_TPot1")
    if tpot is not None:
        records = result.honeyprefix_records("H_TPot1")
        for label, feature in (("TPot1+Hitlist", Feature.HITLIST),
                               ("TPot1+TLS", Feature.TLS_ROOT)):
            t = tpot.feature_time(feature)
            if t is not None and t < result.end - 3 * DAY:
                labels.append(("trigger", label))
                tasks.append((label, records, control, t, result.start,
                              result.end, "packets", None, 0.05,
                              rng_seed + 2))
    estimates = parallel_map(estimate_effect, tasks, jobs=jobs)
    traffic: dict[str, EffectEstimate] = {}
    asn: dict[str, EffectEstimate] = {}
    triggers: dict[str, EffectEstimate] = {}
    buckets = {"traffic": traffic, "asn": asn, "trigger": triggers}
    for (kind, name), estimate in zip(labels, estimates):
        buckets[kind][name] = estimate
    return Table4Result(traffic=traffic, asn=asn, triggers=triggers)


@dataclass(frozen=True)
class Fig7Result:
    """Daily traffic effect heatmap aligned at each BGP announcement."""

    names: list[str]
    matrix: np.ndarray
    convergence_days: dict[str, int | None]
    #: Relative traffic jump at each TPot1 trigger (order-of-magnitude in
    #: the paper).
    trigger_jumps: dict[str, float]

    def render(self) -> str:
        lines = ["Fig 7 — heatmap of daily traffic effects (day 0 = BGP "
                 "announcement)"]
        for i, name in enumerate(self.names):
            row = self.matrix[i]
            finite = row[np.isfinite(row)]
            conv = self.convergence_days.get(name)
            lines.append(
                f"  {name:12s} peak={np.max(finite):8.0f} "
                f"final={finite[-1] if len(finite) else 0:8.0f} "
                f"converges~day {conv}"
            )
        for label, jump in self.trigger_jumps.items():
            lines.append(f"  trigger {label}: traffic x{jump:.1f}")
        return "\n".join(lines)


def fig7(result: ScenarioResult,
         names: tuple[str, ...] = ("H_Com", "H_Alias", "H_TPot1"),
         rng_seed: int = 0, jobs: int = 1) -> Fig7Result:
    """Figure 7: effect heatmap + trigger-induced order-of-magnitude jumps."""
    control = result.control_records()
    tasks = []
    kept = []
    for name in names:
        records = result.honeyprefix_records(name)
        if len(records) == 0:
            continue
        kept.append(name)
        tasks.append((name, records, control, _bgp_time(result, name),
                      result.start, result.end, "packets", None, 0.05,
                      rng_seed))
    estimates = parallel_map(estimate_effect, tasks, jobs=jobs)
    n_days = max(len(e.impact.pointwise) for e in estimates)
    matrix = pointwise_effect_matrix(estimates, n_days)
    convergence = {
        name: convergence_day(est.impact.pointwise)
        for name, est in zip(kept, estimates)
    }
    # Trigger jumps on TPot1: mean daily traffic in the week after each
    # trigger vs. the week before.
    jumps: dict[str, float] = {}
    tpot = result.honeyprefixes.get("H_TPot1")
    if tpot is not None:
        records = result.honeyprefix_records("H_TPot1")
        series = daily_series(records, result.start, result.end)
        for label, feature in (("hitlist", Feature.HITLIST),
                               ("tls", Feature.TLS_ROOT)):
            t = tpot.feature_time(feature)
            if t is None:
                continue
            day = int((t - result.start) // DAY)
            if not 7 <= day < len(series) - 7:
                continue
            before = float(np.mean(series[day - 7:day]))
            after = float(np.mean(series[day + 1:day + 8]))
            jumps[label] = after / before if before > 0 else float("inf")
    return Fig7Result(names=kept, matrix=matrix,
                      convergence_days=convergence, trigger_jumps=jumps)


@dataclass(frozen=True)
class Fig8Result:
    """Longitudinal daily ASN effects: flat while traffic decays."""

    names: list[str]
    asn_series: dict[str, np.ndarray]
    traffic_series: dict[str, np.ndarray]

    def stability(self, name: str) -> float:
        """Late/early ratio of daily unique ASNs (≈1 means stable)."""
        series = self.asn_series[name]
        active = series[series > 0]
        if len(active) < 10:
            return 0.0
        k = max(5, len(active) // 4)
        early = float(np.mean(active[:k]))
        late = float(np.mean(active[-k:]))
        return late / early if early > 0 else 0.0

    def traffic_decay(self, name: str) -> float:
        """Late/early ratio of daily traffic (<1 means decaying)."""
        series = self.traffic_series[name]
        active_idx = np.nonzero(series > 0)[0]
        if len(active_idx) < 10:
            return 1.0
        first = active_idx[0]
        active = series[first:]
        k = max(5, len(active) // 4)
        early = float(np.mean(active[:k]))
        late = float(np.mean(active[-k:]))
        return late / early if early > 0 else 1.0

    def render(self) -> str:
        lines = ["Fig 8 — daily source-ASN counts stay flat while traffic "
                 "decays from its initial burst"]
        for name in self.names:
            lines.append(
                f"  {name:12s} ASN late/early={self.stability(name):5.2f} "
                f"traffic late/early={self.traffic_decay(name):5.2f}"
            )
        return "\n".join(lines)


def fig8(result: ScenarioResult,
         names: tuple[str, ...] = ("H_Com", "H_Alias", "H_TPot1"),
         jobs: int = 1) -> Fig8Result:
    """Figure 8: ΔASN stays consistent; traffic volume decays."""
    tasks = []
    kept = []
    for name in names:
        records = result.honeyprefix_records(name)
        if len(records) == 0:
            continue
        kept.append(name)
        tasks.append((records, result.start, result.end, "asns",
                      result.joiner))
        tasks.append((records, result.start, result.end, "packets", None))
    series = parallel_map(daily_series, tasks, jobs=jobs)
    asn_series = dict(zip(kept, series[0::2]))
    traffic_series = dict(zip(kept, series[1::2]))
    return Fig8Result(names=kept, asn_series=asn_series,
                      traffic_series=traffic_series)


@dataclass(frozen=True)
class Fig10Result:
    """Hyper-specific honeyprefix traffic: bimodal, length-uncorrelated."""

    lengths: list[int]
    packets: list[int]

    @property
    def low_mode_fraction(self) -> float:
        """Fraction of prefixes in the low-traffic mode."""
        if not self.packets:
            return 0.0
        threshold = self.split_threshold
        return float(np.mean([p < threshold for p in self.packets]))

    @property
    def split_threshold(self) -> float:
        """Midpoint between the two modes (geometric mean of extremes)."""
        values = sorted(self.packets)
        if len(values) < 2:
            return 1.0
        lo = max(1.0, float(np.mean(values[:len(values) // 2])))
        hi = max(lo, float(np.mean(values[len(values) // 2:])))
        return float(np.sqrt(lo * hi))

    @property
    def length_correlation(self) -> float:
        """|Pearson r| between announced length and packet count."""
        if len(set(self.packets)) < 2:
            return 0.0
        return float(abs(np.corrcoef(self.lengths, self.packets)[0, 1]))

    def render(self) -> str:
        lines = ["Fig 10 — H_specific traffic (paper: bimodal, 75% low; no "
                 "length correlation)"]
        for length, pkts in zip(self.lengths, self.packets):
            lines.append(f"  /{length}: {pkts} packets")
        lines.append(
            f"  low-mode fraction {self.low_mode_fraction:.0%}; "
            f"|corr(length, packets)| = {self.length_correlation:.2f}"
        )
        return "\n".join(lines)


def _specific_packet_count(nta, prefix) -> int:
    """Packets captured for one hyper-specific prefix (fig10 task body)."""
    return int(np.count_nonzero(nta.mask_dst_in(prefix)))


def fig10(result: ScenarioResult, jobs: int = 1) -> Fig10Result:
    """Figure 10: per-hyper-specific-prefix traffic totals."""
    lengths = []
    tasks = []
    for length in range(49, 65):
        name = f"H_Specific/{length}"
        if name not in result.honeyprefixes:
            continue
        lengths.append(length)
        tasks.append((result.nta, result.honeyprefixes[name].prefix))
    packets = parallel_map(_specific_packet_count, tasks, jobs=jobs)
    return Fig10Result(lengths=lengths, packets=packets)
