"""CDN longitudinal experiments: Figures 1, 2, 13 and Table 6."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.cdn import CdnVantage


def _default_vantage(seed: int = 0, n_weeks: int = 104) -> CdnVantage:
    return CdnVantage(rng=seed, n_weeks=n_weeks)


def _trend_ratio(series: np.ndarray, head: int = 8, tail: int = 8) -> float:
    """Late-window mean over early-window mean (the growth factor)."""
    if len(series) < head + tail:
        raise ValueError("series too short for trend ratio")
    early = float(np.mean(series[:head]))
    late = float(np.mean(series[-tail:]))
    return late / early if early > 0 else float("inf")


@dataclass(frozen=True)
class Fig1Result:
    """Weekly scan sources at the CDN, per aggregation level."""

    weeks: np.ndarray
    sources_128: np.ndarray
    sources_64: np.ndarray
    sources_48: np.ndarray

    @property
    def growth_128(self) -> float:
        return _trend_ratio(self.sources_128)

    @property
    def growth_64(self) -> float:
        return _trend_ratio(self.sources_64)

    @property
    def growth_48(self) -> float:
        return _trend_ratio(self.sources_48)

    def render(self) -> str:
        lines = ["Fig 1 — weekly CDN scan sources (paper: /128 2x, /64 and "
                 "/48 ~3x over two years)"]
        lines.append(
            f"  growth factors: /128 {self.growth_128:.1f}x, "
            f"/64 {self.growth_64:.1f}x, /48 {self.growth_48:.1f}x"
        )
        for w in range(0, len(self.weeks), 13):
            lines.append(
                f"  week {w:3d}: /128 {self.sources_128[w]:7.0f}  "
                f"/64 {self.sources_64[w]:6.0f}  /48 {self.sources_48[w]:6.0f}"
            )
        return "\n".join(lines)


def fig1(vantage: CdnVantage | None = None, seed: int = 0) -> Fig1Result:
    """Figure 1: weekly scan sources more than double over the window."""
    vantage = vantage or _default_vantage(seed)
    return Fig1Result(
        weeks=np.arange(vantage.n_weeks),
        sources_128=vantage.weekly_sources(128),
        sources_64=vantage.weekly_sources(64),
        sources_48=vantage.weekly_sources(48),
    )


@dataclass(frozen=True)
class Fig2Result:
    """Weekly scan packets: total and top-source share."""

    weeks: np.ndarray
    total: np.ndarray
    top_source: np.ndarray

    @property
    def growth(self) -> float:
        return _trend_ratio(self.total)

    @property
    def early_top_share(self) -> float:
        mask = self.total[:8] > 0
        if not mask.any():
            return 0.0
        return float(np.mean(
            self.top_source[:8][mask] / self.total[:8][mask]
        ))

    @property
    def late_top_share(self) -> float:
        mask = self.total[-8:] > 0
        if not mask.any():
            return 0.0
        return float(np.mean(
            self.top_source[-8:][mask] / self.total[-8:][mask]
        ))

    def render(self) -> str:
        return (
            "Fig 2 — weekly CDN scan packets (paper: ~100x growth; early "
            "weeks dominated by top source)\n"
            f"  total growth {self.growth:.0f}x; top-source share "
            f"{self.early_top_share:.0%} early -> {self.late_top_share:.0%} late"
        )


def fig2(vantage: CdnVantage | None = None, seed: int = 0) -> Fig2Result:
    """Figure 2: packet volume grows ~100x and de-concentrates."""
    vantage = vantage or _default_vantage(seed)
    total, top = vantage.weekly_packets()
    return Fig2Result(weeks=np.arange(vantage.n_weeks), total=total,
                      top_source=top)


@dataclass(frozen=True)
class Fig13Result:
    """Weekly count of scanning ASes at the CDN."""

    weeks: np.ndarray
    ases: np.ndarray

    @property
    def growth(self) -> float:
        return _trend_ratio(self.ases)

    def render(self) -> str:
        return (
            "Fig 13 — weekly scanning ASes at the CDN (paper: steady "
            f"growth)\n  {self.ases[0]:.0f} -> {self.ases[-1]:.0f} ASes "
            f"({self.growth:.1f}x)"
        )


def fig13(vantage: CdnVantage | None = None, seed: int = 0) -> Fig13Result:
    """Figure 13: the number of scanning ASes grows steadily."""
    vantage = vantage or _default_vantage(seed)
    return Fig13Result(weeks=np.arange(vantage.n_weeks),
                       ases=vantage.weekly_ases())


@dataclass(frozen=True)
class Table6Result:
    """Top-20 CDN source ASes."""

    rows: list

    def render(self) -> str:
        lines = ["Table 6 — top 20 CDN source ASes"]
        lines.append(f"  {'rank':4s} {'type':15s} {'packets':>12s} "
                     f"{'share':>6s} {'/48s':>5s} {'/64s':>5s} {'/128s':>6s}")
        for i, row in enumerate(self.rows, 1):
            lines.append(
                f"  #{i:<3d} {row['as_type'] + ' (' + row['country'] + ')':15s} "
                f"{row['packets']:12.0f} {row['share']:6.1%} "
                f"{row['n_48']:5d} {row['n_64']:5d} {row['n_128']:6d}"
            )
        return "\n".join(lines)


def table6(vantage: CdnVantage | None = None, seed: int = 0,
           n: int = 20) -> Table6Result:
    """Table 6: top source ASes with their source-prefix footprints."""
    vantage = vantage or _default_vantage(seed)
    return Table6Result(rows=vantage.top_as_table(n))
