"""Scanner-scope experiment: Figure 9."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.scope import ScopeReport, scanner_scope
from repro.sim.runner import ScenarioResult


@dataclass(frozen=True)
class Fig9Result:
    """Figure 9's statistics over NT-A."""

    report: ScopeReport

    @property
    def frac_2(self) -> float:
        return self.report.fraction_at_most(2)

    @property
    def frac_11(self) -> float:
        return self.report.fraction_at_most(10)

    @property
    def frac_27(self) -> float:
        return self.report.fraction_at_most(27)

    def render(self) -> str:
        r = self.report
        return (
            "Fig 9 — /48 prefixes targeted per scanner "
            "(paper: 95% <=2, 99.92% <11, 99.97% <=27)\n"
            f"  <=2: {self.frac_2:.2%}  <11: {self.frac_11:.2%}  "
            f"<=27: {self.frac_27:.2%}\n"
            f"  honeyprefix traffic share {r.honeyprefix_traffic_share:.1%} "
            f"(paper 98.4%); first-16-/48 share of the rest "
            f"{r.low_prefix_share_of_other:.0%} (paper ~50%); "
            f"wide scanners: {r.wide_scanners} (paper: 55 of 191k)"
        )


def fig9(result: ScenarioResult) -> Fig9Result:
    """Figure 9: the /48-scope CDF plus spillover statistics."""
    honeyprefixes = [hp.prefix for hp in result.honeyprefixes.values()]
    report = scanner_scope(
        result.nta, result.scenario.nta_covering, honeyprefixes,
    )
    return Fig9Result(report=report)
