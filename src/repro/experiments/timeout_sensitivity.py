"""Footnote 1's timeout-sensitivity claim.

The paper's scan definition uses a 3600-second inter-arrival timeout and
cites a sensitivity analysis: shortening to 1800 s or 900 s changes scan
detection rates only "by single-digit percentages".

Scale matters for this experiment: the simulation emits packets at
``volume_scale`` of the paper's density, so inter-arrival gaps are
``1/volume_scale`` times longer than they would be in the real capture.
With ``density_corrected=True`` (the default when given a scenario result)
the timeouts are stretched by that factor, comparing sessions exactly as
the paper's full-volume capture would have; ``density_corrected=False``
applies the raw wall-clock timeouts, demonstrating how threshold-based scan
definitions fragment on sparse data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.records import PacketRecords
from repro.analysis.scandetect import detect_scans
from repro.sim.runner import ScenarioResult

TIMEOUTS = (3_600.0, 1_800.0, 900.0)


@dataclass(frozen=True)
class TimeoutSensitivityResult:
    """Scan counts and detected-source counts per timeout."""

    timeouts: tuple[float, ...]
    effective_timeouts: tuple[float, ...]
    scan_counts: tuple[int, ...]
    source_counts: tuple[int, ...]
    density_corrected: bool

    def relative_drop(self, index: int) -> float:
        """Drop in detected scanning *sources* vs. the 3600 s baseline.

        Sources are the stable quantity across timeouts (splitting one
        session into two raises the scan count but not the source count),
        which is what the paper's detection-rate claim is about.
        """
        base = self.source_counts[0]
        if base == 0:
            return 0.0
        return 1.0 - self.source_counts[index] / base

    def render(self) -> str:
        mode = ("density-corrected to paper volume"
                if self.density_corrected else "raw simulation density")
        lines = ["Footnote 1 — scan-detection timeout sensitivity "
                 f"({mode}; paper: single-digit % differences)"]
        for i, timeout in enumerate(self.timeouts):
            lines.append(
                f"  timeout {timeout:6.0f}s: {self.scan_counts[i]:6d} scans "
                f"from {self.source_counts[i]:5d} sources "
                f"(source drop vs 3600s: {self.relative_drop(i):+.1%})"
            )
        return "\n".join(lines)


def footnote1_timeout_sensitivity(
    result_or_records: "ScenarioResult | PacketRecords",
    source_length: int = 64,
    min_targets: int = 100,
    density_corrected: bool | None = None,
) -> TimeoutSensitivityResult:
    """Run scan detection at 3600/1800/900 s over the same capture."""
    if isinstance(result_or_records, ScenarioResult):
        records = result_or_records.nta
        scale = result_or_records.config.volume_scale
        if density_corrected is None:
            density_corrected = True
    else:
        records = result_or_records
        scale = 1.0
        if density_corrected is None:
            density_corrected = False
    factor = 1.0 / scale if density_corrected and scale < 1.0 else 1.0

    scan_counts = []
    source_counts = []
    effective = tuple(t * factor for t in TIMEOUTS)
    for timeout in effective:
        events = detect_scans(records, source_length=source_length,
                              min_targets=min_targets, timeout=timeout)
        scan_counts.append(len(events))
        source_counts.append(len({e.source for e in events}))
    return TimeoutSensitivityResult(
        timeouts=TIMEOUTS,
        effective_timeouts=effective,
        scan_counts=tuple(scan_counts),
        source_counts=tuple(source_counts),
        density_corrected=density_corrected,
    )
