"""Source characterization experiments: Table 3/8, Figure 5, Figure 6."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.asinfo import AsnRow, CategoryStats, SourceBreakdown
from repro.datasets.asdb import AsCategory
from repro.sim.runner import ScenarioResult


@dataclass(frozen=True)
class Table3Result:
    """Top source ASNs in NT-A (Table 3 top-5; Table 8 extends to 20)."""

    rows: list[AsnRow]
    total_packets: int

    @property
    def top2_share(self) -> float:
        return sum(r.share for r in self.rows[:2])

    def render(self) -> str:
        lines = ["Table 3/8 — top ASN sources of unsolicited traffic (NT-A)"]
        lines.append(f"  {'AS name':24s} {'packets':>9s} {'share':>7s} "
                     f"{'/128':>7s} {'/64':>6s} {'/48':>6s}")
        for r in self.rows:
            lines.append(
                f"  {r.name:24s} {r.packets:9d} {r.share:7.1%} "
                f"{r.unique_128:7d} {r.unique_64:6d} {r.unique_48:6d}"
            )
        lines.append(f"  top-2 share: {self.top2_share:.1%} (paper: 81.6%)")
        return "\n".join(lines)


def table3(result: ScenarioResult, n: int = 20) -> Table3Result:
    """Tables 3 and 8: top-n source ASNs with source-aggregation counts."""
    rows = result.joiner.top_asns(result.nta, n=n)
    return Table3Result(rows=rows, total_packets=len(result.nta))


@dataclass(frozen=True)
class Fig5Result:
    """Per-AS-category traffic/source/destination breakdown."""

    breakdown: SourceBreakdown

    @property
    def by_category(self) -> dict[AsCategory, CategoryStats]:
        return self.breakdown.by_category

    @property
    def icmp_share(self) -> float:
        return self.breakdown.protocol_shares.get("icmpv6", 0.0)

    def category(self, category: AsCategory) -> CategoryStats:
        return self.by_category.get(category, CategoryStats(category))

    @property
    def re_dest_share(self) -> float:
        """R&E networks' share of all unique destinations probed."""
        total = sum(s.unique_destinations_128
                    for s in self.by_category.values())
        if total == 0:
            return 0.0
        return (self.category(AsCategory.RESEARCH_EDUCATION)
                .unique_destinations_128 / total)

    def render(self) -> str:
        lines = ["Fig 5 — breakdown by AS type (paper: ICMP 91.6% overall; "
                 "Internet Scanners mostly TCP; R&E probe the most targets)"]
        lines.append(f"  ICMPv6 share of all packets: {self.icmp_share:.1%}")
        for category, stats in sorted(self.by_category.items(),
                                      key=lambda kv: -kv[1].packets):
            lines.append(
                f"  {category.value:20s} pkts={stats.packets:8d} "
                f"dominant={stats.dominant_protocol:6s} "
                f"u_src={stats.unique_sources_128:6d} "
                f"u_dst={stats.unique_destinations_128:8d}"
            )
        return "\n".join(lines)


def fig5(result: ScenarioResult) -> Fig5Result:
    """Figure 5: protocol/source/destination breakdown by AS type."""
    return Fig5Result(breakdown=result.joiner.breakdown(result.nta))


@dataclass(frozen=True)
class Fig6Result:
    """Geographic distribution of /128 scanner sources."""

    by_country: dict[str, int]

    @property
    def top_country(self) -> str:
        return max(self.by_country, key=self.by_country.get)

    def render(self) -> str:
        lines = ["Fig 6 — scanner sources by country (paper: DE leads via "
                 "AlphaStrike's address spread)"]
        for country, count in sorted(self.by_country.items(),
                                     key=lambda kv: -kv[1])[:10]:
            lines.append(f"  {country}: {count}")
        return "\n".join(lines)


def fig6(result: ScenarioResult) -> Fig6Result:
    """Figure 6: unique /128 sources per country."""
    return Fig6Result(by_country=result.joiner.country_breakdown(result.nta))
