"""§5.3.1's trigger-retraction experiment."""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import DAY
from repro.sim.runner import ScenarioResult


@dataclass(frozen=True)
class RetractionResult:
    """Traffic to a withdrawn honeyprefix before and after the retraction."""

    name: str
    withdrawn_at: float
    packets_week_before: int
    packets_week_after: int

    @property
    def suppression(self) -> float:
        """Fraction of the pre-withdrawal traffic that disappeared."""
        if self.packets_week_before == 0:
            return 0.0
        return 1.0 - self.packets_week_after / self.packets_week_before

    def render(self) -> str:
        return (
            "§5.3.1 — BGP retraction (paper: scanning dies within hours)\n"
            f"  {self.name}: {self.packets_week_before} packets/week before "
            f"-> {self.packets_week_after} after "
            f"({self.suppression:.0%} suppressed)"
        )


def s531_retraction(result: ScenarioResult,
                    name: str = "H_BGP2") -> RetractionResult:
    """Measure scanning before/after the honeyprefix withdrawal."""
    hp = result.honeyprefixes[name]
    if hp.withdrawn_at is None:
        raise ValueError(
            f"{name} was never withdrawn (scenario horizon too short?)"
        )
    records = result.honeyprefix_records(name)
    w = hp.withdrawn_at
    before = records.select(records.mask_time(w - 7 * DAY, w))
    after = records.select(records.mask_time(w + 2 * DAY, w + 9 * DAY))
    return RetractionResult(
        name=name,
        withdrawn_at=w,
        packets_week_before=len(before),
        packets_week_after=len(after),
    )
