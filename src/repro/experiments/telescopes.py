"""Telescope-level experiments: Table 1 and the §5.1 overlap analysis."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.jaccard import jaccard_matrix, overlap_report
from repro.sim.runner import ScenarioResult


@dataclass(frozen=True)
class Table1Row:
    """One telescope's capture summary."""

    name: str
    packets: int
    sources_128: int
    sources_64: int
    sources_48: int
    source_asns: int
    dests_128: int
    dests_64: int
    dests_48: int


@dataclass(frozen=True)
class Table1Result:
    rows: list[Table1Row]

    def row(self, name: str) -> Table1Row:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def render(self) -> str:
        lines = ["Table 1 — telescope capture overview"]
        lines.append(
            f"  {'telescope':10s} {'packets':>9s} "
            f"{'src/128':>8s} {'src/64':>7s} {'src/48':>7s} {'ASes':>5s} "
            f"{'dst/128':>8s} {'dst/64':>8s} {'dst/48':>7s}"
        )
        for r in self.rows:
            lines.append(
                f"  {r.name:10s} {r.packets:9d} {r.sources_128:8d} "
                f"{r.sources_64:7d} {r.sources_48:7d} {r.source_asns:5d} "
                f"{r.dests_128:8d} {r.dests_64:8d} {r.dests_48:7d}"
            )
        return "\n".join(lines)


def table1(result: ScenarioResult) -> Table1Result:
    """Table 1: per-telescope packets, unique sources, unique destinations."""
    rows = []
    for name, records in result.telescopes().items():
        asns = result.joiner.row_asns(records)
        rows.append(Table1Row(
            name=name,
            packets=len(records),
            sources_128=records.unique_sources(128),
            sources_64=records.unique_sources(64),
            sources_48=records.unique_sources(48),
            source_asns=len(np.unique(asns[asns > 0])),
            dests_128=records.unique_destinations(128),
            dests_64=records.unique_destinations(64),
            dests_48=records.unique_destinations(48),
        ))
    return Table1Result(rows=rows)


@dataclass(frozen=True)
class OverlapResult:
    """§5.1: Jaccard similarities + shared-source traffic shares."""

    jaccard: dict
    average_jaccard: float
    max_jaccard: float
    reports: dict

    def render(self) -> str:
        lines = ["§5.1 — telescope source overlap"]
        lines.append(
            f"  average Jaccard {self.average_jaccard:.3f} "
            f"(paper ~0.1), max {self.max_jaccard:.3f} (paper 0.2)"
        )
        for (a, b, level), value in sorted(self.jaccard.items()):
            lines.append(f"  JS({a}, {b}) @/{level}: {value:.3f}")
        for key, rep in self.reports.items():
            lines.append(
                f"  shared /64 sources carry {rep.shared_traffic_share_a:.1%}"
                f" of {rep.name_a}'s and {rep.shared_traffic_share_b:.1%} of"
                f" {rep.name_b}'s traffic"
            )
        return "\n".join(lines)


def s51_overlap(result: ScenarioResult) -> OverlapResult:
    """§5.1's Jaccard matrix and shared-source traffic shares."""
    telescopes = result.telescopes()
    jm = jaccard_matrix(telescopes)
    values = list(jm.values())
    reports = {
        "A-C": overlap_report("NT-A", result.nta, "NT-C", result.ntc, 64),
        "A-B": overlap_report("NT-A", result.nta, "NT-B", result.ntb, 64),
    }
    return OverlapResult(
        jaccard=jm,
        average_jaccard=float(np.mean(values)) if values else 0.0,
        max_jaccard=float(np.max(values)) if values else 0.0,
        reports=reports,
    )
