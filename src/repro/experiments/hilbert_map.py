"""Address-space map experiment: Figure 14."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.hilbert import hilbert_map, prefix_cells
from repro.sim.runner import ScenarioResult


@dataclass(frozen=True)
class Fig14Result:
    """Hilbert map of NT-A's /32 with honeyprefix placements."""

    grid: np.ndarray
    honeyprefix_cells: list[tuple[int, int]]
    upper_half_fraction: float

    def render(self) -> str:
        # ASCII digest: 16x16 downsample of the 256x256 grid.
        size = self.grid.shape[0]
        step = size // 16
        down = self.grid.reshape(16, step, 16, step).sum(axis=(1, 3))
        peak = down.max() or 1.0
        shades = " .:*#@"
        lines = ["Fig 14 — Hilbert map of the telescope /32 "
                 "(16x16 downsample; honeyprefixes in the upper half)"]
        for row in down:
            lines.append("  " + "".join(
                shades[min(len(shades) - 1,
                           int(np.ceil((v / peak) * (len(shades) - 1))))]
                for v in row
            ))
        lines.append(
            f"  honeyprefixes in upper address half: "
            f"{self.upper_half_fraction:.0%}"
        )
        return "\n".join(lines)


def fig14(result: ScenarioResult) -> Fig14Result:
    """Figure 14: traffic density over the /32 + honeyprefix placement."""
    covering = result.scenario.nta_covering
    grid = hilbert_map(result.nta, covering)
    prefixes = [hp.prefix for hp in result.honeyprefixes.values()]
    cells = prefix_cells(prefixes, covering)
    half = covering.network | (1 << 95)
    upper = sum(1 for p in prefixes if p.network >= half)
    return Fig14Result(
        grid=grid,
        honeyprefix_cells=cells,
        upper_half_fraction=upper / len(prefixes) if prefixes else 0.0,
    )
