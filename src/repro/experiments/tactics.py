"""Tactic-attribution experiment: Figure 11."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tactics import TacticReport, label_tactics
from repro.sim.runner import ScenarioResult

#: Responsive honeyprefixes shown in Fig 11 (H_TCP excluded per the paper:
#: its /48 was never successfully announced).
FIG11_PREFIXES = (
    "H_Alias", "H_UDP", "H_Com", "H_Org/net", "H_Combined",
    "H_TPot1", "H_TPot2",
)


@dataclass(frozen=True)
class Fig11Result:
    """Per-honeyprefix tactic-combination counts."""

    reports: dict[str, TacticReport]

    def sources_using(self, honeyprefix: str, code: str) -> int:
        return self.reports[honeyprefix].sources_using(code)

    def subdomain_tls_coupling_holds(self) -> bool:
        """Paper finding D: no source hits subdomain addresses except via
        their TLS certificates — ``S`` never appears without ``s``
        (pre-certificate subdomain probing would be ``S`` without ``s``)."""
        for report in self.reports.values():
            for label, count in report.combos.items():
                if "S" in label and count > 0:
                    return False
        return True

    def render(self) -> str:
        lines = ["Fig 11 — tactic combinations per honeyprefix "
                 "(codes: I=icmp T=tcp U=udp D=domain d=root-TLS "
                 "S=subdomain s=sub-TLS H=hitlist O=non-responsive)"]
        for name, report in self.reports.items():
            top = ", ".join(
                f"{label or 'none'}:{count}"
                for label, count in report.combos.most_common(6)
            )
            lines.append(f"  {name:12s} sources={report.total_sources:6d}  "
                         f"{top}")
        lines.append(
            "  subdomains only discovered via TLS certs: "
            f"{self.subdomain_tls_coupling_holds()}"
        )
        return "\n".join(lines)


def fig11(result: ScenarioResult) -> Fig11Result:
    """Figure 11: feature-combination labels per scanning source."""
    reports = {}
    for name in FIG11_PREFIXES:
        hp = result.honeyprefixes.get(name)
        if hp is None:
            continue
        records = result.honeyprefix_records(name)
        reports[name] = label_tactics(records, hp)
    return Fig11Result(reports=reports)
