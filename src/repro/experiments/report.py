"""Run the full reproduction and write one consolidated report.

``run_all`` executes every registered experiment (sharing one scenario run
for the scenario-driven ones) and returns/writes the concatenated rendered
rows — the whole paper's evaluation in a single text artifact.  The CLI
exposes it as ``python -m repro experiment all``.
"""

from __future__ import annotations

import io

from repro.experiments import EXPERIMENTS
from repro.obs import get_registry
from repro.sim.runner import ScenarioResult


def run_all(
    result: ScenarioResult | None = None,
    experiment_ids: list[str] | None = None,
    output_path=None,
) -> str:
    """Run every (or the named) experiments; return the combined report.

    ``result`` is required when any selected experiment is
    scenario-driven.  When ``output_path`` is given the report is also
    written there.
    """
    ids = experiment_ids or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")
    needs_scenario = [i for i in ids if EXPERIMENTS[i][1]]
    if needs_scenario and result is None:
        raise ValueError(
            f"experiments {needs_scenario} need a ScenarioResult; pass one"
        )
    buffer = io.StringIO()
    buffer.write("# Full reproduction report\n")
    if result is not None:
        config = result.config
        buffer.write(
            f"# scenario: {config.duration_days} days, "
            f"volume_scale={config.volume_scale}, seed={config.seed}\n"
        )
    registry = get_registry()
    for experiment_id in ids:
        driver, needs_result = EXPERIMENTS[experiment_id]
        buffer.write(f"\n## {experiment_id}\n")
        if needs_result:
            registry.gauge(f"experiment.{experiment_id}.records_in").set(
                len(result.nta) + len(result.ntb) + len(result.ntc)
            )
        try:
            with registry.timer(f"experiment.{experiment_id}"):
                output = driver(result) if needs_result else driver()
        except ValueError as error:
            # An experiment can be unrunnable in the configured horizon
            # (e.g. the retraction happens after the window ends); note it
            # instead of losing the rest of the report.
            buffer.write(f"(skipped: {error})\n")
            continue
        buffer.write(output.render())
        buffer.write("\n")
    report = buffer.getvalue()
    if output_path is not None:
        with open(output_path, "w") as stream:
            stream.write(report)
    return report
