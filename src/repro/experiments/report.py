"""Run the full reproduction and write one consolidated report.

``run_all`` executes every registered experiment (sharing one scenario run
for the scenario-driven ones) and returns/writes the concatenated rendered
rows — the whole paper's evaluation in a single text artifact.  The CLI
exposes it as ``python -m repro experiment all``.

The report is assembled from per-experiment *sections*
(:func:`render_section`), each independent of the others, so the parallel
executor (:mod:`repro.exec.pool`) can render sections in worker processes
and concatenate them in id order — producing the exact bytes the serial
path produces.
"""

from __future__ import annotations

import io

from repro.experiments import EXPERIMENTS
from repro.obs import get_registry, get_tracer
from repro.sim.runner import ScenarioResult

#: Experiment drivers that accept a ``jobs=`` keyword and parallelize
#: their independent treatment/control estimations internally.
JOBS_AWARE = frozenset({"table4", "fig7", "fig8", "fig10"})

#: Experiment ids whose detection inputs the streaming engine computes
#: incrementally: their drivers run :func:`~repro.analysis.scandetect
#: .detect_scans` at the paper's parameters, the exact event stream a
#: ``repro run --stream`` run produces without retaining the records.
STREAM_ELIGIBLE = frozenset({"footnote1", "groundtruth"})


def render_header(result: ScenarioResult | None) -> str:
    """The report preamble (scenario line included when one was run)."""
    buffer = io.StringIO()
    buffer.write("# Full reproduction report\n")
    if result is not None:
        config = result.config
        buffer.write(
            f"# scenario: {config.duration_days} days, "
            f"volume_scale={config.volume_scale}, seed={config.seed}\n"
        )
    return buffer.getvalue()


def render_section(
    experiment_id: str,
    result: ScenarioResult | None = None,
    jobs: int = 1,
) -> str:
    """One experiment's report chunk: ``\\n## <id>\\n`` + rendered rows.

    Runs the driver under the active registry/tracer (worker processes
    install their own and ship snapshots back).  An experiment that is
    unrunnable in the configured horizon (e.g. the retraction happens
    after the window ends) renders as a ``(skipped: ...)`` note instead of
    poisoning the rest of the report.
    """
    driver, needs_result = EXPERIMENTS[experiment_id]
    registry = get_registry()
    buffer = io.StringIO()
    buffer.write(f"\n## {experiment_id}\n")
    if needs_result:
        registry.gauge(f"experiment.{experiment_id}.records_in").set(
            len(result.nta) + len(result.ntb) + len(result.ntc)
        )
    kwargs = {"jobs": jobs} if experiment_id in JOBS_AWARE and jobs > 1 else {}
    try:
        with registry.timer(f"experiment.{experiment_id}"), \
                get_tracer().span(f"experiment.{experiment_id}"):
            output = (driver(result, **kwargs) if needs_result
                      else driver(**kwargs))
    except ValueError as error:
        buffer.write(f"(skipped: {error})\n")
        return buffer.getvalue()
    buffer.write(output.render())
    buffer.write("\n")
    return buffer.getvalue()


def run_all(
    result: ScenarioResult | None = None,
    experiment_ids: list[str] | None = None,
    output_path=None,
) -> str:
    """Run every (or the named) experiments; return the combined report.

    ``result`` is required when any selected experiment is
    scenario-driven.  When ``output_path`` is given the report is also
    written there.
    """
    ids = experiment_ids or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")
    needs_scenario = [i for i in ids if EXPERIMENTS[i][1]]
    if needs_scenario and result is None:
        raise ValueError(
            f"experiments {needs_scenario} need a ScenarioResult; pass one"
        )
    buffer = io.StringIO()
    buffer.write(render_header(result))
    for experiment_id in ids:
        buffer.write(render_section(experiment_id, result))
    report = buffer.getvalue()
    if output_path is not None:
        with open(output_path, "w") as stream:
            stream.write(report)
    return report
