"""Configuration tables: Table 2 (honeyprefixes), Table 5 (T-Pot), and
Table 7 (Twinklenet behavior, validated by actually exercising the
responder)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.features import Feature
from repro.core.honeyprefix import (
    HoneyprefixConfig,
    IcmpMode,
    deploy_addresses,
    standard_configs,
)
from repro.core.tpot import TPOT1_CONTAINERS, TPOT2_CONTAINERS
from repro.core.twinklenet import (
    DNS_SERVFAIL_PAYLOAD,
    NTP_KOD_PAYLOAD,
    Twinklenet,
    TwinklenetConfig,
)
from repro.net.addr import IPv6Prefix
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    IcmpType,
    TcpFlags,
    icmp_echo_request,
    tcp_segment,
    udp_datagram,
)


@dataclass(frozen=True)
class Table2Result:
    """The 27 honeyprefix configurations."""

    configs: list[HoneyprefixConfig]

    @property
    def count(self) -> int:
        return len(self.configs)

    def by_name(self, name: str) -> HoneyprefixConfig:
        for config in self.configs:
            if config.name == name:
                return config
        raise KeyError(name)

    def render(self) -> str:
        lines = ["Table 2 — honeyprefix configurations "
                 f"({self.count} prefixes)"]
        lines.append(f"  {'name':16s} {'len':>4s} {'alias':>5s} "
                     f"{'icmp':>9s} {'domains':>8s} {'features'}")
        for c in self.configs:
            lines.append(
                f"  {c.name:16s} /{c.announce_length:<3d} "
                f"{'yes' if c.aliased else 'no':>5s} "
                f"{c.icmp_mode.value:>9s} "
                f"{','.join(c.domains) or '-':>8s} "
                f"{sorted(f.value for f in c.planned_features)}"
            )
        return "\n".join(lines)


def table2() -> Table2Result:
    """Table 2: the canonical honeyprefix configuration set."""
    return Table2Result(configs=standard_configs())


@dataclass(frozen=True)
class Table5Result:
    """T-Pot container/port matrices."""

    tpot1_ports: dict[str, tuple[tuple[int, ...], tuple[int, ...]]]
    tpot2_ports: dict[str, tuple[tuple[int, ...], tuple[int, ...]]]

    def render(self) -> str:
        lines = ["Table 5 — T-Pot containers and ports"]
        names = sorted(set(self.tpot1_ports) | set(self.tpot2_ports))
        for name in names:
            one = "x" if name in self.tpot1_ports else " "
            two = "x" if name in self.tpot2_ports else " "
            ports = self.tpot1_ports.get(name) or self.tpot2_ports.get(name)
            lines.append(
                f"  {name:16s} TPot1[{one}] TPot2[{two}] "
                f"tcp={list(ports[0])} udp={list(ports[1])}"
            )
        return "\n".join(lines)


def table5() -> Table5Result:
    """Table 5: the deployed container port surfaces."""
    return Table5Result(
        tpot1_ports={
            c.name: (c.tcp_ports, c.udp_ports) for c in TPOT1_CONTAINERS
        },
        tpot2_ports={
            c.name: (c.tcp_ports, c.udp_ports) for c in TPOT2_CONTAINERS
        },
    )


@dataclass(frozen=True)
class Table7Result:
    """Twinklenet request->response behavior, observed by exercising it."""

    interactions: dict[str, str]

    def render(self) -> str:
        lines = ["Table 7 — Twinklenet protocol interactions (observed)"]
        for request, response in self.interactions.items():
            lines.append(f"  {request:34s} -> {response}")
        return "\n".join(lines)


def table7() -> Table7Result:
    """Table 7: drive a Twinklenet instance through every interaction."""
    prefix = IPv6Prefix.parse("2001:db8:77::/48")
    config = HoneyprefixConfig(
        name="probe", icmp_mode=IcmpMode.ADDRESSES,
        tcp_services=(("web", (80,)),), udp_ports=(53, 123),
    )
    hp = deploy_addresses(config, prefix, rng=7)
    hp.record(0.0, Feature.BGP)
    responses = []
    twinklenet = Twinklenet(TwinklenetConfig([hp]), transmit=responses.append)
    src = IPv6Prefix.parse("2001:db8:aaaa::/48").network | 9

    interactions: dict[str, str] = {}

    def observe(label: str, pkt) -> None:
        before = len(responses)
        twinklenet.handle(pkt)
        if len(responses) == before:
            interactions[label] = "(silence)"
            return
        out = responses[-1]
        if out.proto == ICMPV6 and out.sport == int(IcmpType.ECHO_REPLY):
            interactions[label] = "ICMPv6 Echo reply"
        elif out.proto == TCP:
            flags = TcpFlags(out.flags)
            interactions[label] = f"TCP {flags!s}".replace("TcpFlags.", "")
        elif out.proto == UDP and out.payload.endswith(NTP_KOD_PAYLOAD):
            interactions[label] = "NTP kiss-of-death (DENY)"
        elif out.proto == UDP and DNS_SERVFAIL_PAYLOAD in out.payload:
            interactions[label] = "DNS SERVFAIL"
        else:
            interactions[label] = f"{out.proto_name} response"

    icmp_addr = hp.prefix.network | 1
    tcp_addr = next(a for a, b in hp.responsive.items() if (TCP, 80) in b)
    udp_addr = next(a for a, b in hp.responsive.items() if (UDP, 53) in b)

    observe("ICMPv6 echo request",
            icmp_echo_request(1.0, src, icmp_addr))
    observe("TCP SYN to open port",
            tcp_segment(2.0, src, tcp_addr, 5000, 80, TcpFlags.SYN))
    observe("TCP data on open connection",
            tcp_segment(3.0, src, tcp_addr, 5000, 80,
                        TcpFlags.PSH | TcpFlags.ACK, seq=1,
                        payload=b"GET / HTTP/1.1\r\n"))
    observe("other TCP packet to open port",
            tcp_segment(4.0, src, tcp_addr, 6000, 80, TcpFlags.ACK))
    observe("any DNS query (UDP/53)",
            udp_datagram(5.0, src, udp_addr, 7000, 53, b"\x12\x34query"))
    observe("any NTP client packet (UDP/123)",
            udp_datagram(6.0, src, udp_addr, 8000, 123, b"\x23" + b"\x00" * 47))
    observe("TCP SYN to closed port",
            tcp_segment(7.0, src, tcp_addr, 9000, 8080, TcpFlags.SYN))
    observe("ICMPv6 echo to dark address",
            icmp_echo_request(8.0, src, hp.prefix.network | 0xDEAD))
    return Table7Result(interactions=interactions)
