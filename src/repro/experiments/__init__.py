"""Experiment drivers: one callable per table/figure in the paper.

Each function takes either a :class:`~repro.sim.runner.ScenarioResult`
(NT-A-centric experiments) or builds its own CDN vantage (the §1/App. C
longitudinal figures), and returns a structured result object with a
``render()`` method that prints the same rows/series the paper reports.

``EXPERIMENTS`` maps experiment ids ("fig1", "table4", ...) to their
drivers, so harnesses can iterate the full reproduction.
"""

from repro.experiments.cdn_growth import fig1, fig2, fig13, table6
from repro.experiments.telescopes import table1, s51_overlap
from repro.experiments.sources import table3, fig5, fig6
from repro.experiments.effects import table4, fig7, fig8, fig10
from repro.experiments.scope import fig9
from repro.experiments.tactics import fig11
from repro.experiments.hilbert_map import fig14
from repro.experiments.configs import table2, table5, table7
from repro.experiments.groundtruth import groundtruth
from repro.experiments.retraction import s531_retraction
from repro.experiments.timeout_sensitivity import footnote1_timeout_sensitivity

#: experiment id -> (driver, needs_scenario_result)
EXPERIMENTS = {
    "fig1": (fig1, False),
    "fig2": (fig2, False),
    "fig13": (fig13, False),
    "table6": (table6, False),
    "table1": (table1, True),
    "s51": (s51_overlap, True),
    "table3": (table3, True),
    "fig5": (fig5, True),
    "fig6": (fig6, True),
    "table4": (table4, True),
    "fig7": (fig7, True),
    "fig8": (fig8, True),
    "fig9": (fig9, True),
    "fig10": (fig10, True),
    "fig11": (fig11, True),
    "fig14": (fig14, True),
    "table2": (table2, False),
    "table5": (table5, False),
    "table7": (table7, False),
    "s531": (s531_retraction, True),
    "footnote1": (footnote1_timeout_sensitivity, True),
    "groundtruth": (groundtruth, True),
}

__all__ = [
    "EXPERIMENTS",
    "fig1", "fig2", "fig13", "table6",
    "table1", "s51_overlap",
    "table3", "fig5", "fig6",
    "table4", "fig7", "fig8", "fig9", "fig10", "fig11", "fig14",
    "table2", "table5", "table7",
    "s531_retraction",
    "footnote1_timeout_sensitivity",
    "groundtruth",
]
