"""Ground-truth detection scoring experiment.

Not a figure from the paper: the simulator's bonus experiment.  Because the
simulation knows which agent emitted every captured packet, the paper's
scan-event detector can be *graded* — precision, recall, fragmentation, and
merge rate at each of the paper's three source-aggregation levels (/128,
/64, /48).  The scores quantify the paper's motivation for aggregating
sources: per-address detection fragments rotating scanners (low recall,
high fragmentation), while coarse /48 aggregation merges co-located ones
(rising merge rate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.groundtruth import (
    DetectionScore,
    GroundTruthRecords,
    score_all_levels,
)
from repro.sim.runner import ScenarioResult

#: The paper's three source-aggregation levels.
LEVELS: tuple[int, ...] = (128, 64, 48)


@dataclass(frozen=True)
class GroundTruthResult:
    """Detection scores per telescope per aggregation level."""

    #: telescope name -> {source_length -> score}
    scores: dict[str, dict[int, DetectionScore]]
    #: telescope name -> truth rows available
    truth_rows: dict[str, int]

    def render(self) -> str:
        lines = [
            "Ground truth — detection scored against the simulated "
            "scanner population",
        ]
        for name in sorted(self.scores):
            lines.append(
                f" {name} ({self.truth_rows.get(name, 0):,} truth packets)"
            )
            for length in sorted(self.scores[name], reverse=True):
                lines.append(self.scores[name][length].render_row())
        return "\n".join(lines)


def groundtruth(
    result: ScenarioResult,
    levels: tuple[int, ...] = LEVELS,
) -> GroundTruthResult:
    """Score scan detection against each telescope's provenance sidecar."""
    scores: dict[str, dict[int, DetectionScore]] = {}
    truth_rows: dict[str, int] = {}
    telescopes = result.telescopes()
    for name, records in sorted(telescopes.items()):
        truth = result.truth.get(name)
        if truth is None:
            truth = GroundTruthRecords.empty()
        truth_rows[name] = len(truth)
        scores[name] = score_all_levels(records, truth, levels=levels)
    return GroundTruthResult(scores=scores, truth_rows=truth_rows)
