"""Run-provenance journal: append-only JSONL event records.

Every consequential event of a scenario run — the run manifest, per-day
progress, scanner session lifecycle, honeyprefix deployment/retraction,
detection summaries — is appended as one JSON line, so two runs are
diffable from their artifacts alone and a crashed run is auditable up to
its last complete line.

Records are schema-versioned: each line carries ``{"v": <version>,
"type": <record type>, ...}`` and :data:`RECORD_SCHEMAS` lists the fields a
record of each type must carry.  The reader validates both, and tolerates
exactly one torn record at the end of the file (the realistic crash-mid-
write failure mode); a torn or unknown record anywhere else is an error.

The process-wide active journal mirrors the metrics-registry design: it
defaults to :data:`NULL_JOURNAL`, whose ``emit`` is a no-op, so journal
calls in the simulation loop are free until a run opens one.  All
timestamps in journal records are *simulation* seconds — never wall clock
— so the journal of a seeded run is bit-reproducible.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import asdict, dataclass, is_dataclass
from typing import IO, Iterator

#: Bump when a record type changes incompatibly; readers reject other
#: versions outright (no silent best-effort parsing of future formats).
JOURNAL_SCHEMA_VERSION = 1

#: record type -> field names every record of that type must carry
#: (records may carry extra fields; missing required fields are an error).
RECORD_SCHEMAS: dict[str, frozenset] = {
    # one per run, first line: everything needed to reproduce the run
    "run_manifest": frozenset(
        {"config_hash", "seed", "repro_version", "config"}),
    # one per simulated day
    "day": frozenset({"day", "emitted"}),
    # scanner session lifecycle
    "session_start": frozenset({"agent", "asn", "trigger", "at"}),
    "session_cancel": frozenset({"agent", "asn", "prefix", "at"}),
    "session_drop": frozenset({"agent", "asn", "at"}),
    # honeyprefix lifecycle
    "deploy": frozenset({"name", "prefix", "at"}),
    "retract": frozenset({"name", "prefix", "at"}),
    # analysis summaries
    "detection": frozenset(
        {"source_length", "min_targets", "timeout", "records_in",
         "events_out"}),
    # streaming analysis: one per telescope per day, emitted right after
    # the day record — the incremental detector's progress ledger (how
    # many records it consumed, events it closed, sessions still open).
    "stream_detection": frozenset(
        {"day", "telescope", "records_in", "events_closed",
         "open_sessions"}),
    # scenario-cache provenance: a run served from (or written to) the
    # on-disk result cache records where its bytes came from / went to.
    "cache_hit": frozenset({"config_hash", "path"}),
    "cache_store": frozenset({"config_hash", "path"}),
    # engine-state checkpoint written at a day boundary; carries only
    # deterministic fields (never wall clock or absolute paths) so a
    # resumed run's journal stays byte-identical to an uninterrupted one.
    "checkpoint": frozenset({"day", "config_hash"}),
    # one per run, last line
    "run_end": frozenset({"days", "packets"}),
    # longitudinal observatory (repro.observatory): one validated record
    # per simulated day, written to data/observer-NNNNN.json and mirrored
    # into data/observations.jsonl for live tailing.
    "observer": frozenset({"day", "telescopes", "tactics", "honeyprefixes"}),
    # closing line of observations.jsonl — the SSE stream's terminator.
    "observatory_end": frozenset({"days", "records"}),
    # append-only long-horizon index entry (data/index.jsonl): pins each
    # emitted day file by content hash.
    "observer_index": frozenset({"day", "file", "sha256"}),
}


class JournalError(ValueError):
    """A malformed, unknown, or wrong-version journal record."""


def config_hash(config) -> str:
    """Stable short hash of a scenario config (dataclass or plain dict)."""
    payload = asdict(config) if is_dataclass(config) else dict(config)
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class RunManifest:
    """The run's identity, reconstructed from its ``run_manifest`` record.

    Two runs with equal manifests started from the same configuration,
    seed, and package version — their journals and results should be
    byte-diffable.
    """

    schema_version: int
    config_hash: str
    seed: int
    repro_version: str
    config: dict

    @classmethod
    def from_config(cls, config) -> "RunManifest":
        from repro import __version__

        payload = asdict(config) if is_dataclass(config) else dict(config)
        return cls(
            schema_version=JOURNAL_SCHEMA_VERSION,
            config_hash=config_hash(config),
            seed=int(payload.get("seed", 0)),
            repro_version=__version__,
            config=payload,
        )

    @classmethod
    def from_record(cls, record: dict) -> "RunManifest":
        return cls(
            schema_version=record["v"],
            config_hash=record["config_hash"],
            seed=record["seed"],
            repro_version=record["repro_version"],
            config=record["config"],
        )

    def to_record_fields(self) -> dict:
        return {
            "config_hash": self.config_hash,
            "seed": self.seed,
            "repro_version": self.repro_version,
            "config": self.config,
        }


class Journal:
    """Append-only JSONL journal writer."""

    enabled = True

    def __init__(self, path_or_stream: str | IO[str]):
        if hasattr(path_or_stream, "write"):
            self._stream: IO[str] = path_or_stream  # type: ignore[assignment]
            self._owns_stream = False
        else:
            # Line-buffered: every record reaches the file as soon as it is
            # emitted, so another process (the scenario service's progress
            # stream) can tail a journal that is still being written.
            self._stream = open(path_or_stream, "w", buffering=1)
            self._owns_stream = True
        self.records_written = 0

    def emit(self, record_type: str, **fields) -> None:
        """Append one record; validates the type and required fields."""
        validate_record(dict(fields, v=JOURNAL_SCHEMA_VERSION,
                             type=record_type))
        line = json.dumps(
            {"v": JOURNAL_SCHEMA_VERSION, "type": record_type, **fields},
            sort_keys=True, default=repr,
        )
        self._stream.write(line + "\n")
        self.records_written += 1

    def flush(self) -> None:
        """Flush any buffered lines to the underlying stream.

        The shard executor calls this before forking workers so a child
        process can never re-flush (and thereby duplicate) bytes the
        parent had already written.
        """
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        if self._owns_stream and self._stream is not None:
            self._stream.close()
        self._stream = None  # type: ignore[assignment]


class NullJournal(Journal):
    """Disabled journal: ``emit`` is free."""

    enabled = False

    def __init__(self):
        self._stream = None  # type: ignore[assignment]
        self._owns_stream = False
        self.records_written = 0

    def emit(self, record_type: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass


class RecordingJournal(Journal):
    """A journal that buffers every record, optionally forwarding it.

    Two executor features build on this:

    * **checkpointing** — the runner wraps the active journal in a
      recorder for the duration of a run; a checkpoint then carries every
      record emitted so far, and a resumed run replays them through the
      fresh journal, keeping the resumed journal byte-identical to an
      uninterrupted one;
    * **sharded merging** — each shard worker records the journal lines
      its agents would have written, tagged with :attr:`context_fn`'s
      value at emit time (the shard driver uses the engine's processed-
      event count, a tag that is consistent across replicated workers),
      and the parent re-emits them in the serial order.

    Records are stored as ``(tag, record_type, fields)`` tuples; ``tag``
    is ``None`` unless :attr:`context_fn` is set.
    """

    enabled = True

    def __init__(self, inner: Journal | None = None, context_fn=None):
        self.inner = inner
        #: Zero-argument callable evaluated at emit time to tag records.
        self.context_fn = context_fn
        self.records: list[tuple] = []
        self.records_written = 0

    def emit(self, record_type: str, **fields) -> None:
        validate_record(dict(fields, v=JOURNAL_SCHEMA_VERSION,
                             type=record_type))
        tag = self.context_fn() if self.context_fn is not None else None
        self.records.append((tag, record_type, dict(fields)))
        self.records_written += 1
        if self.inner is not None:
            self.inner.emit(record_type, **fields)

    def plain_records(self) -> list[tuple]:
        """The buffered records as ``(type, fields)`` pairs (tags dropped),
        the form checkpoints store and :func:`replay` consumes."""
        return [(rtype, dict(fields)) for _, rtype, fields in self.records]

    def replay(self, records) -> None:
        """Re-emit previously recorded ``(type, fields)`` pairs through
        this journal (they are forwarded *and* re-buffered, so a later
        checkpoint still carries the full history)."""
        for record_type, fields in records:
            self.emit(record_type, **fields)

    def clear(self) -> None:
        del self.records[:]

    def flush(self) -> None:
        if self.inner is not None:
            self.inner.flush()

    def close(self) -> None:
        pass


#: The shared disabled journal; also the default active journal.
NULL_JOURNAL = NullJournal()

_active: Journal = NULL_JOURNAL


def get_journal() -> Journal:
    """The active journal (the null journal unless a run opened one)."""
    return _active


def set_journal(journal: Journal | None) -> Journal:
    """Install ``journal`` (None restores the null journal); returns the
    previously active one so callers can restore it."""
    global _active
    previous = _active
    _active = journal if journal is not None else NULL_JOURNAL
    return previous


@contextmanager
def use_journal(journal: Journal | None) -> Iterator[Journal]:
    """Scoped :func:`set_journal` for tests and embedded callers."""
    previous = set_journal(journal)
    try:
        yield get_journal()
    finally:
        set_journal(previous)


# -- reading ---------------------------------------------------------------

def validate_record(record: dict) -> dict:
    """Validate one parsed record against the schema; returns it."""
    if not isinstance(record, dict):
        raise JournalError(f"journal record is not an object: {record!r}")
    version = record.get("v")
    if version != JOURNAL_SCHEMA_VERSION:
        raise JournalError(
            f"unsupported journal schema version {version!r} "
            f"(this reader understands {JOURNAL_SCHEMA_VERSION})"
        )
    record_type = record.get("type")
    required = RECORD_SCHEMAS.get(record_type)
    if required is None:
        raise JournalError(f"unknown journal record type {record_type!r}")
    missing = required - record.keys()
    if missing:
        raise JournalError(
            f"{record_type} record missing fields {sorted(missing)}"
        )
    return record


def read_journal(path) -> list[dict]:
    """Read and validate a journal file.

    A JSON parse failure on the *final* line is tolerated (a process that
    died mid-write tears at most its last record); anywhere else — or any
    schema violation — raises :class:`JournalError`.
    """
    with open(path) as stream:
        lines = stream.read().splitlines()
    records: list[dict] = []
    last = len(lines) - 1
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError as error:
            if i == last:
                break  # torn final record: crash-mid-write, keep the rest
            raise JournalError(
                f"corrupt journal record on line {i + 1}: {error}"
            ) from error
        records.append(validate_record(parsed))
    return records


def load_manifest(path) -> RunManifest:
    """Reconstruct the :class:`RunManifest` from a journal file."""
    for record in read_journal(path):
        if record["type"] == "run_manifest":
            return RunManifest.from_record(record)
    raise JournalError(f"{path} contains no run_manifest record")


# -- tailing ---------------------------------------------------------------

class JournalTail:
    """Incremental reader of a journal another process is still writing.

    Each :meth:`poll` returns the records completed since the last poll.
    Only newline-terminated lines are parsed: the unterminated tail of the
    file — the torn final record of a writer killed mid-write — stays
    buffered until its newline arrives, and is simply never yielded if the
    writer is dead.  A *complete* line that fails to parse or validate is
    real corruption and raises :class:`JournalError` (mirroring
    :func:`read_journal`'s strictness away from the crash point).

    The tail reopens the file on every poll, so it follows a journal that
    a resumed run rewrote from scratch: if the file shrank (truncation for
    replay), the offset resets and records stream again from the top —
    the resumed journal replays its full history, so re-reading from zero
    is the byte-compatible continuation.
    """

    def __init__(self, path):
        self.path = path
        self.offset = 0
        self.records_read = 0

    def poll(self) -> list[dict]:
        """Validated records newly completed since the previous poll."""
        try:
            with open(self.path, "rb") as stream:
                stream.seek(0, 2)
                size = stream.tell()
                if size < self.offset:
                    # Truncated and rewritten (a resumed run replaying its
                    # history): restart from the top.
                    self.offset = 0
                    self.records_read = 0
                stream.seek(self.offset)
                payload = stream.read()
        except FileNotFoundError:
            return []
        complete, newline, _partial = payload.rpartition(b"\n")
        if not newline:
            return []
        self.offset += len(complete) + 1
        records = []
        for line in complete.split(b"\n"):
            if not line.strip():
                continue
            try:
                parsed = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise JournalError(
                    f"corrupt journal record in {self.path}: {error}"
                ) from error
            records.append(validate_record(parsed))
        self.records_read += len(records)
        return records


def tail_journal(path, *, follow: bool = False, poll_interval: float = 0.05,
                 timeout: float | None = None, stop=None,
                 end_types: tuple = ("run_end",)) -> Iterator[dict]:
    """Yield journal records as they land in ``path``.

    Without ``follow`` this yields what is currently complete and returns.
    With ``follow`` it keeps polling every ``poll_interval`` seconds until
    a record whose type is in ``end_types`` goes by (``run_end``, the
    run's closing line, by default — pass ``()`` when trailing records
    like ``cache_store`` may follow it), the optional ``stop()`` callable
    goes truthy (poll once more, then stop — so records written before
    the stop signal are never lost), or ``timeout`` seconds elapse.
    """
    import time as _time

    tail = JournalTail(path)
    if not follow:
        yield from tail.poll()
        return
    deadline = None if timeout is None else _time.monotonic() + timeout
    while True:
        stopping = stop() if stop is not None else False
        drained = True
        for record in tail.poll():
            drained = False
            yield record
            if record["type"] in end_types:
                return
        if stopping and drained:
            return
        if deadline is not None and _time.monotonic() >= deadline:
            return
        _time.sleep(poll_interval)
