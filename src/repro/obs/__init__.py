"""Lightweight observability for the telescope pipeline.

Three cooperating layers, each process-wide and disabled by default:

* **metrics** (:mod:`repro.obs.registry`) — counters, gauges, histograms,
  stage timings.  Components bind their metric objects at construction
  time, so enable metrics *before* building the scenario.
* **tracing** (:mod:`repro.obs.trace`) — nested spans with attributes,
  exportable as Chrome/Perfetto trace-event JSON plus a self-time table.
  Instrumented code fetches the tracer at call time, so a tracer can be
  installed at any point.
* **journal** (:mod:`repro.obs.journal`) — an append-only JSONL record of
  the run's consequential events (manifest, per-day progress, session and
  honeyprefix lifecycle, detection summaries), making two runs diffable
  from artifacts alone.

Until something calls the ``set_*`` installers (or the CLI's
``--metrics``/``--trace``/``--journal`` flags do), every layer is a shared
no-op null object and the instrumented hot paths cost one no-op method
call per event.
"""

from repro.obs.journal import (
    JOURNAL_SCHEMA_VERSION,
    Journal,
    JournalError,
    JournalTail,
    NULL_JOURNAL,
    NullJournal,
    RECORD_SCHEMAS,
    RecordingJournal,
    RunManifest,
    config_hash,
    get_journal,
    load_manifest,
    read_journal,
    set_journal,
    tail_journal,
    use_journal,
    validate_record,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    Timing,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.rss import PEAK_RSS_GAUGE, peak_rss_bytes, sample_peak_rss
from repro.obs.timer import NULL_TIMER, StageTimer
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JOURNAL_SCHEMA_VERSION",
    "Journal",
    "JournalError",
    "JournalTail",
    "MetricsRegistry",
    "NULL_JOURNAL",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TIMER",
    "NULL_TRACER",
    "NullJournal",
    "NullRegistry",
    "NullTracer",
    "PEAK_RSS_GAUGE",
    "RECORD_SCHEMAS",
    "RecordingJournal",
    "RunManifest",
    "Span",
    "StageTimer",
    "Timing",
    "Tracer",
    "config_hash",
    "get_journal",
    "get_registry",
    "get_tracer",
    "load_manifest",
    "peak_rss_bytes",
    "read_journal",
    "sample_peak_rss",
    "set_journal",
    "set_registry",
    "set_tracer",
    "tail_journal",
    "use_journal",
    "use_registry",
    "use_tracer",
    "validate_record",
]
