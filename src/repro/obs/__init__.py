"""Lightweight observability for the telescope pipeline.

The registry is process-wide and disabled by default: until something calls
:func:`set_registry` (or the CLI's ``--metrics`` flag does it), every
component holds no-op null metrics and the instrumented hot paths cost one
no-op method call per event.  Enable metrics *before* constructing the
scenario — components bind their counters at construction time.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    Timing,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.timer import NULL_TIMER, StageTimer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_TIMER",
    "StageTimer",
    "Timing",
    "get_registry",
    "set_registry",
    "use_registry",
]
