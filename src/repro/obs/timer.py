"""Stage timing: a context manager recording wall-clock seconds.

Kept in its own module (imported by ``registry``) so the registry module
can hand out timers without a circular import.
"""

from __future__ import annotations

from time import perf_counter


class StageTimer:
    """Times one ``with`` block into a :class:`~repro.obs.registry.Timing`.

    Registries return a fresh instance per :meth:`~MetricsRegistry.timer`
    call, so timers for the same stage name nest without clobbering each
    other's start times.
    """

    __slots__ = ("_timing", "_start")

    def __init__(self, timing):
        self._timing = timing
        self._start = 0.0

    @property
    def stage(self) -> str:
        return self._timing.name

    def __enter__(self) -> "StageTimer":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timing.observe(perf_counter() - self._start)


class _NullTimer:
    """No-op stage timer: the null registry's shared singleton."""

    __slots__ = ()
    stage = "null"

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_TIMER = _NullTimer()
