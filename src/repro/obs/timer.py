"""Stage timing: a context manager recording wall-clock seconds.

Kept in its own module (imported by ``registry``) so the registry module
can hand out timers without a circular import.
"""

from __future__ import annotations

from time import perf_counter


class StageTimer:
    """Times one ``with`` block into a :class:`~repro.obs.registry.Timing`.

    Registries return a fresh instance per :meth:`~MetricsRegistry.timer`
    call, so timers for the same stage name nest without clobbering each
    other's start times.  A timer entered while another timer of the *same*
    timing is live records nothing on exit: the enclosing span's elapsed
    time already covers the inner one, and observing both would attribute
    the inner wall clock twice to the same stage label.
    """

    __slots__ = ("_timing", "_start", "_nested")

    def __init__(self, timing):
        self._timing = timing
        self._start = 0.0
        self._nested = False

    @property
    def stage(self) -> str:
        return self._timing.name

    def __enter__(self) -> "StageTimer":
        self._nested = self._timing.active > 0
        self._timing.active += 1
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = perf_counter() - self._start
        self._timing.active -= 1
        if not self._nested:
            self._timing.observe(elapsed)


class _NullTimer:
    """No-op stage timer: the null registry's shared singleton."""

    __slots__ = ()
    stage = "null"

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_TIMER = _NullTimer()
