"""The metrics registry: counters, gauges, histograms, stage timings.

Single-threaded fast path: metrics are plain Python objects mutated without
locks (the simulator is single-threaded; a multi-threaded deployment would
shard registries per worker and merge snapshots).  ``snapshot()`` returns a
plain dict of JSON-serializable values; ``to_json``/``write_json`` export it.

The module also owns the *active* registry.  It defaults to
:data:`NULL_REGISTRY`, whose metrics are shared no-op singletons, so
instrumentation in hot paths costs one no-op method call when metrics are
off.  Components bind their metric objects at construction time via
:func:`get_registry`, so enable metrics before building the scenario.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.obs.timer import NULL_TIMER, StageTimer


class Counter:
    """A monotonically increasing count (floats allowed for volumes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def dec(self, n: int | float = 1) -> None:
        self.value -= n


#: Default histogram bucket edges: log decades covering microseconds to
#: kiloseconds — a sensible span for durations in seconds.
DEFAULT_EDGES: tuple[float, ...] = tuple(10.0 ** e for e in range(-6, 4))


class Histogram:
    """A fixed-bucket histogram with quantile estimation.

    Bucket ``i`` holds observations in ``(edges[i-1], edges[i]]``; bucket
    ``len(edges)`` is the overflow bucket.  Quantiles are estimated by
    linear interpolation inside the owning bucket (clamped to the observed
    min/max for the open-ended end buckets), so an estimate is never off by
    more than one bucket width from the empirical percentile.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, edges: Sequence[float] | None = None):
        self.name = name
        if edges is None:
            edges = DEFAULT_EDGES
        self.edges = tuple(float(e) for e in edges)
        if list(self.edges) != sorted(set(self.edges)):
            raise ValueError("bucket edges must be strictly increasing")
        if not self.edges:
            raise ValueError("a histogram needs at least one bucket edge")
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def _bucket_bounds(self, index: int) -> tuple[float, float]:
        lo = self.edges[index - 1] if index > 0 else min(self.min, self.edges[0])
        hi = self.edges[index] if index < len(self.edges) else self.max
        return lo, max(hi, lo)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (numpy's linear-interpolation rank)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q!r}")
        if self.count == 0:
            return float("nan")
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (self.count - 1)
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n > rank:
                lo, hi = self._bucket_bounds(i)
                frac = (rank - cumulative) / n
                estimate = lo + (hi - lo) * frac
                return min(max(estimate, self.min), self.max)
            cumulative += n
        return self.max

    def snapshot(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class Timing:
    """Accumulated wall-clock seconds of one named stage."""

    __slots__ = ("name", "count", "total", "min", "max", "active")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: Live same-name timers (maintained by :class:`StageTimer`): a
        #: nested span of the same stage must not add its elapsed time on
        #: top of the enclosing span's — the outer one already covers it.
        self.active = 0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, n: int | float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0

    def set(self, value: int | float) -> None:
        pass

    def inc(self, n: int | float = 1) -> None:
        pass

    def dec(self, n: int | float = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    edges: tuple[float, ...] = ()
    count = 0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return float("nan")

    def snapshot(self) -> dict:
        return {}


class _NullTiming:
    __slots__ = ("active",)
    name = "null"
    count = 0
    total = 0.0

    def __init__(self):
        self.active = 0

    def observe(self, seconds: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMING = _NullTiming()


class MetricsRegistry:
    """Process-wide named metrics with get-or-create semantics."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timings: dict[str, Timing] = {}

    # -- get-or-create ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  edges: Sequence[float] | None = None) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, edges)
        elif edges is not None and tuple(float(e) for e in edges) != metric.edges:
            raise ValueError(f"histogram {name!r} already exists with "
                             f"different bucket edges")
        return metric

    def timing(self, name: str) -> Timing:
        metric = self._timings.get(name)
        if metric is None:
            metric = self._timings[name] = Timing(name)
        return metric

    def timer(self, name: str) -> StageTimer:
        """A fresh context manager recording into the named timing (fresh
        per call, so same-name timers nest safely)."""
        return StageTimer(self.timing(name))

    # -- merging ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry | dict") -> "MetricsRegistry":
        """Fold another registry (or a :meth:`snapshot` dict) into this one.

        The worker-fan-out contract: each worker process records into its
        own registry and ships ``snapshot()`` back; the parent merges them.
        Merging is associative and, for disjoint or purely additive
        metrics, matches a single-process run of the combined workload:

        * **counters** — summed;
        * **timings** — counts and totals summed, min/max folded;
        * **histograms** — per-bucket counts summed (bucket edges must
          match — a mismatch raises, the same rule :meth:`histogram`
          enforces within one process);
        * **gauges** — last write wins (the merged-in snapshot overrides),
          since a gauge is a point-in-time reading, not an accumulation.

        Returns ``self`` so merges chain.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, stats in snap.get("timings", {}).items():
            timing = self.timing(name)
            if stats.get("count"):
                timing.count += stats["count"]
                timing.total += stats["total"]
                timing.min = min(timing.min, stats["min"])
                timing.max = max(timing.max, stats["max"])
        for name, stats in snap.get("histograms", {}).items():
            if not stats:
                continue
            # histogram() raises on a bucket-edge mismatch, the same rule
            # it enforces for same-name histograms within one process.
            histogram = self.histogram(name, stats["edges"])
            for i, count in enumerate(stats["counts"]):
                histogram.counts[i] += count
            histogram.count += stats["count"]
            histogram.sum += stats["sum"]
            if stats["count"]:
                histogram.min = min(histogram.min, stats["min"])
                histogram.max = max(histogram.max, stats["max"])
        return self

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict snapshot of every metric, sorted by name."""
        return {
            "counters": {n: self._counters[n].value
                         for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value
                       for n in sorted(self._gauges)},
            "timings": {n: self._timings[n].snapshot()
                        for n in sorted(self._timings)},
            "histograms": {n: self._histograms[n].snapshot()
                           for n in sorted(self._histograms)},
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def write_json(self, path) -> None:
        with open(path, "w") as stream:
            stream.write(self.to_json())
            stream.write("\n")

    def render_table(self) -> str:
        """Sorted human-readable snapshot table."""
        snap = self.snapshot()
        width = max((len(n) for kind in ("counters", "gauges", "timings")
                     for n in snap[kind]), default=20)
        lines = ["== metrics snapshot =="]
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<{width}}  {value:>14,}")
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:<{width}}  {value:>14,}")
        for name, stats in snap["timings"].items():
            lines.append(
                f"  {name:<{width}}  {stats['total']:>12.3f}s  "
                f"(n={stats['count']}, mean {stats['mean'] * 1e3:.2f} ms)"
            )
        for name, stats in snap["histograms"].items():
            lines.append(
                f"  {name:<{width}}  n={stats['count']} sum={stats['sum']:.4g}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._timings.clear()


class NullRegistry(MetricsRegistry):
    """Disabled registry: every accessor returns a shared no-op metric."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name: str,
                  edges: Sequence[float] | None = None) -> Histogram:
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def timing(self, name: str) -> Timing:
        return _NULL_TIMING  # type: ignore[return-value]

    def timer(self, name: str) -> StageTimer:
        return NULL_TIMER  # type: ignore[return-value]

    def merge(self, other: "MetricsRegistry | dict") -> "MetricsRegistry":
        return self


#: The shared disabled registry; also the default active registry.
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The active registry (the null registry unless metrics are enabled)."""
    return _active


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` (None restores the null registry); returns the
    previously active one so callers can restore it."""
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_registry` for tests and embedded callers."""
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)
