"""Structured tracing: nested spans, Chrome trace export, self-time.

A :class:`Span` is a context manager timing one stage of work; spans nest
(the tracer keeps an open-span stack, so a span entered while another is
live becomes its child), carry arbitrary JSON-serializable attributes, and
record wall-clock start/end via ``perf_counter``.

The process-wide active tracer mirrors the metrics registry's design
(:mod:`repro.obs.registry`): it defaults to :data:`NULL_TRACER`, whose
``span()`` returns a shared no-op singleton, so instrumentation in hot
paths costs one no-op method call while tracing is off.  Unlike metrics,
instrumented code fetches the tracer at call time via :func:`get_tracer`,
so enabling tracing needs no re-construction of the instrumented objects.

Finished spans can be exported as Chrome trace-event JSON (loadable in
``chrome://tracing`` and Perfetto: complete events, microsecond
timestamps) and summarized as a per-stage *self-time* table — each stage's
wall clock minus the wall clock of its child spans, which is where "where
did the time go" questions get their answers.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterator


@dataclass
class Span:
    """One traced stage: a re-entrant-safe, single-use context manager."""

    name: str
    attrs: dict = field(default_factory=dict)
    start: float = 0.0
    end: float = 0.0
    span_id: int = -1
    parent_id: int | None = None
    #: Wall clock spent inside *direct* child spans (filled as they close).
    child_time: float = 0.0
    _tracer: "Tracer | None" = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration not accounted for by direct child spans."""
        return self.duration - self.child_time

    def set(self, **attrs) -> "Span":
        """Attach attributes to a live span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self.start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = self._tracer._clock()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self)


class _NullSpan:
    """No-op span: the null tracer's shared singleton."""

    __slots__ = ()
    name = "null"
    attrs: dict = {}

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; hands out fresh ones via :meth:`span`.

    Single-threaded, like the rest of the pipeline: the open-span stack is
    a plain list.  ``clock`` is injectable for deterministic tests.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = perf_counter):
        self._clock = clock
        self._stack: list[Span] = []
        self._next_id = 0
        #: Finished spans, in completion order (children before parents).
        self.spans: list[Span] = []

    # -- span lifecycle ---------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """A fresh span, parented to the innermost live span on entry."""
        return Span(name=name, attrs=attrs, _tracer=self)

    def _open(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        # Tolerate mis-nested exits (a span closed out of order drops the
        # stack back to its own frame) so a stray exit can't poison every
        # later parent assignment.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self._stack:
            self._stack[-1].child_time += span.duration
        self.spans.append(span)

    # -- cross-process shipping -------------------------------------------

    def export_spans(self) -> list[dict]:
        """Finished spans as plain dicts (picklable, tracer-free).

        The worker-fan-out exchange format: a worker process traces with
        its own :class:`Tracer`, exports, and ships the list back for the
        parent to :meth:`adopt`.
        """
        return [
            {
                "name": span.name, "attrs": dict(span.attrs),
                "start": span.start, "end": span.end,
                "span_id": span.span_id, "parent_id": span.parent_id,
                "child_time": span.child_time,
            }
            for span in self.spans
        ]

    def adopt(self, records: list[dict],
              parent: "Span | None" = None) -> None:
        """Graft exported worker spans into this tracer's span list.

        Span ids are re-based past this tracer's counter so they can never
        collide with local ids, parent links are rewritten accordingly,
        and the worker's *root* spans are re-parented under ``parent``
        (typically the executor's live ``executor`` span).  Each adopted
        root's duration is charged to ``parent`` as child time; with
        workers running concurrently that summed child time can exceed the
        parent's wall clock (its self time then reflects orchestration
        cost minus the overlap), which is the standard reading of a fan-in
        trace.

        ``perf_counter`` on the platforms we run (CLOCK_MONOTONIC) shares
        its origin across processes, so adopted timestamps line up with
        local ones in the Chrome trace.
        """
        if not records:
            return
        offset = self._next_id
        parent_id = parent.span_id if parent is not None else None
        for record in records:
            span = Span(
                name=record["name"], attrs=dict(record["attrs"]),
                start=record["start"], end=record["end"],
                span_id=record["span_id"] + offset,
                parent_id=(record["parent_id"] + offset
                           if record["parent_id"] is not None else parent_id),
                child_time=record["child_time"],
            )
            if record["parent_id"] is None and parent is not None:
                parent.child_time += span.duration
            self.spans.append(span)
            self._next_id = max(self._next_id, span.span_id + 1)

    # -- aggregation ------------------------------------------------------

    def total_time(self) -> float:
        """Wall clock covered by root spans (spans with no parent)."""
        return sum(s.duration for s in self.spans if s.parent_id is None)

    def by_name(self) -> dict[str, dict]:
        """Per-stage aggregate: count, total, and self wall-clock seconds."""
        stages: dict[str, dict] = {}
        for span in self.spans:
            stats = stages.get(span.name)
            if stats is None:
                stats = stages[span.name] = {
                    "count": 0, "total": 0.0, "self": 0.0,
                }
            stats["count"] += 1
            stats["total"] += span.duration
            stats["self"] += span.self_time
        return stages

    def render_self_time(self) -> str:
        """Self-time-per-stage table, heaviest stages first."""
        stages = self.by_name()
        if not stages:
            return "== trace: no spans recorded =="
        total_self = sum(s["self"] for s in stages.values()) or 1.0
        width = max(len(n) for n in stages)
        lines = ["== trace self-time by stage =="]
        for name, stats in sorted(stages.items(),
                                  key=lambda kv: -kv[1]["self"]):
            lines.append(
                f"  {name:<{width}}  self {stats['self']:>9.4f}s "
                f"({stats['self'] / total_self:>5.1%})  "
                f"total {stats['total']:>9.4f}s  n={stats['count']}"
            )
        return "\n".join(lines)

    # -- export -----------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The spans as Chrome trace-event JSON (complete "X" events).

        Loadable in ``chrome://tracing`` and Perfetto; timestamps are in
        microseconds since the tracer's first span.
        """
        origin = min((s.start for s in self.spans), default=0.0)
        events = [
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": (span.start - origin) * 1e6,
                "dur": span.duration * 1e6,
                "args": dict(span.attrs, span_id=span.span_id,
                             parent_id=span.parent_id),
            }
            for span in sorted(self.spans, key=lambda s: s.start)
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        with open(path, "w") as stream:
            json.dump(self.chrome_trace(), stream)
            stream.write("\n")


class NullTracer(Tracer):
    """Disabled tracer: ``span()`` returns the shared no-op singleton."""

    enabled = False

    def __init__(self):
        super().__init__()

    def span(self, name: str, **attrs) -> Span:
        return NULL_SPAN  # type: ignore[return-value]

    def adopt(self, records: list[dict],
              parent: "Span | None" = None) -> None:
        pass


#: The shared disabled tracer; also the default active tracer.
NULL_TRACER = NullTracer()

_active: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The active tracer (the null tracer unless tracing is enabled)."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (None restores the null tracer); returns the
    previously active one so callers can restore it."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None) -> Iterator[Tracer]:
    """Scoped :func:`set_tracer` for tests and embedded callers."""
    previous = set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)
