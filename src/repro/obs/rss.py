"""Process peak-RSS measurement: memory claims measured, not estimated.

``ru_maxrss`` is the kernel's high-water mark for the process's resident
set — it only ever grows, so sampling it at stage boundaries shows which
stage first pushed the process to its peak.  Linux reports it in KiB,
macOS in bytes; :func:`peak_rss_bytes` normalizes to bytes.
"""

from __future__ import annotations

import sys

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

#: Gauge name the peak-RSS samples land under.
PEAK_RSS_GAUGE = "process.peak_rss_bytes"


def peak_rss_bytes() -> int:
    """The process's peak resident set size in bytes (0 if unavailable)."""
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def sample_peak_rss(registry=None, stage: str | None = None) -> int:
    """Record the current peak RSS into ``registry`` (default: the active
    one) under :data:`PEAK_RSS_GAUGE`; with ``stage``, also under
    ``process.peak_rss_bytes.<stage>`` so per-stage high-water marks
    survive in one snapshot.  Returns the sampled byte count."""
    from repro.obs.registry import get_registry

    if registry is None:
        registry = get_registry()
    peak = peak_rss_bytes()
    registry.gauge(PEAK_RSS_GAUGE).set(peak)
    if stage:
        registry.gauge(f"{PEAK_RSS_GAUGE}.{stage}").set(peak)
    return peak
