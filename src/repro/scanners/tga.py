"""Pattern-mining target-generation algorithm (a 6Gen/6Tree-lite).

Exploratory scanners (the paper's R&E heavyweights — CERNET, Tsinghua —
probed orders of magnitude more *unique* destinations than anyone else)
run TGAs: mine structural patterns from seed addresses, then generate
candidate addresses that vary the high-entropy positions while preserving
the low-entropy ones.

``PatternTga`` implements the classic nibble-pattern approach: group seeds
by covering prefix, compute per-nibble value sets, and generate candidates
by sampling from observed values (low-diversity nibbles) or uniformly
(high-diversity nibbles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import DAY, make_rng
from repro.net.addr import IPv6Prefix
from repro.scanners.strategies import (
    ProbeBatch,
    ProbeTarget,
    ProtocolProfile,
    Strategy,
    TargetSampler,
)

#: A nibble with more than this many observed values is "high entropy" and
#: gets sampled uniformly.
DIVERSITY_THRESHOLD = 8


@dataclass(frozen=True)
class NibblePattern:
    """Mined pattern: per-nibble observed value tuples for one prefix."""

    prefix: IPv6Prefix
    #: 32 tuples (one per nibble, most-significant first); nibbles covered
    #: by the prefix itself are fixed.
    values: tuple[tuple[int, ...], ...]

    def generate(self, rng: np.random.Generator, n: int) -> list[int]:
        """Generate ``n`` candidate addresses matching the pattern."""
        out = []
        fixed_nibbles = self.prefix.length // 4
        for _ in range(n):
            addr = 0
            for pos in range(32):
                if pos < fixed_nibbles:
                    nibble = (self.prefix.network >> (124 - 4 * pos)) & 0xF
                else:
                    observed = self.values[pos]
                    if len(observed) > DIVERSITY_THRESHOLD or not observed:
                        nibble = int(rng.integers(16))
                    else:
                        nibble = observed[int(rng.integers(len(observed)))]
                addr = (addr << 4) | nibble
            out.append(addr)
        return out

    def generate_columns(
        self, rng: np.random.Generator, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar twin of :meth:`generate`: ``(hi, lo)`` uint64 halves.

        One vectorized draw per nibble position instead of one scalar draw
        per nibble per address; the per-position decision (fixed / uniform /
        observed-set) is identical to the scalar loop.
        """
        hi = np.zeros(n, dtype=np.uint64)
        lo = np.zeros(n, dtype=np.uint64)
        fixed_nibbles = self.prefix.length // 4
        four = np.uint64(4)
        for pos in range(32):
            half = hi if pos < 16 else lo
            half <<= four
            if pos < fixed_nibbles:
                half |= np.uint64(
                    (self.prefix.network >> (124 - 4 * pos)) & 0xF
                )
                continue
            observed = self.values[pos]
            if len(observed) > DIVERSITY_THRESHOLD or not observed:
                half |= rng.integers(16, size=n, dtype=np.uint64)
            else:
                choices = np.array(observed, dtype=np.uint64)
                half |= choices[rng.integers(len(observed), size=n)]
        return hi, lo


def mine_patterns(
    seeds: list[int], group_length: int = 48
) -> list[NibblePattern]:
    """Mine per-prefix nibble patterns from seed addresses."""
    if group_length % 4 != 0:
        raise ValueError("group_length must be nibble-aligned")
    groups: dict[int, list[int]] = {}
    shift = 128 - group_length
    for seed in seeds:
        groups.setdefault((seed >> shift) << shift, []).append(seed)
    patterns = []
    for network, members in groups.items():
        values: list[set[int]] = [set() for _ in range(32)]
        for addr in members:
            for pos in range(32):
                values[pos].add((addr >> (124 - 4 * pos)) & 0xF)
        patterns.append(NibblePattern(
            prefix=IPv6Prefix(network, group_length),
            values=tuple(tuple(sorted(v)) for v in values),
        ))
    return patterns


class PatternTga(Strategy):
    """Strategy wrapper: seeds in, large unique-target batches out.

    ``seed_source`` is polled each window for fresh seed addresses
    (typically hitlist entries plus the scanner's own hit history);
    when patterns change, a new exploration batch is emitted.
    """

    def __init__(
        self,
        seed_source,
        profile: ProtocolProfile | None = None,
        peak_rate: float = 3_000.0,
        floor_rate: float = 200.0,
        decay_tau: float = 30 * DAY,
        group_length: int = 48,
        min_new_seeds: int = 1,
        removal_source=None,
        seed_channel: str = "generic",
    ):
        """``removal_source(since, until)`` yields addresses whose seeds
        should be purged (delisted hitlist entries, withdrawn prefixes):
        TGA operators refresh their seed sets frequently, which is why
        scanning dies quickly after a BGP retraction (§5.3.1).

        ``seed_channel`` names the public data source the seeds come from
        ("hitlist", "bgp", ...) so channel-ablation studies can silence
        TGAs together with the channel that feeds them."""
        self.seed_source = seed_source
        self.removal_source = removal_source
        self.seed_channel = seed_channel
        self.profile = profile or ProtocolProfile(icmp_weight=1.0)
        self.peak_rate = peak_rate
        self.floor_rate = floor_rate
        self.decay_tau = decay_tau
        self.group_length = group_length
        self.min_new_seeds = min_new_seeds
        self.seeds: list[int] = []
        self._seen: set[int] = set()
        #: A refreshed pattern set replaces the running exploration batch.
        self._current_batch = None

    def _sampler(self, patterns: list[NibblePattern]) -> TargetSampler:
        profile = self.profile

        def sample(rng: np.random.Generator, n: int) -> list[ProbeTarget]:
            out = []
            for _ in range(n):
                pattern = patterns[int(rng.integers(len(patterns)))]
                addr = pattern.generate(rng, 1)[0]
                out.append(profile.sample(rng, addr))
            return out

        # Columnar fast path: group the draw by pattern (one vectorized
        # ``generate_columns`` per pattern actually hit), then one bulk
        # protocol/port draw for the whole batch.
        def sample_batch(rng: np.random.Generator, n: int):
            idx = rng.integers(len(patterns), size=n)
            dst_hi = np.empty(n, dtype=np.uint64)
            dst_lo = np.empty(n, dtype=np.uint64)
            order = np.argsort(idx, kind="stable")
            counts = np.bincount(idx, minlength=len(patterns))
            offset = 0
            for k, count in enumerate(counts):
                if not count:
                    continue
                rows = order[offset:offset + count]
                offset += count
                hi, lo = patterns[k].generate_columns(rng, int(count))
                dst_hi[rows] = hi
                dst_lo[rows] = lo
            proto, dport = profile.sample_batch(rng, n)
            return dst_hi, dst_lo, proto, dport

        sample.sample_batch = sample_batch

        return sample

    def poll(self, since: float, until: float,
             rng: np.random.Generator) -> list[ProbeBatch]:
        purged = False
        if self.removal_source is not None:
            gone = set(self.removal_source(since, until))
            if gone:
                kept = [s for s in self.seeds if s not in gone]
                purged = len(kept) != len(self.seeds)
                self.seeds = kept
                self._seen -= gone
        fresh = [s for s in self.seed_source(since, until)
                 if s not in self._seen]
        if len(fresh) < self.min_new_seeds and not purged:
            return []
        self._seen.update(fresh)
        self.seeds.extend(fresh)
        if not self.seeds:
            if self._current_batch is not None:
                self._current_batch.cancel(until)
                self._current_batch = None
            return []
        patterns = mine_patterns(self.seeds, self.group_length)
        if not patterns:
            return []
        if self._current_batch is not None:
            self._current_batch.cancel(until)
        self._current_batch = ProbeBatch(
            trigger="tga",
            start=until + float(rng.uniform(0, DAY)),
            sampler=self._sampler(patterns),
            peak_rate=self.peak_rate * float(rng.uniform(0.7, 1.3)),
            floor_rate=self.floor_rate,
            decay_tau=self.decay_tau,
        )
        return [self._current_batch]
