"""6Tree-style dynamic target generation (Liu et al., Computer Networks '19).

The classic feedback TGA the paper's §2.2 surveys: build a *space tree*
over the seed addresses by splitting on nibble positions, then descend the
tree spending probe budget where responses actually come back.  Unlike the
blind pattern miner (:mod:`repro.scanners.tga`), 6Tree adapts: productive
regions get exponentially more probes, dead regions are abandoned.

``SixTreeTga.run`` drives the algorithm against a responsiveness oracle
(in the simulator: the telescope itself) and returns per-round statistics,
making it directly comparable in the :mod:`repro.scanners.tga_eval`
harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng

#: Nibble positions in an address (most significant first).
N_NIBBLES = 32


def _nibble(address: int, position: int) -> int:
    return (address >> (124 - 4 * position)) & 0xF


@dataclass
class SpaceTreeNode:
    """One region of address space: seeds agreeing on a nibble prefix."""

    #: Fixed nibbles (most-significant first); the region is everything
    #: sharing this prefix.
    prefix_nibbles: tuple[int, ...]
    seeds: list[int] = field(default_factory=list)
    children: list["SpaceTreeNode"] = field(default_factory=list)
    #: Feedback state.
    probes_sent: int = 0
    hits: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def density(self) -> float:
        """Observed hit rate, optimistic prior for unprobed regions."""
        if self.probes_sent == 0:
            return 1.0
        return self.hits / self.probes_sent

    @property
    def fixed_length(self) -> int:
        return len(self.prefix_nibbles) * 4

    def contains(self, address: int) -> bool:
        return all(_nibble(address, i) == n
                   for i, n in enumerate(self.prefix_nibbles))

    def generate(self, rng: np.random.Generator, n: int,
                 mutation_probability: float = 0.25) -> list[int]:
        """Sample candidates: fixed prefix + seed-informed suffix.

        Every suffix nibble is drawn from the region's observed values;
        with probability ``mutation_probability`` a *single* position is
        then randomized — one mutation per candidate is how 6Tree escapes
        the seeds' exact footprint without destroying their structure
        (mutating independently per nibble almost never yields a valid
        address once the suffix is long).
        """
        base = 0
        for nibble in self.prefix_nibbles:
            base = (base << 4) | nibble
        base <<= 4 * (N_NIBBLES - len(self.prefix_nibbles))
        suffix_positions = list(range(len(self.prefix_nibbles), N_NIBBLES))
        observed = {
            pos: [_nibble(s, pos) for s in self.seeds]
            for pos in suffix_positions
        }
        out = []
        for _ in range(n):
            address = base
            for pos in suffix_positions:
                values = observed[pos]
                nibble = (values[int(rng.integers(len(values)))]
                          if values else int(rng.integers(16)))
                address |= nibble << (124 - 4 * pos)
            if suffix_positions and rng.random() < mutation_probability:
                pos = suffix_positions[
                    int(rng.integers(len(suffix_positions)))
                ]
                address &= ~(0xF << (124 - 4 * pos))
                address |= int(rng.integers(16)) << (124 - 4 * pos)
            out.append(address)
        return out


def build_space_tree(seeds: list[int], max_leaf_seeds: int = 8,
                     max_depth: int = 28) -> SpaceTreeNode:
    """Build the space tree: split nodes on their first diverging nibble."""
    root = SpaceTreeNode(prefix_nibbles=(), seeds=sorted(set(seeds)))

    def split(node: SpaceTreeNode) -> None:
        depth = len(node.prefix_nibbles)
        if len(node.seeds) <= max_leaf_seeds or depth >= max_depth:
            return
        # Find the first position past the prefix where seeds diverge.
        position = depth
        while position < max_depth:
            values = {_nibble(s, position) for s in node.seeds}
            if len(values) > 1:
                break
            position += 1
        if position >= max_depth:
            return
        # Extend the common prefix up to the diverging position, then
        # split into one child per observed nibble value.
        common = tuple(
            _nibble(node.seeds[0], i) for i in range(depth, position)
        )
        groups: dict[int, list[int]] = {}
        for seed in node.seeds:
            groups.setdefault(_nibble(seed, position), []).append(seed)
        for value, members in sorted(groups.items()):
            child = SpaceTreeNode(
                prefix_nibbles=node.prefix_nibbles + common + (value,),
                seeds=members,
            )
            node.children.append(child)
            split(child)

    split(root)
    return root


@dataclass(frozen=True)
class SixTreeRound:
    """Statistics for one feedback round."""

    round_index: int
    probes: int
    hits: int
    new_addresses: int
    active_regions: int


@dataclass
class SixTreeResult:
    """Full run outcome."""

    discovered: set[int] = field(default_factory=set)
    probes_sent: int = 0
    rounds: list[SixTreeRound] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return len(self.discovered) / self.probes_sent if self.probes_sent else 0.0


class SixTreeTga:
    """The dynamic-descent scanner."""

    def __init__(self, seeds: list[int],
                 rng: np.random.Generator | int | None = 0,
                 max_leaf_seeds: int = 8,
                 exploration_share: float = 0.2):
        if not seeds:
            raise ValueError("6Tree needs at least one seed address")
        self._rng = make_rng(rng)
        self.tree = build_space_tree(seeds, max_leaf_seeds=max_leaf_seeds)
        self.exploration_share = exploration_share

    def _leaves(self) -> list[SpaceTreeNode]:
        out = []
        stack = [self.tree]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend(node.children)
        return out

    def run(self, oracle, budget: int, at: float = 0.0,
            round_size: int = 256) -> SixTreeResult:
        """Spend ``budget`` probes, reallocating by observed density.

        ``oracle(address, at) -> bool`` answers responsiveness (wire it to
        a telescope's ICMP oracle).  Each round splits its probes between
        density-weighted exploitation and uniform exploration.
        """
        result = SixTreeResult()
        leaves = self._leaves()
        attempted: set[int] = set()
        round_index = 0
        stall_rounds = 0
        while result.probes_sent < budget and stall_rounds < 4:
            quota = min(round_size, budget - result.probes_sent)
            densities = np.array([leaf.density for leaf in leaves])
            explore = max(1, int(quota * self.exploration_share))
            exploit = quota - explore
            allocation = np.zeros(len(leaves), dtype=int)
            if densities.sum() > 0 and exploit > 0:
                weights = densities / densities.sum()
                allocation += self._rng.multinomial(exploit, weights)
            allocation += self._rng.multinomial(
                explore, np.full(len(leaves), 1.0 / len(leaves))
            )
            round_hits = 0
            round_probes = 0
            new_addresses = 0
            for leaf, n in zip(leaves, allocation):
                if n == 0:
                    continue
                sent = 0
                # Never re-probe a known address (budget is real packets);
                # a bounded oversample absorbs duplicate draws from small
                # candidate spaces.
                for candidate in leaf.generate(self._rng, int(n) * 4):
                    if sent >= n:
                        break
                    if candidate in attempted:
                        continue
                    attempted.add(candidate)
                    sent += 1
                    leaf.probes_sent += 1
                    result.probes_sent += 1
                    round_probes += 1
                    if oracle(candidate, at):
                        leaf.hits += 1
                        round_hits += 1
                        result.discovered.add(candidate)
                        new_addresses += 1
            result.rounds.append(SixTreeRound(
                round_index=round_index,
                probes=round_probes,
                hits=round_hits,
                new_addresses=new_addresses,
                active_regions=int((densities > 0).sum()),
            ))
            round_index += 1
            # Regions can run out of fresh candidates; stop when the whole
            # tree goes dry instead of spinning.
            stall_rounds = stall_rounds + 1 if round_probes == 0 else 0
        return result
