"""TGA evaluation harness ("Target Acquired?"-style, Steger et al. TMA'23).

Runs multiple target-generation algorithms against the same seed set and
responsiveness oracle with the same probe budget, and reports the metrics
the TGA-evaluation literature uses: hit rate, unique discoveries,
seed-overlap (did the TGA merely regurgitate its seeds?), and pairwise
discovery overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import make_rng
from repro.scanners.entropy_tga import EntropyTga
from repro.scanners.tga import mine_patterns
from repro.scanners.tga6tree import SixTreeResult, SixTreeRound, SixTreeTga


@dataclass(frozen=True)
class TgaScore:
    """One algorithm's evaluation row."""

    name: str
    probes: int
    discovered: int
    hit_rate: float
    #: Fraction of discoveries that were already seeds.
    seed_regurgitation: float
    new_discoveries: int


@dataclass
class TgaEvaluation:
    """Full shootout result."""

    scores: list[TgaScore]
    #: pairwise Jaccard of (non-seed) discovery sets.
    overlap: dict[tuple[str, str], float]

    def score(self, name: str) -> TgaScore:
        for row in self.scores:
            if row.name == name:
                return row
        raise KeyError(name)

    def render(self) -> str:
        lines = ["TGA shootout"]
        lines.append(f"  {'algorithm':16s} {'probes':>7s} {'found':>6s} "
                     f"{'hit rate':>9s} {'new':>6s} {'regurg.':>8s}")
        for row in self.scores:
            lines.append(
                f"  {row.name:16s} {row.probes:7d} {row.discovered:6d} "
                f"{row.hit_rate:9.2%} {row.new_discoveries:6d} "
                f"{row.seed_regurgitation:8.1%}"
            )
        for (a, b), value in self.overlap.items():
            lines.append(f"  overlap({a}, {b}) = {value:.2f}")
        return "\n".join(lines)


class _RandomBaseline:
    """Uniform random addresses within the seeds' covering /32s — the
    brute-force strawman every TGA paper compares against."""

    def __init__(self, seeds: list[int],
                 rng: np.random.Generator | int | None = 0):
        self._rng = make_rng(rng)
        self._networks = sorted({(s >> 96) << 96 for s in seeds})

    def run(self, oracle, budget: int, at: float = 0.0) -> SixTreeResult:
        result = SixTreeResult()
        hits = 0
        for _ in range(budget):
            network = self._networks[
                int(self._rng.integers(len(self._networks)))
            ]
            low = int(self._rng.integers(0, 1 << 63))
            high = int(self._rng.integers(0, 1 << 33))
            candidate = network | (high << 63) | low
            result.probes_sent += 1
            if oracle(candidate, at):
                hits += 1
                result.discovered.add(candidate)
        result.rounds.append(SixTreeRound(0, budget, hits,
                                          len(result.discovered), 1))
        return result


class _PatternBaseline:
    """The ecosystem's blind pattern miner, harness-wrapped."""

    def __init__(self, seeds: list[int],
                 rng: np.random.Generator | int | None = 0,
                 group_length: int = 48):
        self._rng = make_rng(rng)
        self._patterns = mine_patterns(sorted(set(seeds)), group_length)

    def run(self, oracle, budget: int, at: float = 0.0) -> SixTreeResult:
        result = SixTreeResult()
        hits = 0
        for _ in range(budget):
            pattern = self._patterns[
                int(self._rng.integers(len(self._patterns)))
            ]
            candidate = pattern.generate(self._rng, 1)[0]
            result.probes_sent += 1
            if oracle(candidate, at):
                hits += 1
                result.discovered.add(candidate)
        result.rounds.append(SixTreeRound(0, budget, hits,
                                          len(result.discovered), 1))
        return result


def evaluate_tgas(
    seeds: list[int],
    oracle,
    budget: int = 2_000,
    at: float = 0.0,
    rng: np.random.Generator | int | None = 0,
    algorithms: dict | None = None,
) -> TgaEvaluation:
    """Run the shootout.

    ``oracle(address, at) -> bool``.  Pass ``algorithms`` to override the
    default roster (name -> object with ``run(oracle, budget, at)``).
    """
    root = make_rng(rng)
    seeds = sorted(set(seeds))
    if algorithms is None:
        seed_ints = [int(s) for s in root.integers(0, 2**31, size=4)]
        algorithms = {
            "random": _RandomBaseline(seeds, rng=seed_ints[0]),
            "pattern": _PatternBaseline(seeds, rng=seed_ints[1]),
            "entropy": EntropyTga(seeds, rng=seed_ints[2]),
            "6tree": SixTreeTga(seeds, rng=seed_ints[3]),
        }
    seed_set = set(seeds)
    scores = []
    discoveries: dict[str, set[int]] = {}
    for name, algorithm in algorithms.items():
        result = algorithm.run(oracle, budget, at)
        new = result.discovered - seed_set
        discoveries[name] = new
        regurgitation = (
            len(result.discovered & seed_set) / len(result.discovered)
            if result.discovered else 0.0
        )
        scores.append(TgaScore(
            name=name,
            probes=result.probes_sent,
            discovered=len(result.discovered),
            hit_rate=result.hit_rate,
            seed_regurgitation=regurgitation,
            new_discoveries=len(new),
        ))
    overlap = {}
    names = list(discoveries)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            union = discoveries[a] | discoveries[b]
            overlap[(a, b)] = (
                len(discoveries[a] & discoveries[b]) / len(union)
                if union else 0.0
            )
    return TgaEvaluation(scores=scores, overlap=overlap)
