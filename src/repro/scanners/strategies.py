"""Target-generation strategies wired to the public data feeds.

Each strategy polls one data source and converts what it finds into
:class:`ProbeBatch` descriptors — "start probing these targets at time T,
with an initial burst decaying to a floor".  The burst/decay form matches
the paper's Figures 7/8: scanner attention spikes immediately after a
trigger, then converges to a stable lower value after 15-40 days.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro._util import DAY, derive_rng, make_rng
from repro.dns.resolver import Resolver
from repro.dns.reverse import ReverseZone
from repro.hitlist.categories import HitlistCategory
from repro.hitlist.service import HitlistService
from repro.net.addr import IPv6Prefix
from repro.net.packet import ICMPV6, TCP, UDP
from repro.routing.collectors import CollectorSystem
from repro.tlsca.ctlog import CtLog


@dataclass(frozen=True, slots=True)
class ProbeTarget:
    """One concrete probe: destination, protocol, destination port."""

    address: int
    proto: int
    dport: int = 0


#: Draws ``n`` probe targets.  Samplers may additionally carry a
#: ``sample_batch(rng, n) -> (dst_hi, dst_lo, proto, dport)`` attribute —
#: the columnar fast path :meth:`ScannerAgent.emit_day_batch` uses when
#: present (falling back to the per-target list otherwise).
TargetSampler = Callable[[np.random.Generator, int], list[ProbeTarget]]

#: Columnar target draw: (dst_hi, dst_lo, proto, dport) numpy columns.
TargetColumns = "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]"


def targets_to_columns(targets: list[ProbeTarget]):
    """Convert a per-target list into (dst_hi, dst_lo, proto, dport) columns.

    The fallback bridge for samplers without a columnar fast path: the
    targets are still drawn object-by-object, but everything downstream of
    the sampler stays columnar.
    """
    n = len(targets)
    dst_hi = np.fromiter(((t.address >> 64) & 0xFFFFFFFFFFFFFFFF
                          for t in targets), dtype=np.uint64, count=n)
    dst_lo = np.fromiter((t.address & 0xFFFFFFFFFFFFFFFF for t in targets),
                         dtype=np.uint64, count=n)
    proto = np.fromiter((t.proto for t in targets), dtype=np.uint8, count=n)
    dport = np.fromiter((t.dport for t in targets), dtype=np.uint16, count=n)
    return dst_hi, dst_lo, proto, dport


@dataclass(frozen=True)
class ProtocolProfile:
    """A scanner's protocol mix for generic (non-source-specific) probes."""

    icmp_weight: float = 1.0
    tcp_weight: float = 0.0
    udp_weight: float = 0.0
    tcp_ports: tuple[int, ...] = (80, 443, 22, 23)
    udp_ports: tuple[int, ...] = (53, 123)

    def sample(self, rng: np.random.Generator, address: int) -> ProbeTarget:
        weights = np.array(
            [self.icmp_weight, self.tcp_weight, self.udp_weight]
        )
        total = weights.sum()
        if total <= 0:
            raise ValueError("protocol profile has no positive weight")
        choice = rng.choice(3, p=weights / total)
        if choice == 0:
            return ProbeTarget(address, ICMPV6)
        if choice == 1:
            port = self.tcp_ports[int(rng.integers(len(self.tcp_ports)))]
            return ProbeTarget(address, TCP, port)
        port = self.udp_ports[int(rng.integers(len(self.udp_ports)))]
        return ProbeTarget(address, UDP, port)

    def sample_batch(self, rng: np.random.Generator,
                     n: int) -> tuple[np.ndarray, np.ndarray]:
        """Columnar protocol/port draw: ``(proto, dport)`` for ``n`` probes.

        Statistically identical to ``n`` calls of :meth:`sample` (same
        protocol mix, same uniform port choice), drawn in bulk.
        """
        weights = np.array(
            [self.icmp_weight, self.tcp_weight, self.udp_weight]
        )
        total = weights.sum()
        if total <= 0:
            raise ValueError("protocol profile has no positive weight")
        choice = rng.choice(3, size=n, p=weights / total)
        proto = np.full(n, ICMPV6, dtype=np.uint8)
        dport = np.zeros(n, dtype=np.uint16)
        tcp = choice == 1
        k = int(tcp.sum())
        if k:
            proto[tcp] = TCP
            ports = np.asarray(self.tcp_ports, dtype=np.uint16)
            dport[tcp] = ports[rng.integers(len(ports), size=k)]
        udp = choice == 2
        k = int(udp.sum())
        if k:
            proto[udp] = UDP
            ports = np.asarray(self.udp_ports, dtype=np.uint16)
            dport[udp] = ports[rng.integers(len(ports), size=k)]
        return proto, dport


@dataclass
class ProbeBatch:
    """A trigger's worth of probing: targets plus an intensity envelope.

    Daily rate: ``floor + (peak - floor) * exp(-(t - start)/tau)`` packets
    per day, for ``duration`` days after ``start``.
    """

    trigger: str
    start: float
    sampler: TargetSampler
    peak_rate: float
    floor_rate: float = 0.0
    decay_tau: float = 10 * DAY
    duration: float = 365 * DAY
    #: The prefix this batch is probing (None for address-list batches);
    #: used to cancel batches when their BGP announcement is withdrawn.
    subject_prefix: IPv6Prefix | None = None
    #: Set when the batch is cancelled (e.g. BGP withdrawal): probing stops.
    cancelled_at: float | None = None

    def cancel(self, at: float) -> None:
        """Stop the batch at time ``at`` (idempotent, keeps earliest)."""
        if self.cancelled_at is None or at < self.cancelled_at:
            self.cancelled_at = at

    def rate_at(self, t: float) -> float:
        """Expected packets/day at absolute time ``t``."""
        if t < self.start or t > self.start + self.duration:
            return 0.0
        if self.cancelled_at is not None and t >= self.cancelled_at:
            return 0.0
        age = t - self.start
        return self.floor_rate + (self.peak_rate - self.floor_rate) * float(
            np.exp(-age / self.decay_tau)
        )


class Strategy:
    """Base: poll a data feed, return new probe batches."""

    def poll(self, since: float, until: float,
             rng: np.random.Generator) -> list[ProbeBatch]:
        raise NotImplementedError


# -- samplers ----------------------------------------------------------------


def prefix_sampler(
    prefix: IPv6Prefix,
    profile: ProtocolProfile,
    low_weight: float = 0.5,
    low_span: int = 64,
    subnet_length: int = 64,
) -> TargetSampler:
    """Probe inside a prefix: low addresses of low subnets + random spread.

    Mirrors observed in-prefix exploration: scanners concentrate on the
    first addresses of the first subnets (``::1`` patterns) and scatter the
    rest across random /64s.
    """

    def sample(rng: np.random.Generator, n: int) -> list[ProbeTarget]:
        out = []
        n_subnets = 1 << min(subnet_length - prefix.length, 16)
        for _ in range(n):
            if rng.random() < low_weight:
                subnet = int(rng.integers(min(n_subnets, 8)))
                offset = int(rng.integers(1, low_span))
                addr = (prefix.network
                        | (subnet << (128 - subnet_length))
                        | offset)
            else:
                addr = prefix.random_address(rng).value
            out.append(profile.sample(rng, addr))
        return out

    if subnet_length <= 64:
        # Columnar fast path: for the paper's /64 subnet granularity the
        # subnet index and low offset land in separate uint64 halves, so
        # the whole draw vectorizes.  (subnet_length > 64 would straddle
        # the halves; those callers keep the per-target path.)
        from repro.net.addr import random_addresses_u64

        net_hi = np.uint64((prefix.network >> 64) & 0xFFFFFFFFFFFFFFFF)
        net_lo = np.uint64(prefix.network & 0xFFFFFFFFFFFFFFFF)
        n_subnets = 1 << min(subnet_length - prefix.length, 16)
        subnet_shift = np.uint64(128 - subnet_length - 64)

        def sample_batch(rng: np.random.Generator, n: int):
            low = rng.random(n) < low_weight
            dst_hi = np.empty(n, dtype=np.uint64)
            dst_lo = np.empty(n, dtype=np.uint64)
            k = int(low.sum())
            if k:
                subnet = rng.integers(min(n_subnets, 8), size=k,
                                      dtype=np.uint64)
                offset = rng.integers(1, low_span, size=k, dtype=np.uint64)
                dst_hi[low] = net_hi | (subnet << subnet_shift)
                dst_lo[low] = net_lo | offset
            if k < n:
                high = ~low
                dst_hi[high], dst_lo[high] = random_addresses_u64(
                    prefix, rng, n - k
                )
            proto, dport = profile.sample_batch(rng, n)
            return dst_hi, dst_lo, proto, dport

        sample.sample_batch = sample_batch

    return sample


def address_list_sampler(
    targets: list[ProbeTarget],
) -> TargetSampler:
    """Probe a fixed list of concrete targets, round-robin with jitter."""
    if not targets:
        raise ValueError("target list must not be empty")

    def sample(rng: np.random.Generator, n: int) -> list[ProbeTarget]:
        idx = rng.integers(0, len(targets), size=n)
        return [targets[int(i)] for i in idx]

    # Columnar fast path: the target list is fixed, so its columns are
    # computed once and every draw is a single fancy-index.
    columns = targets_to_columns(targets)

    def sample_batch(rng: np.random.Generator, n: int):
        idx = rng.integers(0, len(targets), size=n)
        dst_hi, dst_lo, proto, dport = columns
        return dst_hi[idx], dst_lo[idx], proto[idx], dport[idx]

    sample.sample_batch = sample_batch

    return sample


# -- feed-driven strategies ---------------------------------------------------


class BgpWatcher(Strategy):
    """Watches the public route collectors for new prefixes.

    Reacts to newly visible prefixes with an in-prefix probe batch.
    ``min_collectors`` models scanners that only trust well-propagated
    routes (hyper-specifics reach ~5 collectors and attract fewer, more
    sporadic scanners — Fig. 10's bimodality).  ``attention_probability``
    models finite scanning budgets: a light scanner picks up only a subset
    of new prefixes, which keeps source sets telescope-specific (the low
    Jaccard similarities of §5.1).

    When ``decision_seed`` is given, the whether-and-how of each reaction
    (the attention draw, reaction delay, and burst shape) comes from a
    dedicated stream keyed on ``(decision_seed, prefix)`` via
    :func:`repro._util.derive_rng` rather than the caller's generator.
    Reactions are then a stable property of the scanner × prefix pair:
    refactors that change how many draws the emission path makes cannot
    re-roll which announcements a scanner noticed.  (PR 3's columnar
    emission path silently re-rolled the sporadic-burst lottery this way
    and flattened Fig. 10 for the pinned benchmark seed.)
    """

    def __init__(
        self,
        collectors: CollectorSystem,
        profile: ProtocolProfile,
        peak_rate: float = 200.0,
        floor_rate: float = 5.0,
        decay_tau: float = 15 * DAY,
        reaction_delay: float = 6 * 3_600.0,
        min_collectors: int = 1,
        low_weight: float = 0.5,
        attention_probability: float = 1.0,
        decision_seed: int | None = None,
    ):
        self.collectors = collectors
        self.profile = profile
        self.peak_rate = peak_rate
        self.floor_rate = floor_rate
        self.decay_tau = decay_tau
        self.reaction_delay = reaction_delay
        self.min_collectors = min_collectors
        self.low_weight = low_weight
        self.attention_probability = attention_probability
        self.decision_seed = decision_seed
        self._seen: set[IPv6Prefix] = set()

    def _reaction_rng(self, prefix: IPv6Prefix,
                      rng: np.random.Generator) -> np.random.Generator:
        """The stream deciding this watcher's reaction to ``prefix``."""
        if self.decision_seed is None:
            return rng
        return derive_rng(self.decision_seed, prefix.network, prefix.length)

    def poll(self, since: float, until: float,
             rng: np.random.Generator) -> list[ProbeBatch]:
        batches = []
        for prefix, visible_at in self.collectors.new_prefixes(
            since, until
        ).items():
            if prefix in self._seen:
                continue
            self._seen.add(prefix)
            if self.collectors.visibility_count(prefix, until) < self.min_collectors:
                continue
            d_rng = self._reaction_rng(prefix, rng)
            if d_rng.random() > self.attention_probability:
                continue
            start = visible_at + d_rng.exponential(self.reaction_delay)
            batches.append(ProbeBatch(
                trigger="bgp",
                start=start,
                sampler=prefix_sampler(prefix, self.profile,
                                       low_weight=self.low_weight),
                peak_rate=self.peak_rate * float(d_rng.uniform(0.5, 1.5)),
                floor_rate=self.floor_rate,
                decay_tau=self.decay_tau * float(d_rng.uniform(0.7, 1.3)),
                subject_prefix=prefix,
            ))
        return batches

    def withdrawn_prefixes(self, since: float, until: float) -> set[IPv6Prefix]:
        """Prefixes withdrawn in the window (agents cancel their batches).

        IPv6 scanners refresh their seeds frequently — the paper saw
        scanning die within hours of a BGP retraction (§5.3.1).
        """
        gone = set()
        for event in self.collectors.visible_updates(since, until):
            if event.is_withdrawal:
                gone.add(event.update.prefix)
        return gone


class ZoneFileWatcher(Strategy):
    """Diffs TLD zone files, resolves new names, probes the AAAA targets.

    ``TLD_WEIGHTS`` models monitoring popularity: far more scanners diff
    the .com zone than .org/.net, which is why the paper's H_Com drew more
    traffic than H_Org/net despite fewer names.
    """

    TLD_WEIGHTS = {"com": 1.0, "net": 0.55, "org": 0.45}

    def __init__(
        self,
        new_names: Callable[[float, float], dict[str, float]],
        resolver: Resolver,
        peak_rate: float = 60.0,
        floor_rate: float = 2.0,
        decay_tau: float = 12 * DAY,
        reaction_delay: float = 12 * 3_600.0,
        probe_web: bool = True,
        probe_surrounding: bool = False,
        attention_probability: float = 1.0,
        ping_ratio: int = 4,
    ):
        self.new_names = new_names
        self.resolver = resolver
        self.peak_rate = peak_rate
        self.floor_rate = floor_rate
        self.decay_tau = decay_tau
        self.reaction_delay = reaction_delay
        self.probe_web = probe_web
        self.probe_surrounding = probe_surrounding
        self.attention_probability = attention_probability
        self.ping_ratio = max(1, ping_ratio)
        self._seen: set[str] = set()

    def _targets_for(self, addresses: Iterable[int]) -> list[ProbeTarget]:
        targets = []
        for addr in addresses:
            # ICMP liveness checks outnumber service probes for most
            # scanners (§5.2: ICMPv6 is 91.6% of all unsolicited traffic);
            # service-focused scanners pass ping_ratio=1.
            targets.extend([ProbeTarget(addr, ICMPV6)] * self.ping_ratio)
            if self.probe_web:
                for port in (80, 443):
                    targets.append(ProbeTarget(addr, TCP, port))
        return targets

    def poll(self, since: float, until: float,
             rng: np.random.Generator) -> list[ProbeBatch]:
        batches = []
        for name, published in self.new_names(since, until).items():
            if name in self._seen:
                continue
            self._seen.add(name)
            tld_weight = self.TLD_WEIGHTS.get(name.rsplit(".", 1)[-1], 0.5)
            if rng.random() > self.attention_probability * tld_weight:
                continue
            addresses = self.resolver.resolve_aaaa(name, at=published)
            if not addresses:
                continue
            targets = self._targets_for(addresses)
            if self.probe_surrounding:
                for addr in addresses:
                    base = (addr >> 64) << 64
                    targets.extend(
                        ProbeTarget(base | int(rng.integers(1, 1 << 16)),
                                    ICMPV6)
                        for _ in range(4)
                    )
            start = published + rng.exponential(self.reaction_delay)
            batches.append(ProbeBatch(
                trigger="zonefile",
                start=start,
                sampler=address_list_sampler(targets),
                peak_rate=self.peak_rate * float(rng.uniform(0.5, 1.5)),
                floor_rate=self.floor_rate,
                decay_tau=self.decay_tau,
            ))
        return batches


class CtLogWatcher(Strategy):
    """Subscribes to CT logs; reacts within seconds of certificate issuance.

    The paper timed the first post-issuance scanner at 7 seconds — CT bots
    stream the log, they do not poll daily.
    """

    #: Engagement multipliers by interaction level (dark, low, high):
    #: scanners keep returning to full-stack services — the order-of-
    #: magnitude amplification the paper measured on the T-Pot prefixes.
    ENGAGEMENT_FACTORS = (0.3, 1.0, 12.0)

    def __init__(
        self,
        ct_log: CtLog,
        resolver: Resolver,
        peak_rate: float = 150.0,
        floor_rate: float = 3.0,
        decay_tau: float = 20 * DAY,
        reaction_delay: float = 30.0,
        interaction_oracle=None,
        ping_ratio: int = 4,
    ):
        self.ct_log = ct_log
        self.resolver = resolver
        self.peak_rate = peak_rate
        self.floor_rate = floor_rate
        self.decay_tau = decay_tau
        self.reaction_delay = reaction_delay
        self.interaction_oracle = interaction_oracle
        self.ping_ratio = max(1, ping_ratio)
        self._seen: set[str] = set()

    def poll(self, since: float, until: float,
             rng: np.random.Generator) -> list[ProbeBatch]:
        batches = []
        for name, logged_at in self.ct_log.names_between(since, until).items():
            if name in self._seen:
                continue
            self._seen.add(name)
            addresses = self.resolver.resolve_aaaa(name, at=logged_at)
            if not addresses:
                continue
            targets = []
            for addr in addresses:
                targets.append(ProbeTarget(addr, TCP, 443))
                targets.append(ProbeTarget(addr, TCP, 80))
                # Liveness pings accompany (and usually outnumber) the
                # service probes, per the overall ICMP dominance of §5.2.
                targets.extend([ProbeTarget(addr, ICMPV6)] * self.ping_ratio)
            factor = 1.0
            if self.interaction_oracle is not None:
                level = max(
                    self.interaction_oracle(addr, logged_at)
                    for addr in addresses
                )
                factor = self.ENGAGEMENT_FACTORS[level]
            start = logged_at + float(rng.exponential(self.reaction_delay))
            batches.append(ProbeBatch(
                trigger="ctlog",
                start=start,
                sampler=address_list_sampler(targets),
                peak_rate=self.peak_rate * factor * float(
                    rng.uniform(0.5, 1.5)
                ),
                floor_rate=self.floor_rate * factor,
                decay_tau=self.decay_tau,
            ))
        return batches


class HitlistConsumer(Strategy):
    """Downloads hitlist publications and probes entries per category.

    Entry probing is weighted: ICMP-list entries are liveness checks and get
    pinged far more often than service entries, and entries fronting
    high-interaction services (per the ``interaction_oracle``) soak up
    disproportionate attention — together these produce the paper's
    H_UDP (manual ICMP entry, Δ=112k pkts/day) and T-Pot hitlist-trigger
    effects.
    """

    #: Repetition weight of an ICMP entry relative to a service entry.
    #: ICMP liveness lists are re-probed constantly — this is what makes
    #: the manually hitlisted H_UDP address the second-largest effect in
    #: Table 4 (112k packets/day, an order over the domain prefixes).
    ICMP_WEIGHT = 12
    #: Extra weight multiplier per interaction level (dark, low, high).
    ENGAGEMENT_WEIGHTS = (1, 2, 10)

    def __init__(
        self,
        hitlist: HitlistService,
        peak_rate: float = 120.0,
        floor_rate: float = 10.0,
        decay_tau: float = 25 * DAY,
        reaction_delay: float = 2 * DAY,
        categories: tuple[HitlistCategory, ...] | None = None,
        alias_probe_rate: float = 300.0,
        interaction_oracle=None,
        icmp_weight: int | None = None,
    ):
        self.hitlist = hitlist
        self.peak_rate = peak_rate
        self.floor_rate = floor_rate
        self.decay_tau = decay_tau
        self.reaction_delay = reaction_delay
        self.categories = categories
        self.alias_probe_rate = alias_probe_rate
        self.interaction_oracle = interaction_oracle
        self.icmp_weight = self.ICMP_WEIGHT if icmp_weight is None else max(
            1, icmp_weight
        )
        #: Aliased prefixes already being probed (one batch per prefix).
        self._seen_aliased: set[IPv6Prefix] = set()
        self._current_batch: ProbeBatch | None = None

    _CATEGORY_PROBES = {
        HitlistCategory.ICMP: (ICMPV6, 0),
        HitlistCategory.TCP80: (TCP, 80),
        HitlistCategory.TCP443: (TCP, 443),
        HitlistCategory.UDP53: (UDP, 53),
    }

    @classmethod
    def _target_for(cls, entry) -> ProbeTarget | None:
        probe = cls._CATEGORY_PROBES.get(entry.category)
        if probe is None:
            return None
        return ProbeTarget(entry.address, probe[0], probe[1])

    def _rebuild_targets(self, at: float) -> list[ProbeTarget]:
        """Build the weighted target list from the current hitlist snapshot.

        A real consumer downloads the whole published list each time, so
        delisted addresses (removed entries) drop out here — the mechanism
        by which scanning dies within hours-to-days of a BGP retraction.
        """
        snapshot = self.hitlist.snapshot_at(at)
        targets: list[ProbeTarget] = []
        for category, (proto, port) in self._CATEGORY_PROBES.items():
            if self.categories and category not in self.categories:
                continue
            for addr in snapshot.addresses.get(category, ()):
                weight = (self.icmp_weight
                          if category is HitlistCategory.ICMP else 1)
                if self.interaction_oracle is not None:
                    weight *= self.ENGAGEMENT_WEIGHTS[
                        self.interaction_oracle(addr, at)
                    ]
                targets.extend([ProbeTarget(addr, proto, port)] * weight)
        return targets

    def poll(self, since: float, until: float,
             rng: np.random.Generator) -> list[ProbeBatch]:
        batches = []
        changed = False
        first_published = None
        for entry in self.hitlist.entries_between(since, until):
            if self.categories and entry.category not in self.categories:
                continue
            if entry.category is HitlistCategory.ALIASED:
                if entry.prefix in self._seen_aliased:
                    continue
                self._seen_aliased.add(entry.prefix)
                profile = ProtocolProfile(icmp_weight=1.0)
                start = entry.published_at + rng.exponential(
                    self.reaction_delay
                )
                batches.append(ProbeBatch(
                    trigger="hitlist",
                    start=start,
                    sampler=prefix_sampler(entry.prefix, profile,
                                           low_weight=0.5),
                    peak_rate=self.alias_probe_rate * float(
                        rng.uniform(0.5, 1.5)
                    ),
                    floor_rate=self.floor_rate,
                    decay_tau=self.decay_tau,
                    subject_prefix=entry.prefix,
                ))
                continue
            if entry.address is not None:
                changed = True
                if first_published is None and not entry.removed:
                    first_published = entry.published_at
        if changed:
            # A new hitlist download replaces the previous target list; the
            # spend scales with the (weighted) list so hot new entries add
            # traffic instead of diluting existing targets.
            if self._current_batch is not None:
                self._current_batch.cancel(until)
            targets = self._rebuild_targets(until)
            if not targets:
                return batches
            start = (first_published if first_published is not None
                     else until) + float(rng.exponential(self.reaction_delay))
            budget = max(1.0, len(targets) / 40.0)
            self._current_batch = ProbeBatch(
                trigger="hitlist",
                start=start,
                sampler=address_list_sampler(targets),
                peak_rate=self.peak_rate * budget * float(
                    rng.uniform(0.5, 1.5)
                ),
                floor_rate=self.floor_rate * budget,
                decay_tau=self.decay_tau,
            )
            batches.append(self._current_batch)
        return batches


class RdnsWalkerStrategy(Strategy):
    """Walks ip6.arpa under watched prefixes, probing discovered PTR hosts."""

    def __init__(
        self,
        reverse_zone: ReverseZone,
        watched: list[IPv6Prefix],
        peak_rate: float = 40.0,
        floor_rate: float = 1.0,
        decay_tau: float = 10 * DAY,
        walk_period: float = 7 * DAY,
    ):
        self.reverse_zone = reverse_zone
        self.watched = watched
        self.peak_rate = peak_rate
        self.floor_rate = floor_rate
        self.decay_tau = decay_tau
        self.walk_period = walk_period
        self._known: set[int] = set()
        self._last_walk = -np.inf

    def poll(self, since: float, until: float,
             rng: np.random.Generator) -> list[ProbeBatch]:
        if until - self._last_walk < self.walk_period:
            return []
        self._last_walk = until
        fresh: list[int] = []
        for prefix in self.watched:
            for addr in self.reverse_zone.walk(prefix.network, prefix.length,
                                               at=until):
                if addr not in self._known:
                    self._known.add(addr)
                    fresh.append(addr)
        if not fresh:
            return []
        targets = [ProbeTarget(a, ICMPV6) for a in fresh]
        targets += [ProbeTarget(a, TCP, 22) for a in fresh]
        return [ProbeBatch(
            trigger="rdns",
            start=until,
            sampler=address_list_sampler(targets),
            peak_rate=self.peak_rate,
            floor_rate=self.floor_rate,
            decay_tau=self.decay_tau,
        )]


class AmbientScanner(Strategy):
    """Steady background probing of a long-known prefix.

    Models scanners that discovered a network long before the measurement
    window (NT-B's and NT-C's covering prefixes are old, stable routes that
    no BGP-diff watcher would flag).  Emits a single constant-rate batch
    starting at ``start``.
    """

    def __init__(
        self,
        prefix: IPv6Prefix,
        profile: ProtocolProfile,
        rate: float,
        start: float = 0.0,
        low_weight: float = 0.5,
        duration: float = 10 * 365 * DAY,
    ):
        self.prefix = prefix
        self.profile = profile
        self.rate = rate
        self.start = start
        self.low_weight = low_weight
        self.duration = duration
        self._emitted = False

    def poll(self, since: float, until: float,
             rng: np.random.Generator) -> list[ProbeBatch]:
        if self._emitted or until < self.start:
            return []
        self._emitted = True
        return [ProbeBatch(
            trigger="ambient",
            start=self.start,
            sampler=prefix_sampler(self.prefix, self.profile,
                                   low_weight=self.low_weight),
            peak_rate=self.rate,
            floor_rate=self.rate,
            decay_tau=365 * DAY,
            duration=self.duration,
            subject_prefix=self.prefix,
        )]


class CoveringSweeper(Strategy):
    """A rare wide scanner sweeping every /48 of a covering prefix.

    The paper found 55 of 191k sources scanning beyond the honeyprefix
    scope, one of them hitting 61.5k of 65k /48s; the resulting
    non-honeyprefix traffic (1.6% of the total) skewed toward the first
    16 /48s.  ``low_bias`` reproduces that skew.
    """

    def __init__(
        self,
        covering_prefix: IPv6Prefix,
        profile: ProtocolProfile,
        rate: float,
        start: float = 0.0,
        low_bias: float = 0.5,
    ):
        self.covering_prefix = covering_prefix
        self.profile = profile
        self.rate = rate
        self.start = start
        self.low_bias = low_bias
        self._emitted = False

    def _sampler(self) -> TargetSampler:
        prefix = self.covering_prefix
        profile = self.profile
        low_bias = self.low_bias
        n48 = 1 << (48 - prefix.length)

        def sample(rng: np.random.Generator, n: int) -> list[ProbeTarget]:
            out = []
            for _ in range(n):
                if rng.random() < low_bias:
                    idx = int(rng.integers(min(16, n48)))
                else:
                    idx = int(rng.integers(n48))
                addr = (prefix.network
                        | (idx << 80)
                        | int(rng.integers(1, 1 << 16)))
                out.append(profile.sample(rng, addr))
            return out

        # Columnar fast path: the /48 index shifts by 80 bits, i.e. by 16
        # within the hi half, and the host offset fits the lo half.
        net_hi = np.uint64((prefix.network >> 64) & 0xFFFFFFFFFFFFFFFF)
        net_lo = np.uint64(prefix.network & 0xFFFFFFFFFFFFFFFF)

        def sample_batch(rng: np.random.Generator, n: int):
            low = rng.random(n) < low_bias
            idx = np.empty(n, dtype=np.uint64)
            k = int(low.sum())
            if k:
                idx[low] = rng.integers(min(16, n48), size=k,
                                        dtype=np.uint64)
            if k < n:
                idx[~low] = rng.integers(n48, size=n - k, dtype=np.uint64)
            dst_hi = net_hi | (idx << np.uint64(16))
            dst_lo = net_lo | rng.integers(1, 1 << 16, size=n,
                                           dtype=np.uint64)
            proto, dport = profile.sample_batch(rng, n)
            return dst_hi, dst_lo, proto, dport

        sample.sample_batch = sample_batch

        return sample

    def poll(self, since: float, until: float,
             rng: np.random.Generator) -> list[ProbeBatch]:
        if self._emitted or until < self.start:
            return []
        self._emitted = True
        return [ProbeBatch(
            trigger="sweep",
            start=self.start,
            sampler=self._sampler(),
            peak_rate=self.rate,
            floor_rate=self.rate,
            decay_tau=365 * DAY,
            duration=10 * 365 * DAY,
        )]
