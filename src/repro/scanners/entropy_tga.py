"""Entropy-clustering target generation (Entropy/IP-family, §2.2).

The other classic TGA school: instead of a space tree, learn a *per-cluster
statistical model* of seed addresses.  Seeds are clustered by their
structural fingerprint (which nibble positions are fixed vs. variable),
then candidates are sampled from each cluster's per-position empirical
nibble distributions.  Blind (no feedback), but much better than uniform
random at matching operator addressing conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng
from repro.analysis.addrpatterns import nibble_entropy_profile

N_NIBBLES = 32


def _nibble_matrix(seeds: list[int]) -> np.ndarray:
    matrix = np.zeros((len(seeds), N_NIBBLES), dtype=np.int8)
    for i, seed in enumerate(seeds):
        for pos in range(N_NIBBLES):
            matrix[i, pos] = (seed >> (124 - 4 * pos)) & 0xF
    return matrix


def _fingerprint(row: np.ndarray, discriminating: np.ndarray) -> tuple:
    """A seed's structural signature: its values at discriminating
    positions (those where the seed set takes only a few distinct values —
    network/subnet structure rather than host randomness)."""
    return tuple(
        int(row[pos]) if discriminating[pos] else -1
        for pos in range(N_NIBBLES)
    )


@dataclass
class EntropyCluster:
    """One learned address cluster."""

    fingerprint: tuple
    seeds: list[int] = field(default_factory=list)
    #: per-position nibble frequency table, shape (32, 16).
    frequencies: np.ndarray | None = None

    def fit(self) -> None:
        matrix = _nibble_matrix(self.seeds)
        table = np.zeros((N_NIBBLES, 16))
        for pos in range(N_NIBBLES):
            values, counts = np.unique(matrix[:, pos], return_counts=True)
            table[pos, values] = counts
        # Laplace smoothing on variable positions only: fixed positions
        # (single observed value) stay deterministic.
        for pos in range(N_NIBBLES):
            if (table[pos] > 0).sum() > 1:
                table[pos] += 0.05
        self.frequencies = table / table.sum(axis=1, keepdims=True)

    def generate(self, rng: np.random.Generator, n: int) -> list[int]:
        if self.frequencies is None:
            raise RuntimeError("cluster is not fitted")
        out = []
        for _ in range(n):
            address = 0
            for pos in range(N_NIBBLES):
                nibble = int(rng.choice(16, p=self.frequencies[pos]))
                address = (address << 4) | nibble
            out.append(address)
        return out


class EntropyTga:
    """Cluster seeds, sample per-cluster nibble models."""

    def __init__(self, seeds: list[int],
                 rng: np.random.Generator | int | None = 0,
                 max_discriminating_values: int = 4):
        if not seeds:
            raise ValueError("entropy TGA needs at least one seed")
        self._rng = make_rng(rng)
        seeds = sorted(set(seeds))
        entropy = nibble_entropy_profile(seeds)
        matrix = _nibble_matrix(seeds)
        # Discriminating positions: few distinct values across the seed
        # set, i.e. network/subnet structure — but more than one value,
        # else there is nothing to split on.
        distinct = np.array([
            len(np.unique(matrix[:, pos])) for pos in range(N_NIBBLES)
        ])
        discriminating = (distinct > 1) & (
            distinct <= max_discriminating_values
        )
        clusters: dict[tuple, EntropyCluster] = {}
        for row, seed in zip(matrix, seeds):
            key = _fingerprint(row, discriminating)
            cluster = clusters.setdefault(key, EntropyCluster(key))
            cluster.seeds.append(seed)
        for cluster in clusters.values():
            cluster.fit()
        self.clusters = list(clusters.values())
        self.entropy = entropy

    def generate(self, n: int) -> list[int]:
        """Sample ``n`` candidates, clusters weighted by seed mass."""
        weights = np.array([len(c.seeds) for c in self.clusters],
                           dtype=float)
        weights /= weights.sum()
        allocation = self._rng.multinomial(n, weights)
        out = []
        for cluster, count in zip(self.clusters, allocation):
            if count:
                out.extend(cluster.generate(self._rng, int(count)))
        return out

    def run(self, oracle, budget: int, at: float = 0.0):
        """Harness-compatible driver: generate, probe, tally."""
        from repro.scanners.tga6tree import SixTreeResult, SixTreeRound

        result = SixTreeResult()
        candidates = self.generate(budget)
        hits = 0
        for candidate in candidates:
            result.probes_sent += 1
            if oracle(candidate, at):
                hits += 1
                result.discovered.add(candidate)
        result.rounds.append(SixTreeRound(
            round_index=0, probes=budget, hits=hits,
            new_addresses=len(result.discovered),
            active_regions=len(self.clusters),
        ))
        return result
