"""Scanner agents: schedule trigger reactions, emit per-day packet batches.

An agent owns an identity (AS, source pool), a set of strategies (data-feed
watchers), and its active :class:`ScanSession`s.  The simulation drives it
with two calls per day:

* :meth:`poll_feeds` — check every strategy for new triggers;
* :meth:`emit_day` — turn each active session's intensity envelope into a
  Poisson packet count and concrete packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import DAY, make_rng
from repro.net.addr import IPv6Prefix
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    Packet,
    TcpFlags,
    icmp_echo_request,
    tcp_segment,
    udp_datagram,
)
from repro.scanners.identity import ScannerIdentity, SourceAllocator
from repro.scanners.strategies import ProbeBatch, ProbeTarget, Strategy


@dataclass
class ScanSession:
    """One active probing campaign (a batch being executed)."""

    batch: ProbeBatch
    packets_sent: int = 0
    #: Worker slice of the agent's source pool dedicated to this target
    #: (None: draw from the whole pool).
    sources: list[int] | None = None

    def expected_packets(self, day_start: float, day_end: float) -> float:
        """Expected packets in ``[day_start, day_end)``.

        Approximates the envelope's integral with the midpoint rate; the
        per-day envelope changes slowly relative to a day, so this is
        accurate to a few percent.
        """
        effective_start = max(day_start, self.batch.start)
        end = day_end
        if self.batch.cancelled_at is not None:
            end = min(end, self.batch.cancelled_at)
        end = min(end, self.batch.start + self.batch.duration)
        if end <= effective_start:
            return 0.0
        midpoint = 0.5 * (effective_start + end)
        fraction = (end - effective_start) / DAY
        return self.batch.rate_at(midpoint) * fraction


class ScannerAgent:
    """One scanner: identity + strategies + active sessions."""

    def __init__(
        self,
        identity: ScannerIdentity,
        strategies: list[Strategy],
        rng: np.random.Generator | int | None = 0,
        volume_scale: float = 1.0,
        max_sessions: int = 200,
        weekly_amplitude: float = 0.15,
    ):
        self.identity = identity
        self.strategies = list(strategies)
        self._rng = make_rng(rng)
        self.allocator = SourceAllocator(identity, rng=self._rng)
        self.volume_scale = volume_scale
        self.max_sessions = max_sessions
        # Real scanning operations have day-of-week rhythm (jobs pause on
        # weekends, batch restarts on Mondays); a mild sinusoid with a
        # per-agent phase gives the daily series the weekly seasonality
        # the BSTM's seasonal component models.
        self.weekly_amplitude = weekly_amplitude
        self.weekly_phase = float(self._rng.uniform(0, 2 * np.pi))
        self.sessions: list[ScanSession] = []
        self.packets_emitted = 0

    # -- feeds ------------------------------------------------------------

    def poll_feeds(self, since: float, until: float) -> int:
        """Poll every strategy; returns the number of new sessions."""
        new = 0
        for strategy in self.strategies:
            for batch in strategy.poll(since, until, self._rng):
                if len(self.sessions) >= self.max_sessions:
                    break
                # Trigger-driven batches get a worker slice of the pool;
                # long-running background scans rotate the whole pool.
                slice_sources = (
                    self.allocator.target_slice()
                    if batch.trigger not in ("ambient", "sweep", "tga")
                    else None
                )
                self.sessions.append(ScanSession(
                    batch, sources=slice_sources
                ))
                new += 1
        return new

    def cancel_prefix(self, prefix: IPv6Prefix, at: float) -> int:
        """Cancel sessions probing ``prefix`` (BGP withdrawal reaction)."""
        n = 0
        for session in self.sessions:
            subject = session.batch.subject_prefix
            if subject is not None and (
                subject == prefix or prefix.contains_prefix(subject)
            ):
                session.batch.cancel(at)
                n += 1
        return n

    # -- emission -----------------------------------------------------------

    def _packet_for(self, target: ProbeTarget, ts: float,
                    sources: list[int] | None = None) -> Packet:
        if sources is not None:
            src = sources[int(self._rng.integers(len(sources)))]
        else:
            src = self.allocator.source()
        if target.proto == ICMPV6:
            return icmp_echo_request(ts, src, target.address)
        if target.proto == TCP:
            sport = int(self._rng.integers(32_768, 61_000))
            return tcp_segment(ts, src, target.address, sport, target.dport,
                               TcpFlags.SYN)
        sport = int(self._rng.integers(32_768, 61_000))
        return udp_datagram(ts, src, target.address, sport, target.dport,
                            payload=b"\x00\x01")

    def emit_day(self, day_start: float, day_end: float) -> list[Packet]:
        """Emit this day's probe packets across all active sessions."""
        self.allocator.new_session()
        packets: list[Packet] = []
        day_index = day_start / DAY
        weekly = 1.0 + self.weekly_amplitude * float(
            np.sin(2 * np.pi * day_index / 7.0 + self.weekly_phase)
        )
        for session in self.sessions:
            expected = session.expected_packets(day_start, day_end) * (
                self.volume_scale * weekly
            )
            if expected <= 0:
                continue
            n = int(self._rng.poisson(expected))
            if n == 0:
                continue
            timestamps = np.sort(
                self._rng.uniform(
                    max(day_start, session.batch.start), day_end, size=n
                )
            )
            targets = session.batch.sampler(self._rng, n)
            for ts, target in zip(timestamps, targets):
                packets.append(
                    self._packet_for(target, float(ts), session.sources)
                )
            session.packets_sent += n
        # Retire long-dead sessions to bound memory.
        self.sessions = [
            s for s in self.sessions
            if (s.batch.cancelled_at is None or
                day_end < s.batch.cancelled_at + DAY)
            and day_end < s.batch.start + s.batch.duration + DAY
        ]
        self.packets_emitted += len(packets)
        return packets
