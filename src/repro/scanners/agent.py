"""Scanner agents: schedule trigger reactions, emit per-day packet batches.

An agent owns an identity (AS, source pool), a set of strategies (data-feed
watchers), and its active :class:`ScanSession`s.  The simulation drives it
with two calls per day:

* :meth:`poll_feeds` — check every strategy for new triggers;
* :meth:`emit_day` — turn each active session's intensity envelope into a
  Poisson packet count and concrete packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import DAY, make_rng, spawn_rngs
from repro.net.addr import IPv6Prefix, split_u64
from repro.net.batch import PacketBatch, probe_batch
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    Packet,
    TcpFlags,
    icmp_echo_request,
    tcp_segment,
    udp_datagram,
)
from repro.obs import get_journal, get_tracer
from repro.obs.registry import get_registry
from repro.scanners.identity import ScannerIdentity, SourceAllocator
from repro.scanners.strategies import (
    ProbeBatch,
    ProbeTarget,
    Strategy,
    targets_to_columns,
)


@dataclass
class ScanSession:
    """One active probing campaign (a batch being executed)."""

    batch: ProbeBatch
    packets_sent: int = 0
    #: Worker slice of the agent's source pool dedicated to this target
    #: (None: draw from the whole pool).
    sources: list[int] | None = None

    def expected_packets(self, day_start: float, day_end: float) -> float:
        """Expected packets in ``[day_start, day_end)``.

        Approximates the envelope's integral with the midpoint rate; the
        per-day envelope changes slowly relative to a day, so this is
        accurate to a few percent.
        """
        effective_start = max(day_start, self.batch.start)
        end = day_end
        if self.batch.cancelled_at is not None:
            end = min(end, self.batch.cancelled_at)
        end = min(end, self.batch.start + self.batch.duration)
        if end <= effective_start:
            return 0.0
        midpoint = 0.5 * (effective_start + end)
        fraction = (end - effective_start) / DAY
        return self.batch.rate_at(midpoint) * fraction


class ScannerAgent:
    """One scanner: identity + strategies + active sessions."""

    def __init__(
        self,
        identity: ScannerIdentity,
        strategies: list[Strategy],
        rng: np.random.Generator | int | None = 0,
        volume_scale: float = 1.0,
        max_sessions: int = 200,
        weekly_amplitude: float = 0.15,
    ):
        self.identity = identity
        self.strategies = list(strategies)
        self._rng = make_rng(rng)
        self.allocator = SourceAllocator(identity, rng=self._rng)
        self.volume_scale = volume_scale
        self.max_sessions = max_sessions
        # Real scanning operations have day-of-week rhythm (jobs pause on
        # weekends, batch restarts on Mondays); a mild sinusoid with a
        # per-agent phase gives the daily series the weekly seasonality
        # the BSTM's seasonal component models.
        self.weekly_amplitude = weekly_amplitude
        self.weekly_phase = float(self._rng.uniform(0, 2 * np.pi))
        self.sessions: list[ScanSession] = []
        self.packets_emitted = 0
        self.sessions_dropped = 0
        #: Stable per-scenario id for ground-truth provenance; assigned by
        #: the scenario at build time (< 0: anonymous, batches unstamped).
        self.agent_id = -1
        self._m_dropped = get_registry().counter("agent.sessions.dropped")

    # -- feeds ------------------------------------------------------------

    def poll_feeds(self, since: float, until: float) -> int:
        """Poll every strategy; returns the number of new sessions."""
        journal = get_journal()
        new = 0
        for strategy in self.strategies:
            for batch in strategy.poll(since, until, self._rng):
                if len(self.sessions) >= self.max_sessions:
                    self.sessions_dropped += 1
                    self._m_dropped.inc()
                    journal.emit(
                        "session_drop",
                        agent=self.agent_id, asn=self.identity.asn,
                        at=batch.start,
                    )
                    continue
                # Trigger-driven batches get a worker slice of the pool;
                # long-running background scans rotate the whole pool.
                slice_sources = (
                    self.allocator.target_slice()
                    if batch.trigger not in ("ambient", "sweep", "tga")
                    else None
                )
                self.sessions.append(ScanSession(
                    batch, sources=slice_sources
                ))
                journal.emit(
                    "session_start",
                    agent=self.agent_id, asn=self.identity.asn,
                    trigger=batch.trigger, at=batch.start,
                )
                new += 1
        return new

    def cancel_prefix(self, prefix: IPv6Prefix, at: float) -> int:
        """Cancel sessions probing ``prefix`` (BGP withdrawal reaction)."""
        n = 0
        for session in self.sessions:
            subject = session.batch.subject_prefix
            if subject is not None and (
                subject == prefix or prefix.contains_prefix(subject)
            ):
                session.batch.cancel(at)
                get_journal().emit(
                    "session_cancel",
                    agent=self.agent_id, asn=self.identity.asn,
                    prefix=str(prefix), at=at,
                )
                n += 1
        return n

    # -- emission -----------------------------------------------------------

    def _packet_for(self, target: ProbeTarget, ts: float,
                    sources: list[int] | None = None,
                    rng: np.random.Generator | None = None) -> Packet:
        rng = self._rng if rng is None else rng
        if sources is not None:
            src = sources[int(rng.integers(len(sources)))]
        else:
            src = self.allocator.source(rng)
        if target.proto == ICMPV6:
            return icmp_echo_request(ts, src, target.address)
        if target.proto == TCP:
            sport = int(rng.integers(32_768, 61_000))
            return tcp_segment(ts, src, target.address, sport, target.dport,
                               TcpFlags.SYN)
        sport = int(rng.integers(32_768, 61_000))
        return udp_datagram(ts, src, target.address, sport, target.dport,
                            payload=b"\x00\x01")

    def _day_plan(
        self, day_start: float, day_end: float,
    ) -> tuple[list[tuple[ScanSession, int, float, float]],
               np.random.Generator]:
        """Draw the day's per-session packet counts and time bounds.

        Counts come from the agent's main stream in session order, so both
        emission paths (:meth:`emit_day` and :meth:`emit_day_batch`) consume
        ``self._rng`` identically and produce *identical* per-day Poisson
        counts under the same seed.  Packet contents are then drawn from a
        spawned per-day child generator — spawning does not advance the
        parent stream — which is what lets the fast path vectorize its draws
        while staying statistically equivalent to the reference.

        Each plan's time bounds are clamped to
        ``min(day_end, cancelled_at, start + duration)``, the same window
        :meth:`ScanSession.expected_packets` integrates over, so cancelled
        or expiring sessions stop emitting at the instant their rate does
        (the §5.3.1 retraction tail).
        """
        day_index = day_start / DAY
        weekly = 1.0 + self.weekly_amplitude * float(
            np.sin(2 * np.pi * day_index / 7.0 + self.weekly_phase)
        )
        plans: list[tuple[ScanSession, int, float, float]] = []
        for session in self.sessions:
            expected = session.expected_packets(day_start, day_end) * (
                self.volume_scale * weekly
            )
            if expected <= 0:
                continue
            n = int(self._rng.poisson(expected))
            if n == 0:
                continue
            lo = max(day_start, session.batch.start)
            hi = day_end
            if session.batch.cancelled_at is not None:
                hi = min(hi, session.batch.cancelled_at)
            hi = min(hi, session.batch.start + session.batch.duration)
            plans.append((session, n, lo, hi))
        return plans, spawn_rngs(self._rng, 1)[0]

    def _retire_sessions(self, day_end: float) -> None:
        """Retire long-dead sessions to bound memory."""
        self.sessions = [
            s for s in self.sessions
            if (s.batch.cancelled_at is None or
                day_end < s.batch.cancelled_at + DAY)
            and day_end < s.batch.start + s.batch.duration + DAY
        ]

    def replay_day(self, day_start: float, day_end: float) -> None:
        """Fast-forward one day: advance streams without emitting packets.

        Checkpoint resume rebuilds the scenario and replays the days
        already covered by the checkpoint.  Replay must consume exactly
        the draws the original day consumed from the agent's *main*
        stream — ``allocator.new_session()`` (the per-session source
        rotation), the per-session Poisson counts, and the per-day child
        spawn inside :meth:`_day_plan` (spawning does not advance the
        parent stream but does advance its spawn counter) — while
        skipping the per-day child's own draws entirely: nothing else
        ever reads that child, so not sampling packet contents leaves
        every later stream untouched.  Session bookkeeping
        (``packets_sent``, retirement) is kept in step so cancellation
        clamps and retirement behave identically after resume.

        Known, accepted drift: :attr:`packets_emitted` is advanced by the
        *planned* counts, which can exceed the emitted count when a
        fallback sampler under-delivers — no report or journal record
        reads this attribute.
        """
        self.allocator.new_session()
        plans, _pkt_rng = self._day_plan(day_start, day_end)
        for session, n, _lo, _hi in plans:
            session.packets_sent += n
            self.packets_emitted += n
        self._retire_sessions(day_end)

    def emit_day(self, day_start: float, day_end: float) -> list[Packet]:
        """Emit this day's probe packets across all active sessions.

        Reference implementation: one :class:`Packet` object per probe.
        The columnar fast path is :meth:`emit_day_batch`.
        """
        self.allocator.new_session()
        plans, pkt_rng = self._day_plan(day_start, day_end)
        packets: list[Packet] = []
        for session, n, lo, hi in plans:
            timestamps = np.sort(pkt_rng.uniform(lo, hi, size=n))
            targets = session.batch.sampler(pkt_rng, n)
            for ts, target in zip(timestamps, targets):
                packets.append(
                    self._packet_for(target, float(ts), session.sources,
                                     pkt_rng)
                )
            session.packets_sent += n
        self._retire_sessions(day_end)
        self.packets_emitted += len(packets)
        return packets

    def emit_day_batch(self, day_start: float, day_end: float) -> PacketBatch:
        """Columnar fast path: the whole day's probes as one batch.

        Draws the identical per-session Poisson counts as :meth:`emit_day`
        (both paths share :meth:`_day_plan`), then vectorizes timestamps,
        targets, sources, and sport draws per session.  Samplers exposing a
        ``sample_batch`` attribute produce columns directly; others fall
        back to per-target materialization via
        :func:`~repro.scanners.strategies.targets_to_columns`.
        """
        self.allocator.new_session()
        plans, pkt_rng = self._day_plan(day_start, day_end)
        span = get_tracer().span("agent.emit_day_batch",
                                 agent=self.agent_id,
                                 asn=self.identity.asn,
                                 sessions=len(plans))
        with span:
            batch = self._emit_plans(plans, pkt_rng, day_end)
        span.set(packets=len(batch))
        return batch

    def _emit_plans(self, plans, pkt_rng, day_end: float) -> PacketBatch:
        parts: list[PacketBatch] = []
        emitted = 0
        for session, n, lo, hi in plans:
            ts = np.sort(pkt_rng.uniform(lo, hi, size=n))
            sampler = session.batch.sampler
            sample_batch = getattr(sampler, "sample_batch", None)
            if sample_batch is not None:
                dst_hi, dst_lo, proto, dport = sample_batch(pkt_rng, n)
            else:
                dst_hi, dst_lo, proto, dport = targets_to_columns(
                    sampler(pkt_rng, n)
                )
                # A sampler may return fewer targets than asked (the scalar
                # zip truncates the same way).
                ts = ts[:len(dst_hi)]
            m = len(dst_hi)
            if session.sources is not None:
                pool_hi, pool_lo = split_u64(session.sources)
                idx = pkt_rng.integers(0, len(session.sources), size=m)
                src_hi, src_lo = pool_hi[idx], pool_lo[idx]
            else:
                src_hi, src_lo = self.allocator.sources_batch(m, pkt_rng)
            sport = pkt_rng.integers(32_768, 61_000, size=m,
                                     dtype=np.uint16)
            parts.append(probe_batch(ts, src_hi, src_lo, dst_hi, dst_lo,
                                     proto, sport, dport))
            session.packets_sent += n
            emitted += m
        self._retire_sessions(day_end)
        self.packets_emitted += emitted
        batch = PacketBatch.concat(parts)
        if self.agent_id >= 0:
            batch = batch.with_origin(self.agent_id)
        return batch
