"""Synthetic IPv6 scanner ecosystem.

Since the real Internet's scanners are unavailable to a reproduction, this
package builds a generative population calibrated to the paper's observed
characteristics (Tables 3/8, Figures 5/6):

* **identities** — each scanner belongs to an AS with a type (hosting/cloud,
  R&E, Internet Scanner, ISP, ...) and allocates source addresses from a
  covering prefix between /128 (one fixed address) and /30 (the
  AlphaStrike-style spread the paper highlights);
* **strategies** — target generation wired to the public data feeds: BGP
  collectors, TLD zone files, CT logs, the IPv6 hitlist, reverse DNS, and a
  pattern-mining TGA for exploratory scanners;
* **agents** — schedule trigger reactions (burst then exponential decay,
  matching Figs 7/8) and emit per-day Poisson packet batches;
* **population** — the calibrated default population builder.
"""

from repro.scanners.identity import AllocationMode, ScannerIdentity, SourceAllocator
from repro.scanners.strategies import (
    BgpWatcher,
    CtLogWatcher,
    HitlistConsumer,
    ProbeBatch,
    ProbeTarget,
    RdnsWalkerStrategy,
    Strategy,
    ZoneFileWatcher,
)
from repro.scanners.tga import PatternTga
from repro.scanners.tga6tree import SixTreeTga
from repro.scanners.entropy_tga import EntropyTga
from repro.scanners.tga_eval import TgaEvaluation, evaluate_tgas
from repro.scanners.agent import ScanSession, ScannerAgent
from repro.scanners.population import PopulationSpec, build_population

__all__ = [
    "AllocationMode",
    "ScannerIdentity",
    "SourceAllocator",
    "Strategy",
    "ProbeTarget",
    "ProbeBatch",
    "BgpWatcher",
    "ZoneFileWatcher",
    "CtLogWatcher",
    "HitlistConsumer",
    "RdnsWalkerStrategy",
    "PatternTga",
    "SixTreeTga",
    "EntropyTga",
    "TgaEvaluation",
    "evaluate_tgas",
    "ScannerAgent",
    "ScanSession",
    "PopulationSpec",
    "build_population",
]
