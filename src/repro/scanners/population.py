"""The calibrated synthetic scanner population.

Builds the agent roster that reproduces NT-A's observed source
characteristics (Tables 3/8, Figures 5/6):

* **heavy hitters** — named archetypes of the paper's top ASNs:
  AMAZON-02-style cloud pingers (huge volume, tens of thousands of source
  addresses clustered in few /64s, ICMP-dominant), CERNET/Tsinghua-style
  R&E explorers (few sources, massive unique-destination TGA scans),
  Hurricane-style ISP scanners, and a DigitalOcean-style CT bot;
* **Internet Scanner ASes** — AlphaStrike-style operations spreading
  per-packet source addresses across an entire /30 (Germany's dominance in
  Fig. 6), TCP-dominant per Fig. 5, plus Shadowserver/
  internet-measurement.com-style fleets;
* **the long tail** — ~140 light scanners across AS categories whose
  trigger subscriptions produce the per-honeyprefix ASN-diversity effects
  (Table 4's delta-ASN of ~25-40 source ASNs/day).

Every AS is registered in the fabric's metadata datasets so the analysis
joins reproduce the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import DAY, make_rng, spawn_rngs
from repro.datasets.asdb import AsCategory, AsRecord
from repro.net.addr import IPv6Prefix
from repro.scanners.agent import ScannerAgent
from repro.scanners.identity import AllocationMode, ScannerIdentity
from repro.scanners.strategies import (
    BgpWatcher,
    CtLogWatcher,
    HitlistConsumer,
    ProtocolProfile,
    RdnsWalkerStrategy,
    ZoneFileWatcher,
)
from repro.scanners.tga import PatternTga

#: Protocol profiles per AS category (Fig. 5's mix).
CATEGORY_PROFILES: dict[AsCategory, ProtocolProfile] = {
    AsCategory.HOSTING_CLOUD: ProtocolProfile(
        icmp_weight=0.96, tcp_weight=0.03, udp_weight=0.01
    ),
    AsCategory.RESEARCH_EDUCATION: ProtocolProfile(
        icmp_weight=0.97, tcp_weight=0.03, udp_weight=0.0
    ),
    AsCategory.INTERNET_SCANNER: ProtocolProfile(
        icmp_weight=0.25, tcp_weight=0.65, udp_weight=0.10,
        tcp_ports=(80, 443, 22, 23, 25, 3389, 8080),
    ),
    AsCategory.ISP_TELECOM: ProtocolProfile(
        icmp_weight=0.85, tcp_weight=0.12, udp_weight=0.03
    ),
    AsCategory.CDN: ProtocolProfile(icmp_weight=0.9, tcp_weight=0.1),
    AsCategory.ENTERPRISE: ProtocolProfile(icmp_weight=0.8, tcp_weight=0.2),
    AsCategory.OTHER: ProtocolProfile(icmp_weight=0.8, tcp_weight=0.2),
}

#: Country mix for the long tail (very roughly Fig. 6's spread).
TAIL_COUNTRIES = ("US", "CN", "DE", "GB", "NL", "FR", "RU", "JP", "BR",
                  "IN", "KR", "CA", "AU", "SG", "IE")
TAIL_COUNTRY_WEIGHTS = (0.25, 0.18, 0.08, 0.07, 0.06, 0.05, 0.05, 0.05,
                        0.04, 0.04, 0.04, 0.03, 0.02, 0.02, 0.02)

TAIL_CATEGORIES = (
    AsCategory.HOSTING_CLOUD,
    AsCategory.ISP_TELECOM,
    AsCategory.RESEARCH_EDUCATION,
    AsCategory.ENTERPRISE,
    AsCategory.INTERNET_SCANNER,
    AsCategory.CDN,
)
TAIL_CATEGORY_WEIGHTS = (0.40, 0.20, 0.15, 0.12, 0.07, 0.06)


@dataclass
class PopulationSpec:
    """Knobs for the population builder.

    ``volume_scale`` scales every emission rate: 1.0 approximates the
    paper's absolute packet volumes (hundreds of millions — do not do this
    on a laptop), the default 1e-3 keeps the full 10-month scenario in the
    hundreds of thousands of packets while preserving every ratio.
    """

    volume_scale: float = 1.0
    n_tail: int = 140
    include_heavy_hitters: bool = True
    include_scanner_ases: bool = True
    include_rdns_walker: bool = True
    #: Base prefix from which tail scanner source prefixes are carved.
    tail_base: IPv6Prefix = field(
        default_factory=lambda: IPv6Prefix.parse("2600::/12")
    )
    #: Rate multipliers, exposed for ablation benchmarks.
    bgp_rate: float = 1.0
    zonefile_rate: float = 1.0
    ctlog_rate: float = 1.0
    hitlist_rate: float = 1.0
    tga_rate: float = 1.0
    #: Scales heavy hitters' source-address pool sizes (the paper's 44k
    #: AMAZON-02 /128s become 4.4k at the default 0.1).
    source_scale: float = 0.1


def _register(fabric, record: AsRecord, prefix: IPv6Prefix) -> None:
    fabric.asdb.register(record)
    fabric.prefix2as.add(prefix, record.asn)
    fabric.geodb.add(prefix, record.country)


def _zone_feed(fabric):
    """Merged new-domain feed across all TLD registries."""

    def feed(since: float, until: float) -> dict[str, float]:
        out: dict[str, float] = {}
        for tld in fabric.registrar.tlds:
            out.update(fabric.registrar.tld(tld).new_domains(since, until))
        return out

    return feed


def _hitlist_seed_source(fabric):
    """Seed feed for TGAs: addresses newly published on the hitlist."""

    def feed(since: float, until: float) -> list[int]:
        return [
            entry.address
            for entry in fabric.hitlist.entries_between(since, until)
            if entry.address is not None
        ]

    return feed


def _collector_prefix_seed_source(fabric, min_collectors: int = 10):
    """Seed feed: first addresses of newly announced, well-propagated
    prefixes.  Hyper-specific announcements visible at only a handful of
    collectors do not make it into TGA seed sets (Fig 10: most scanners
    never pick them up)."""

    def feed(since: float, until: float) -> list[int]:
        return [
            prefix.network | 1
            for prefix, seen_at in fabric.collectors.new_prefixes(
                since, until
            ).items()
            if fabric.collectors.visibility_count(prefix, until)
            >= min_collectors
        ]

    return feed


def _hitlist_removal_source(fabric):
    """Removal feed: addresses delisted by hitlist revalidation."""

    def feed(since: float, until: float) -> list[int]:
        return [
            entry.address
            for entry in fabric.hitlist.entries_between(since, until)
            if entry.removed and entry.address is not None
        ]

    return feed


def _collector_withdrawal_source(fabric):
    """Removal feed: first addresses of withdrawn prefixes."""

    def feed(since: float, until: float) -> list[int]:
        return [
            event.update.prefix.network | 1
            for event in fabric.collectors.visible_updates(since, until)
            if event.is_withdrawal
        ]

    return feed


def build_population(
    fabric,
    spec: PopulationSpec | None = None,
    rng: np.random.Generator | int | None = None,
) -> list[ScannerAgent]:
    """Build the calibrated scanner population against ``fabric``.

    ``fabric`` is an :class:`repro.sim.fabric.InternetFabric`; all strategy
    feeds, AS registrations, and geolocations land there.
    """
    spec = spec or PopulationSpec()
    rng = make_rng(fabric.rng_population if rng is None else rng)
    agents: list[ScannerAgent] = []
    scale = spec.volume_scale
    zone_feed = _zone_feed(fabric)
    # Base key for per-(scanner, prefix) reaction decision streams.  Keyed
    # on the ASN rather than construction draw order so that which
    # announcements a scanner reacts to is pinned by (population seed, AS,
    # prefix) alone — Fig. 10's sporadic bursts survive stream reshuffles.
    decision_base = int(rng.integers(1 << 62))

    def _agent(identity: ScannerIdentity, strategies, prefix: IPv6Prefix,
               record: AsRecord | None = None) -> ScannerAgent:
        _register(fabric, record or AsRecord(
            identity.asn, identity.as_name, identity.category,
            identity.country,
        ), prefix)
        for strategy in strategies:
            if (isinstance(strategy, BgpWatcher)
                    and strategy.decision_seed is None):
                strategy.decision_seed = decision_base + identity.asn
        agent = ScannerAgent(
            identity, strategies,
            rng=spawn_rngs(rng, 1)[0],
            volume_scale=1.0,  # scale baked into strategy rates below
        )
        agents.append(agent)
        return agent

    if spec.include_heavy_hitters:
        _build_heavy_hitters(fabric, spec, rng, _agent, zone_feed)
    if spec.include_scanner_ases:
        _build_scanner_ases(fabric, spec, rng, _agent, zone_feed)
    _build_tail(fabric, spec, rng, _agent, zone_feed)
    _apply_rate_multipliers(agents, spec)
    return agents


def _apply_rate_multipliers(agents: list[ScannerAgent],
                            spec: PopulationSpec) -> None:
    """Scale every strategy's emission rates by the spec's per-channel
    multipliers.  Applying this globally (heavy hitters included) is what
    makes the multipliers usable as ablation knobs: setting
    ``ctlog_rate=0`` silences the whole CT-bot channel."""
    from repro.scanners.strategies import (
        BgpWatcher as _Bgp,
        CtLogWatcher as _Ct,
        HitlistConsumer as _Hl,
        ZoneFileWatcher as _Zone,
    )
    from repro.scanners.tga import PatternTga as _Tga

    multipliers = {
        _Bgp: spec.bgp_rate,
        _Zone: spec.zonefile_rate,
        _Ct: spec.ctlog_rate,
        _Hl: spec.hitlist_rate,
        _Tga: spec.tga_rate,
    }
    channel_rates = {"hitlist": spec.hitlist_rate, "bgp": spec.bgp_rate}
    for agent in agents:
        for strategy in agent.strategies:
            factor = multipliers.get(type(strategy))
            if isinstance(strategy, _Tga):
                # A TGA inherits the fate of the channel seeding it:
                # silencing the hitlist silences hitlist-seeded TGAs.
                factor = spec.tga_rate * channel_rates.get(
                    strategy.seed_channel, 1.0
                )
            if factor is None or factor == 1.0:
                continue
            strategy.peak_rate *= factor
            strategy.floor_rate *= factor
            if hasattr(strategy, "alias_probe_rate"):
                strategy.alias_probe_rate *= factor


# -- heavy hitters --------------------------------------------------------


def _build_heavy_hitters(fabric, spec, rng, _agent, zone_feed) -> None:
    scale = spec.volume_scale
    cloud = CATEGORY_PROFILES[AsCategory.HOSTING_CLOUD]
    re_profile = CATEGORY_PROFILES[AsCategory.RESEARCH_EDUCATION]

    # AMAZON-02: the dominant cloud pinger.  Tens of thousands of source
    # /128s clustered into a few hundred /64s; reacts to everything.
    amazon_prefix = IPv6Prefix.parse("2620:108::/32")
    _agent(
        ScannerIdentity(
            asn=29014, as_name="AMAZON-02",
            category=AsCategory.HOSTING_CLOUD, country="US",
            source_prefix=amazon_prefix,
            allocation=AllocationMode.SMALL_POOL,
            pool_size=max(2, int(44_000 * spec.source_scale)),
            pool_subnets=336,
            sources_per_target=max(2, int(44_000 * spec.source_scale) // 26),
        ),
        [
            BgpWatcher(fabric.collectors, cloud,
                       min_collectors=10,
                       peak_rate=700_000 * scale, floor_rate=55_000 * scale,
                       decay_tau=15 * DAY, low_weight=0.9),
            HitlistConsumer(fabric.hitlist,
                            interaction_oracle=fabric.interaction_level,
                            peak_rate=380_000 * scale,
                            floor_rate=130_000 * scale,
                            decay_tau=25 * DAY,
                            alias_probe_rate=450_000 * scale),
        ],
        amazon_prefix,
    )

    # CNGI-CERNET: R&E explorer — 46 sources, enormous unique-target TGA.
    cernet_prefix = IPv6Prefix.parse("2001:da8::/32")
    _agent(
        ScannerIdentity(
            asn=23910, as_name="CNGI-CERNET",
            category=AsCategory.RESEARCH_EDUCATION, country="CN",
            source_prefix=cernet_prefix,
            allocation=AllocationMode.SMALL_POOL, pool_size=46,
            pool_subnets=4,
        ),
        [
            PatternTga(_hitlist_seed_source(fabric), re_profile,
                       removal_source=_hitlist_removal_source(fabric),
                       seed_channel="hitlist",
                       peak_rate=5_000_000 * scale,
                       floor_rate=1_700_000 * scale,
                       decay_tau=30 * DAY),
            PatternTga(_collector_prefix_seed_source(fabric), re_profile,
                       removal_source=_collector_withdrawal_source(fabric),
                       seed_channel="bgp",
                       peak_rate=2_200_000 * scale,
                       floor_rate=600_000 * scale,
                       decay_tau=40 * DAY),
        ],
        cernet_prefix,
    )

    # AMAZON-AES: the smaller Amazon backbone.
    aes_prefix = IPv6Prefix.parse("2406:da00::/32")
    _agent(
        ScannerIdentity(
            asn=14618, as_name="AMAZON-AES",
            category=AsCategory.HOSTING_CLOUD, country="US",
            source_prefix=aes_prefix,
            allocation=AllocationMode.SMALL_POOL,
            pool_size=max(2, int(11_000 * spec.source_scale)),
            pool_subnets=25,
            sources_per_target=max(2, int(11_000 * spec.source_scale) // 26),
        ),
        [
            BgpWatcher(fabric.collectors, cloud,
                       min_collectors=10,
                       peak_rate=40_000 * scale, floor_rate=2_500 * scale,
                       decay_tau=12 * DAY, low_weight=0.9),
            HitlistConsumer(fabric.hitlist,
                            interaction_oracle=fabric.interaction_level,
                            peak_rate=20_000 * scale,
                            floor_rate=6_000 * scale,
                            alias_probe_rate=24_000 * scale),
        ],
        aes_prefix,
    )

    # TSINGHUA: the second R&E explorer, 5 sources.
    tsinghua_prefix = IPv6Prefix.parse("2402:f000::/32")
    _agent(
        ScannerIdentity(
            asn=45576, as_name="TSINGHUA-UNIVERSITY",
            category=AsCategory.RESEARCH_EDUCATION, country="CN",
            source_prefix=tsinghua_prefix,
            allocation=AllocationMode.SMALL_POOL, pool_size=5,
        ),
        [PatternTga(_hitlist_seed_source(fabric), re_profile,
                    removal_source=_hitlist_removal_source(fabric),
                    seed_channel="hitlist",
                    peak_rate=250_000 * scale,
                    floor_rate=60_000 * scale,
                    decay_tau=35 * DAY)],
        tsinghua_prefix,
    )

    # HURRICANE: transit ISP with a broad, moderate scanning footprint.
    hurricane_prefix = IPv6Prefix.parse("2001:470::/32")
    _agent(
        ScannerIdentity(
            asn=6939, as_name="HURRICANE",
            category=AsCategory.ISP_TELECOM, country="US",
            source_prefix=hurricane_prefix,
            allocation=AllocationMode.SMALL_POOL,
            pool_size=max(2, int(3_500 * spec.source_scale)),
            pool_subnets=136,
            sources_per_target=max(2, int(3_500 * spec.source_scale) // 26),
        ),
        [
            BgpWatcher(fabric.collectors,
                       CATEGORY_PROFILES[AsCategory.ISP_TELECOM],
                       min_collectors=10,
                       peak_rate=15_000 * scale, floor_rate=1_200 * scale,
                       decay_tau=12 * DAY),
            ZoneFileWatcher(zone_feed, fabric.resolver,
                            peak_rate=5_000 * scale, floor_rate=400 * scale),
        ],
        hurricane_prefix,
    )

    # DIGITALOCEAN-style CT bot: the 7-second reactor of §5.4.
    do_prefix = IPv6Prefix.parse("2604:a880::/32")
    _agent(
        ScannerIdentity(
            asn=14061, as_name="DIGITALOCEAN",
            category=AsCategory.HOSTING_CLOUD, country="US",
            source_prefix=do_prefix,
            allocation=AllocationMode.SMALL_POOL, pool_size=12,
        ),
        [CtLogWatcher(fabric.ct_log, fabric.resolver,
                      interaction_oracle=fabric.interaction_level,
                      peak_rate=4_000 * scale,
                      floor_rate=250 * scale,
                      decay_tau=40 * DAY,
                      reaction_delay=7.0)],
        do_prefix,
    )


# -- dedicated Internet Scanner ASes -----------------------------------------


def _build_scanner_ases(fabric, spec, rng, _agent, zone_feed) -> None:
    scale = spec.volume_scale
    scanner_profile = CATEGORY_PROFILES[AsCategory.INTERNET_SCANNER]

    # ALPHASTRIKE-style: per-packet sources across an entire /30 (!), the
    # reason Germany tops the Fig. 6 country ranking.
    alpha_prefix = IPv6Prefix.parse("2a0e:5c00::/30")
    _agent(
        ScannerIdentity(
            asn=208843, as_name="ALPHASTRIKE-LABS",
            category=AsCategory.INTERNET_SCANNER, country="DE",
            source_prefix=alpha_prefix,
            allocation=AllocationMode.PER_PACKET,
        ),
        [
            BgpWatcher(fabric.collectors, scanner_profile,
                       min_collectors=10,
                       peak_rate=60_000 * scale, floor_rate=22_000 * scale,
                       decay_tau=25 * DAY, low_weight=0.4),
            ZoneFileWatcher(zone_feed, fabric.resolver,
                            ping_ratio=1,
                            peak_rate=5_000 * scale, floor_rate=1_200 * scale),
            HitlistConsumer(fabric.hitlist,
                            interaction_oracle=fabric.interaction_level,
                            icmp_weight=1,
                            peak_rate=5_000 * scale, floor_rate=1_500 * scale,
                            alias_probe_rate=4_000 * scale),
        ],
        alpha_prefix,
    )
    fabric.asdb.override(208843, AsCategory.INTERNET_SCANNER)

    # internet-measurement.com-style AS (Table 8 rank #8).
    im_prefix = IPv6Prefix.parse("2a0c:9a40::/32")
    _agent(
        ScannerIdentity(
            asn=211298, as_name="INTERNET-MEASUREMENT",
            category=AsCategory.INTERNET_SCANNER, country="DE",
            source_prefix=im_prefix,
            allocation=AllocationMode.PER_SESSION,
        ),
        [
            BgpWatcher(fabric.collectors, scanner_profile,
                       min_collectors=10,
                       peak_rate=4_000 * scale, floor_rate=1_200 * scale,
                       decay_tau=30 * DAY),
            CtLogWatcher(fabric.ct_log, fabric.resolver,
                         interaction_oracle=fabric.interaction_level,
                         ping_ratio=1,
                         peak_rate=300 * scale, floor_rate=40 * scale,
                         reaction_delay=120.0),
        ],
        im_prefix,
    )
    fabric.asdb.override(211298, AsCategory.INTERNET_SCANNER)

    # Shadowserver-style benign scanner.
    shadow_prefix = IPv6Prefix.parse("2620:1f7::/32")
    _agent(
        ScannerIdentity(
            asn=63931, as_name="SHADOWSERVER",
            category=AsCategory.INTERNET_SCANNER, country="US",
            source_prefix=shadow_prefix,
            allocation=AllocationMode.SMALL_POOL, pool_size=64,
        ),
        [
            BgpWatcher(fabric.collectors, scanner_profile,
                       min_collectors=10,
                       peak_rate=1_000 * scale, floor_rate=300 * scale,
                       decay_tau=30 * DAY),
            HitlistConsumer(fabric.hitlist,
                            interaction_oracle=fabric.interaction_level,
                            icmp_weight=1,
                            peak_rate=500 * scale, floor_rate=120 * scale,
                            alias_probe_rate=400 * scale),
        ],
        shadow_prefix,
    )
    fabric.asdb.override(63931, AsCategory.INTERNET_SCANNER)

    if spec.include_rdns_walker:
        # A research scanner walking ip6.arpa (Zhao et al.'s finding).
        rdns_prefix = IPv6Prefix.parse("2001:67c:1234::/48")
        _agent(
            ScannerIdentity(
                asn=29108, as_name="LEITWERT-RESEARCH",
                category=AsCategory.INTERNET_SCANNER, country="DE",
                source_prefix=rdns_prefix,
                allocation=AllocationMode.SMALL_POOL, pool_size=11,
            ),
            [RdnsWalkerStrategy(
                fabric.reverse_zone,
                watched=[],  # scenario appends the telescope's /32
                peak_rate=800 * scale, floor_rate=100 * scale,
            )],
            rdns_prefix,
        )
        fabric.asdb.override(29108, AsCategory.INTERNET_SCANNER)


# -- the long tail -------------------------------------------------------------


def _build_tail(fabric, spec, rng, _agent, zone_feed) -> None:
    scale = spec.volume_scale
    category_p = np.array(TAIL_CATEGORY_WEIGHTS)
    category_p = category_p / category_p.sum()
    country_p = np.array(TAIL_COUNTRY_WEIGHTS)
    country_p = country_p / country_p.sum()

    for i in range(spec.n_tail):
        category = TAIL_CATEGORIES[int(rng.choice(
            len(TAIL_CATEGORIES), p=category_p
        ))]
        country = TAIL_COUNTRIES[int(rng.choice(
            len(TAIL_COUNTRIES), p=country_p
        ))]
        profile = CATEGORY_PROFILES[category]
        asn = 400_000 + i
        # Carve a /32 per tail AS out of the tail base prefix.
        prefix = spec.tail_base.subnet_at(i, 32)
        mode_draw = rng.random()
        if mode_draw < 0.6:
            allocation, pool = AllocationMode.FIXED, 1
        elif mode_draw < 0.9:
            allocation, pool = AllocationMode.SMALL_POOL, int(
                rng.integers(2, 9)
            )
        else:
            allocation, pool = AllocationMode.PER_SESSION, 1

        strategies = []
        if rng.random() < 0.55:
            if rng.random() < 0.8:
                # Mainstream: only reacts to well-propagated routes.
                strategies.append(BgpWatcher(
                    fabric.collectors, profile,
                    min_collectors=10,
                    peak_rate=float(rng.uniform(600, 5_000)) * scale,
                    floor_rate=float(rng.uniform(100, 500)) * scale,
                    decay_tau=float(rng.uniform(8, 25)) * DAY,
                    reaction_delay=float(rng.uniform(2, 48)) * 3_600.0,
                ))
            else:
                # Sporadic burst scanner: accepts hyper-specifics seen at a
                # handful of collectors, hits a random subset hard and
                # briefly — Fig 10's >80k-packet mode (one /61 honeyprefix
                # took 10M packets in a single day).
                strategies.append(BgpWatcher(
                    fabric.collectors, profile,
                    min_collectors=1,
                    attention_probability=0.02,
                    peak_rate=float(rng.uniform(300_000, 1_500_000)) * scale,
                    floor_rate=0.0,
                    decay_tau=float(rng.uniform(0.5, 2.0)) * DAY,
                    reaction_delay=float(rng.uniform(2, 120)) * 3_600.0,
                ))
        is_scanner = category is AsCategory.INTERNET_SCANNER
        if rng.random() < 0.50:
            strategies.append(ZoneFileWatcher(
                zone_feed, fabric.resolver,
                ping_ratio=1 if is_scanner else 4,
                peak_rate=float(rng.uniform(250, 2_000)) * scale,
                floor_rate=float(rng.uniform(50, 300)) * scale,
                reaction_delay=float(rng.uniform(4, 72)) * 3_600.0,
            ))
        if rng.random() < 0.30:
            strategies.append(CtLogWatcher(
                fabric.ct_log, fabric.resolver,
                interaction_oracle=fabric.interaction_level,
                ping_ratio=1 if is_scanner else 4,
                peak_rate=float(rng.uniform(100, 700)) * scale,
                floor_rate=float(rng.uniform(25, 130)) * scale,
                reaction_delay=float(rng.uniform(30, 7_200)),
            ))
        if rng.random() < 0.30 or not strategies:
            strategies.append(HitlistConsumer(
                fabric.hitlist,
                interaction_oracle=fabric.interaction_level,
                icmp_weight=1 if is_scanner else None,
                peak_rate=float(rng.uniform(150, 1_300)) * scale,
                floor_rate=float(rng.uniform(30, 260)) * scale,
                alias_probe_rate=float(rng.uniform(150, 1_000)) * scale,
            ))
        _agent(
            ScannerIdentity(
                asn=asn, as_name=f"TAIL-AS{asn}",
                category=category, country=country,
                source_prefix=prefix, allocation=allocation, pool_size=pool,
            ),
            strategies,
            prefix,
        )

    # A handful of curious low-visibility probers: they do notice
    # hyper-specific announcements (seen at only ~5 collectors) but send
    # just a trickle — Fig 10's low mode.
    for j in range(6):
        asn = 410_000 + j
        prefix = spec.tail_base.subnet_at(2_000 + j, 32)
        _agent(
            ScannerIdentity(
                asn=asn, as_name=f"CURIOUS-AS{asn}",
                category=AsCategory.RESEARCH_EDUCATION, country="DE",
                source_prefix=prefix, allocation=AllocationMode.FIXED,
            ),
            [BgpWatcher(
                fabric.collectors,
                CATEGORY_PROFILES[AsCategory.RESEARCH_EDUCATION],
                min_collectors=1,
                attention_probability=0.7,
                peak_rate=float(rng.uniform(2_000, 10_000)) * scale,
                floor_rate=float(rng.uniform(100, 400)) * scale,
                decay_tau=float(rng.uniform(2, 6)) * DAY,
                reaction_delay=float(rng.uniform(6, 96)) * 3_600.0,
            )],
            prefix,
        )
