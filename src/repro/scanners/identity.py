"""Scanner identities and source-address allocation.

The paper's blocklisting discussion hinges on *how much address space a
scanner spreads its sources over*: some cloud scanners used a single /96,
AlphaStrike-style operations rotated across an entire /30, CERNET used just
46 fixed addresses.  :class:`SourceAllocator` reproduces those behaviors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng
from repro.datasets.asdb import AsCategory
from repro.net.addr import IPv6Prefix, random_addresses_u64, split_u64


class AllocationMode(enum.Enum):
    """How a scanner draws source addresses from its pool prefix."""

    #: One fixed address for everything.
    FIXED = "fixed"
    #: A small fixed set of addresses, round-robin (CERNET's 46).
    SMALL_POOL = "small_pool"
    #: A fresh random address per scan session (evades /128 blocklists).
    PER_SESSION = "per_session"
    #: A fresh random address per packet (evades everything short of
    #: prefix aggregation — the reason Figs 1/2 aggregate to /64 and /48).
    PER_PACKET = "per_packet"


@dataclass(frozen=True, slots=True)
class ScannerIdentity:
    """Who a scanner is: its AS, type, geography, and source pool."""

    asn: int
    as_name: str
    category: AsCategory
    country: str
    source_prefix: IPv6Prefix
    allocation: AllocationMode
    pool_size: int = 1
    #: When > 0, pool addresses cluster into this many /64 subnets —
    #: Table 3's signature shape (44k /128s inside just 336 /64s for
    #: AMAZON-02, 46 /128s in 4 /64s for CERNET).
    pool_subnets: int = 0
    #: When > 0, each scan target (probe batch) is worked by a random slice
    #: of this many pool addresses, the way cloud scanners shard jobs over
    #: workers.  This is what keeps 95% of /128 sources confined to <= 2
    #: /48 prefixes (Fig. 9) even for ASes with tens of thousands of
    #: source addresses.
    sources_per_target: int = 0

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive: {self.asn}")
        if self.pool_size < 1:
            raise ValueError(f"pool size must be >= 1: {self.pool_size}")
        if self.pool_subnets < 0:
            raise ValueError(f"pool_subnets must be >= 0: {self.pool_subnets}")


class SourceAllocator:
    """Draws source addresses for one scanner per its allocation mode."""

    def __init__(self, identity: ScannerIdentity,
                 rng: np.random.Generator | int | None = 0):
        self.identity = identity
        self._rng = make_rng(rng)
        mode = identity.allocation
        if mode is AllocationMode.FIXED:
            self._pool = [identity.source_prefix.random_address(self._rng).value]
        elif mode is AllocationMode.SMALL_POOL:
            self._pool = self._build_pool()
        else:
            self._pool = []
        self._session_addr: int | None = None
        self._pool_cols: tuple[np.ndarray, np.ndarray] | None = None
        self.used: set[int] = set(self._pool)

    def _build_pool(self) -> list[int]:
        """Build the SMALL_POOL address set, clustering into /64 subnets
        when the identity asks for it."""
        identity = self.identity
        prefix = identity.source_prefix
        if identity.pool_subnets <= 0:
            return [
                prefix.random_address(self._rng).value
                for _ in range(identity.pool_size)
            ]
        if prefix.length > 64:
            raise ValueError(
                f"pool_subnets requires a source prefix of /64 or shorter, "
                f"got {prefix}"
            )
        subnet_bits = 64 - prefix.length
        n_subnets = min(identity.pool_subnets, 1 << min(subnet_bits, 30))
        subnets = {
            int(self._rng.integers(0, 1 << subnet_bits))
            for _ in range(n_subnets)
        }
        subnet_list = sorted(subnets)
        pool = []
        for i in range(identity.pool_size):
            subnet = subnet_list[i % len(subnet_list)]
            host = int(self._rng.integers(1, 1 << 32))
            pool.append(prefix.network | (subnet << 64) | host)
        return pool

    def new_session(self) -> None:
        """Start a new scan session (PER_SESSION modes pick a new source)."""
        if self.identity.allocation is AllocationMode.PER_SESSION:
            addr = self.identity.source_prefix.random_address(self._rng).value
            self._session_addr = addr
            self.used.add(addr)

    def target_slice(self) -> list[int] | None:
        """A per-target worker slice of the pool, or None for no slicing."""
        k = self.identity.sources_per_target
        if k <= 0 or not self._pool or k >= len(self._pool):
            return None
        idx = self._rng.choice(len(self._pool), size=k, replace=False)
        return [self._pool[int(i)] for i in idx]

    def source(self, rng: np.random.Generator | None = None) -> int:
        """Draw the source address for the next packet.

        ``rng`` overrides the allocator's own stream for the random modes,
        which lets :class:`~repro.scanners.agent.ScannerAgent` draw packet
        contents from a per-day child generator (see ``_day_plan``).
        """
        rng = self._rng if rng is None else rng
        mode = self.identity.allocation
        if mode is AllocationMode.FIXED:
            return self._pool[0]
        if mode is AllocationMode.SMALL_POOL:
            return self._pool[int(rng.integers(len(self._pool)))]
        if mode is AllocationMode.PER_SESSION:
            if self._session_addr is None:
                self.new_session()
            return self._session_addr
        # PER_PACKET
        addr = self.identity.source_prefix.random_address(rng).value
        self.used.add(addr)
        return addr

    def sources_batch(self, n: int, rng: np.random.Generator | None = None,
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` source addresses as (hi, lo) uint64 columns.

        The columnar counterpart of calling :meth:`source` ``n`` times: the
        same pool/session/per-packet semantics apply, only the draws are
        vectorized.  PER_PACKET draws still feed :attr:`used` so blocklist
        accounting matches the scalar path.
        """
        rng = self._rng if rng is None else rng
        mode = self.identity.allocation
        if mode is AllocationMode.FIXED:
            addr = self._pool[0]
            return (np.full(n, (addr >> 64) & 0xFFFFFFFFFFFFFFFF,
                            dtype=np.uint64),
                    np.full(n, addr & 0xFFFFFFFFFFFFFFFF, dtype=np.uint64))
        if mode is AllocationMode.SMALL_POOL:
            pool_hi, pool_lo = self._pool_columns()
            idx = rng.integers(0, len(self._pool), size=n)
            return pool_hi[idx], pool_lo[idx]
        if mode is AllocationMode.PER_SESSION:
            if self._session_addr is None:
                self.new_session()
            addr = self._session_addr
            return (np.full(n, (addr >> 64) & 0xFFFFFFFFFFFFFFFF,
                            dtype=np.uint64),
                    np.full(n, addr & 0xFFFFFFFFFFFFFFFF, dtype=np.uint64))
        # PER_PACKET
        hi, lo = random_addresses_u64(self.identity.source_prefix, rng, n)
        self.used.update(
            ((hi.astype(object) << 64) | lo.astype(object)).tolist()
        )
        return hi, lo

    def _pool_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """The SMALL_POOL addresses as cached (hi, lo) columns."""
        cols = self._pool_cols
        if cols is None:
            cols = split_u64(self._pool)
            self._pool_cols = cols
        return cols
