"""Process-pool experiment executor.

:func:`run_experiments` is the parallel counterpart of
:func:`repro.experiments.report.run_all`: it partitions the selected
experiment ids into *standalone* drivers (fig1/fig2/fig13, table2/5/6/7 —
they build their own CDN vantage or need no data at all) and *scenario*
consumers (everything analyzing the shared telescope run), obtains the
scenario result once (from the on-disk cache when one is configured),
and fans the per-experiment report sections out over a
``ProcessPoolExecutor``.

Determinism contract
--------------------
The combined report is **byte-identical for every ``jobs`` value**:

* sections are assembled in the requested id order, never completion
  order;
* workers receive a frozen, picklable copy of the one shared scenario
  result — the same arrays the serial path analyzes;
* every random draw inside a driver is seeded from the experiment
  configuration (fixed per-driver seeds), never from worker identity or
  scheduling, so where a section runs cannot change its bytes.

Telemetry from worker processes is not lost: each worker installs its own
:class:`MetricsRegistry`/:class:`Tracer` when the parent has them enabled
and ships a snapshot back; the parent folds the snapshots in via
:meth:`MetricsRegistry.merge` and re-parents the worker spans under one
``executor`` root span (:meth:`Tracer.adopt`).
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.exec.freeze import freeze_result
from repro.obs import MetricsRegistry, Tracer, get_registry, get_tracer
from repro.sim.runner import ScenarioResult, run_scenario

# repro.experiments is imported inside functions throughout this module:
# its jobs-aware drivers import repro.exec.parallel, so a module-scope
# import here would close an import cycle through the package __init__s.


class UnknownExperimentError(KeyError):
    """Raised for experiment ids that are not in the registry."""

    def __init__(self, unknown: list[str]):
        from repro.experiments import EXPERIMENTS

        self.unknown = list(unknown)
        super().__init__(
            f"unknown experiment id(s): {', '.join(self.unknown)} "
            f"(known: {', '.join(sorted(EXPERIMENTS))}, or 'all')"
        )

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


def resolve_ids(ids) -> list[str]:
    """Expand ``'all'``/None and validate against the registry."""
    from repro.experiments import EXPERIMENTS

    ids = list(EXPERIMENTS) if ids in (None, ["all"], "all") else list(ids)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise UnknownExperimentError(unknown)
    return ids


def partition_ids(ids) -> tuple[list[str], list[str]]:
    """Split ids into (standalone, scenario-consuming), id order kept."""
    from repro.experiments import EXPERIMENTS

    standalone = [i for i in ids if not EXPERIMENTS[i][1]]
    scenario = [i for i in ids if EXPERIMENTS[i][1]]
    return standalone, scenario


@dataclass
class _SectionOutcome:
    """What one worker ships back for one experiment section."""

    experiment_id: str
    text: str
    metrics: dict | None = None
    spans: list = field(default_factory=list)


def _render_in_worker(
    experiment_id: str,
    frozen_result: ScenarioResult | None,
    want_metrics: bool,
    want_trace: bool,
    jobs: int = 1,
) -> _SectionOutcome:
    """Worker entry point: render one section under fresh obs layers.

    Module-level (picklable) and self-contained: the worker installs its
    own registry/tracer scoped to this one section, so concurrent workers
    never share mutable telemetry state, and returns plain picklable data.
    """
    from repro.experiments.report import render_section
    from repro.obs import use_registry, use_tracer

    registry = MetricsRegistry() if want_metrics else None
    tracer = Tracer() if want_trace else None
    with use_registry(registry), use_tracer(tracer):
        text = render_section(experiment_id, frozen_result, jobs=jobs)
    return _SectionOutcome(
        experiment_id=experiment_id,
        text=text,
        metrics=registry.snapshot() if registry else None,
        spans=tracer.export_spans() if tracer else [],
    )


def run_experiments(
    ids=None,
    config=None,
    jobs: int = 1,
    cache_dir=None,
    output_path=None,
    result: ScenarioResult | None = None,
) -> str:
    """Run the selected experiments, ``jobs`` sections at a time.

    ``config`` parameterizes the shared scenario run when any selected
    experiment consumes one (ignored when ``result`` is passed in);
    ``cache_dir`` routes that run through the
    :class:`~repro.exec.cache.ScenarioCache`.  Returns the combined
    report; with ``output_path`` also writes it.
    """
    from repro.experiments import EXPERIMENTS
    from repro.experiments.report import render_header, render_section

    ids = resolve_ids(ids)
    standalone, scenario_ids = partition_ids(ids)
    registry = get_registry()
    tracer = get_tracer()

    if scenario_ids and result is None:
        result = run_scenario(config, cache_dir=cache_dir)

    sections: dict[str, str] = {}
    if jobs <= 1:
        for experiment_id in ids:
            sections[experiment_id] = render_section(
                experiment_id,
                result if EXPERIMENTS[experiment_id][1] else None,
            )
    else:
        # A single selected section cannot fan out across experiments:
        # hand the whole budget to the driver instead (table4/fig7/fig8/
        # fig10 parallelize their independent estimations internally).
        inner_jobs = jobs if len(ids) == 1 else 1
        frozen = freeze_result(result) if scenario_ids else None
        # Standalone drivers first: they need no scenario payload, so
        # their submissions are cheapest and fill workers while the
        # (larger) frozen-result pickles stream out.
        order = [*standalone, *scenario_ids]
        with tracer.span("executor", jobs=jobs, sections=len(ids)) as root, \
                ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
            futures = {
                pool.submit(
                    _render_in_worker,
                    experiment_id,
                    frozen if EXPERIMENTS[experiment_id][1] else None,
                    registry.enabled,
                    tracer.enabled,
                    inner_jobs,
                ): experiment_id
                for experiment_id in order
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    outcome = future.result()
                    sections[outcome.experiment_id] = outcome.text
                    if outcome.metrics is not None:
                        registry.merge(outcome.metrics)
                    if outcome.spans:
                        tracer.adopt(outcome.spans, parent=root)

    header = render_header(result)
    report = header + "".join(sections[experiment_id] for experiment_id in ids)
    if output_path is not None:
        with open(output_path, "w") as stream:
            stream.write(report)
    return report
