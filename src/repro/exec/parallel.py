"""Deterministic process-pool mapping for embarrassingly parallel stages.

:func:`parallel_map` is the one fan-out primitive the executor and the
jobs-aware experiment drivers share.  Its contract:

* results come back **in task order**, never completion order, so callers
  that assemble reports or tables from the mapped results produce
  byte-identical output for every ``jobs`` value;
* ``jobs <= 1`` (or a single task) runs inline in the calling process —
  the serial path and the parallel path execute the *same* function on the
  *same* arguments, so there is no separate code path to drift;
* tasks must be picklable module-level callables with picklable arguments
  (the usual ``ProcessPoolExecutor`` rules); worker exceptions propagate
  to the caller unchanged.

Determinism note: any randomness a task needs must arrive *in its
arguments* (a seed derived from the experiment configuration), never from
worker identity or scheduling order — that rule is what makes the output
independent of ``jobs``.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def process_context():
    """The multiprocessing context worker fan-out uses.

    Prefers ``fork`` (the shard workers rebuild their world from the
    config either way, but fork skips re-importing the package and starts
    in milliseconds); falls back to the platform default where fork is
    unavailable.  Centralized so every in-repo fan-out picks the same
    start method.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def parallel_map(
    fn: Callable[..., T],
    argument_tuples: Sequence[tuple],
    jobs: int = 1,
) -> list[T]:
    """Apply ``fn(*args)`` to every tuple; results in task order."""
    tasks = list(argument_tuples)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(*args) for args in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, *args) for args in tasks]
        return [future.result() for future in futures]
