"""Parallel execution and result caching for the reproduction suite.

Three coordinated pieces, in the shape of a training/inference stack's
data-parallel + artifact-cache tier:

* :mod:`repro.exec.pool` — :func:`run_experiments`, the process-pool
  experiment scheduler (``python -m repro experiment all --jobs N``);
* :mod:`repro.exec.cache` — :class:`ScenarioCache`, the content-addressed
  on-disk store of frozen scenario results (``--cache DIR``);
* :mod:`repro.exec.parallel` — :func:`parallel_map`, the deterministic
  fan-out primitive shared with the jobs-aware experiment drivers
  (``table4``/``fig7``/``fig8``/``fig10``).

All three uphold one determinism contract: output bytes depend only on the
configuration (seeds included), never on ``jobs``, worker identity, or
cache state.  See the "Parallel execution & scenario cache" section of
``docs/ARCHITECTURE.md``.
"""

from repro.exec.cache import CACHE_SCHEMA_VERSION, ScenarioCache
from repro.exec.freeze import (
    FrozenFabric,
    FrozenScenario,
    freeze_result,
    freeze_scenario,
)
from repro.exec.parallel import parallel_map
from repro.exec.pool import (
    UnknownExperimentError,
    partition_ids,
    resolve_ids,
    run_experiments,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "FrozenFabric",
    "FrozenScenario",
    "ScenarioCache",
    "UnknownExperimentError",
    "freeze_result",
    "freeze_scenario",
    "parallel_map",
    "partition_ids",
    "resolve_ids",
    "run_experiments",
]
