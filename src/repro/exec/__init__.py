"""Parallel execution and result caching for the reproduction suite.

Three coordinated pieces, in the shape of a training/inference stack's
data-parallel + artifact-cache tier:

* :mod:`repro.exec.pool` — :func:`run_experiments`, the process-pool
  experiment scheduler (``python -m repro experiment all --jobs N``);
* :mod:`repro.exec.cache` — :class:`ScenarioCache`, the content-addressed
  on-disk store of frozen scenario results (``--cache DIR``);
* :mod:`repro.exec.parallel` — :func:`parallel_map`, the deterministic
  fan-out primitive shared with the jobs-aware experiment drivers
  (``table4``/``fig7``/``fig8``/``fig10``);
* :mod:`repro.exec.shard` — :class:`ShardPool`, intra-scenario agent
  sharding (``python -m repro run --jobs N``);
* the checkpoint layer in :mod:`repro.exec.freeze` —
  :func:`save_checkpoint`/:func:`load_checkpoint`, resumable engine-state
  snapshots at day boundaries (``--checkpoint``/``--resume``).

All three uphold one determinism contract: output bytes depend only on the
configuration (seeds included), never on ``jobs``, worker identity, or
cache state.  See the "Parallel execution & scenario cache" section of
``docs/ARCHITECTURE.md``.
"""

from repro.exec.cache import (
    CACHE_SCHEMA_VERSION,
    CacheEntryInfo,
    PINS_FILE,
    ScenarioCache,
)
from repro.exec.freeze import (
    FrozenFabric,
    FrozenScenario,
    ScenarioCheckpoint,
    capture_checkpoint,
    checkpoint_path,
    freeze_result,
    freeze_scenario,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.exec.parallel import parallel_map, process_context
from repro.exec.pool import (
    UnknownExperimentError,
    partition_ids,
    resolve_ids,
    run_experiments,
)
from repro.exec.shard import ShardPool, ShardWorkerError, run_sharded_days

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheEntryInfo",
    "PINS_FILE",
    "FrozenFabric",
    "FrozenScenario",
    "ScenarioCache",
    "ScenarioCheckpoint",
    "ShardPool",
    "ShardWorkerError",
    "UnknownExperimentError",
    "capture_checkpoint",
    "checkpoint_path",
    "freeze_result",
    "freeze_scenario",
    "load_checkpoint",
    "parallel_map",
    "partition_ids",
    "process_context",
    "resolve_ids",
    "restore_checkpoint",
    "run_experiments",
    "run_sharded_days",
    "save_checkpoint",
]
