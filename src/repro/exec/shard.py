"""Intra-scenario process sharding: one run, replicated worker worlds.

The experiment pool (:mod:`repro.exec.pool`) parallelizes *across*
scenario runs; this module parallelizes *inside* one.  ``jobs`` persistent
workers each build the identical :class:`~repro.sim.scenario.PaperScenario`
(construction is deterministic under the config seed) and run the day loop,
but each polls, emits, and dispatches only the agents whose index is
congruent to its shard number — every packet is simulated exactly once.

Why replication is sound: world evolution (engine events, hitlist cycles,
BGP collectors, honeyprefix triggers) depends only on the config seed,
never on emitted traffic or on which agents polled, so every replica walks
the same world; and every poll/emission draw comes from a per-agent RNG or
a key-derived decision stream, so a shard's draws are untouched by the
other shards' absence.  The merging parent runs its own replica —
engine-only, it never polls — to produce the honeyprefix/fabric surface
and the engine-phase journal records (deploys, retractions).

**Byte-identity contract**: the merged journal, capture records, and
dispatch counters are identical, byte for byte, to a serial run's.  The
subtle part is journal order.  A serial day writes: engine-event records
(deploy/retract/session_cancel, in event order, cancels in agent order
within an event), then each agent's poll records in agent order, then the
day record.  Workers therefore tag engine-phase records with the engine's
processed-event count — identical across replicas because every replica
processes the identical event sequence — and the parent sort-merges on
``(event ordinal, agent index, emission order)``, with its own
deploy/retract records keyed at agent index -1 (a serial ``_withdraw``
emits the retraction before any cancel).

Workers ship, per day and per agent: the journal records the agent
emitted, its per-telescope capture-chunk deltas (truth sidecars included),
and its emitted count; plus per-day dispatch-counter deltas.  Chunks are
dropped worker-side once shipped, bounding worker memory to one window.
"""

from __future__ import annotations

import traceback

from repro._util import DAY
from repro.exec.parallel import process_context
from repro.obs import (
    get_journal,
    set_journal,
    set_registry,
    set_tracer,
    use_journal,
)
from repro.obs.journal import RecordingJournal

#: Journal record types that originate from scanner agents — the only
#: kinds a shard worker contributes to the merged journal (everything
#: else, deploys and retractions included, comes from the parent replica).
_SESSION_TYPES = frozenset({"session_start", "session_cancel",
                            "session_drop"})


def shard_indices(n_agents: int, shard_index: int, shard_count: int):
    """The agent indices shard ``shard_index`` of ``shard_count`` owns."""
    return range(shard_index, n_agents, shard_count)


def _counter_tuple(counters) -> tuple:
    return (counters.nta, counters.ntb, counters.ntc,
            counters.live_dropped, counters.unrouted)


def _scenario_capturers(scenario) -> dict:
    return {
        "nta": scenario.telescope.capturer,
        "ntb": scenario.ntb_capturer,
        "ntc": scenario.ntc_capturer,
    }


# -- worker side -----------------------------------------------------------

def _worker_day(scenario, recorder, caps, day: int, shard_index: int,
                shard_count: int) -> dict:
    """Run one day for this shard; returns the merge payload."""
    counters_before = _counter_tuple(scenario.counters)
    # Engine phase: tag records with the processed-event ordinal so the
    # parent can interleave cancels from all shards in serial order.
    recorder.context_fn = lambda: scenario.engine.processed
    day_start, day_end = scenario.begin_day(day)
    engine_records = [
        (tag, fields.get("agent", -1), i, rtype, fields)
        for i, (tag, rtype, fields) in enumerate(recorder.records)
        if rtype in _SESSION_TYPES
    ]
    recorder.context_fn = None
    recorder.clear()
    agents = []
    for idx in shard_indices(len(scenario.agents), shard_index,
                             shard_count):
        marks = {key: cap.mark() for key, cap in caps.items()}
        emitted = scenario.run_agent_day(scenario.agents[idx], day_start,
                                         day_end)
        records = [(rtype, fields) for _, rtype, fields in recorder.records]
        recorder.clear()
        deltas = {key: cap.chunks_since(marks[key])
                  for key, cap in caps.items()}
        agents.append((idx, records, emitted, deltas))
    scenario._last_poll = day_end
    for cap in caps.values():
        cap.reset_chunks()
    counter_delta = tuple(
        after - before for before, after
        in zip(counters_before, _counter_tuple(scenario.counters))
    )
    return {"engine": engine_records, "agents": agents,
            "counters": counter_delta}


def _worker_main(conn, config, shard_index: int, shard_count: int,
                 start_day: int) -> None:
    """Persistent shard worker: build, fast-forward, then serve windows."""
    try:
        # Isolate observability: the fork inherited the parent's registry/
        # tracer/journal objects — a worker must never write to them.
        set_registry(None)
        set_tracer(None)
        recorder = RecordingJournal()
        set_journal(recorder)
        from repro.sim.scenario import PaperScenario

        scenario = PaperScenario(config)
        if start_day:
            with use_journal(None):
                for day in range(start_day):
                    scenario.replay_day(day, shard_index=shard_index,
                                        shard_count=shard_count)
        recorder.clear()
        caps = _scenario_capturers(scenario)
        conn.send(("ready", shard_index))
        while True:
            message = conn.recv()
            if message[0] == "stop":
                return
            _, window_start, window_end = message
            days = [
                _worker_day(scenario, recorder, caps, day, shard_index,
                            shard_count)
                for day in range(window_start, window_end)
            ]
            conn.send(("window", days))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


# -- parent side -----------------------------------------------------------

class ShardWorkerError(RuntimeError):
    """A shard worker died; carries its traceback text."""


class ShardPool:
    """``jobs`` persistent shard workers over pipes.

    Spawned eagerly so worker world construction overlaps the parent's
    own replica build; the first :meth:`send_window` waits for readiness.
    """

    def __init__(self, config, jobs: int, start_day: int = 0):
        if jobs < 2:
            raise ValueError(f"a shard pool needs jobs >= 2, got {jobs}")
        # Flush buffered journal bytes before forking: a child inheriting
        # a non-empty stdio buffer would duplicate it at exit.
        get_journal().flush()
        ctx = process_context()
        self.jobs = jobs
        self._conns = []
        self._procs = []
        self._ready = False
        for shard in range(jobs):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, config, shard, jobs, start_day),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def _recv(self, conn):
        try:
            message = conn.recv()
        except EOFError as error:
            raise ShardWorkerError(
                "shard worker exited without reporting a result"
            ) from error
        if message[0] == "error":
            raise ShardWorkerError(f"shard worker failed:\n{message[1]}")
        return message

    def send_window(self, window_start: int, window_end: int) -> None:
        if not self._ready:
            for conn in self._conns:
                self._recv(conn)  # ("ready", shard)
            self._ready = True
        for conn in self._conns:
            conn.send(("run", window_start, window_end))

    def recv_window(self) -> list:
        """Per-worker day payload lists, in shard order."""
        return [self._recv(conn)[1] for conn in self._conns]

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)


def merge_day(scenario, journal, day: int, parent_records,
              worker_payloads) -> int:
    """Merge one day's shard outputs into the parent; returns emitted.

    Reconstructs the serial journal order (engine phase sort-merged on
    ``(event ordinal, agent, emission order)``, then poll records in
    agent order, then the day record), appends capture chunks in agent
    order, and accumulates counter deltas.
    """
    engine_phase = [
        (tag, fields.get("agent", -1), i, rtype, fields)
        for i, (tag, rtype, fields) in enumerate(parent_records)
        if rtype not in _SESSION_TYPES
    ]
    for payload in worker_payloads:
        engine_phase.extend(payload["engine"])
    engine_phase.sort(key=lambda record: (record[0], record[1], record[2]))
    for _tag, _agent, _i, rtype, fields in engine_phase:
        journal.emit(rtype, **fields)

    caps = _scenario_capturers(scenario)
    entries = sorted(
        (entry for payload in worker_payloads for entry in payload["agents"]),
        key=lambda entry: entry[0],
    )
    emitted_total = 0
    for _idx, records, emitted, deltas in entries:
        for rtype, fields in records:
            journal.emit(rtype, **fields)
        emitted_total += emitted
        for key, cap in caps.items():
            chunks, truth_chunks = deltas[key]
            cap.extend_chunks(chunks, truth_chunks)
    journal.emit("day", day=day, emitted=emitted_total)

    counters = scenario.counters
    for payload in worker_payloads:
        delta = payload["counters"]
        counters.nta += delta[0]
        counters.ntb += delta[1]
        counters.ntc += delta[2]
        counters.live_dropped += delta[3]
        counters.unrouted += delta[4]
    return emitted_total


def run_sharded_days(scenario, pool: ShardPool, *, start_day: int,
                     duration: int, window_days: int,
                     progress: bool = False, on_day_end=None,
                     on_window_end=None) -> None:
    """Drive the day loop across the pool in day windows.

    For each window the parent first posts the work, then advances its
    own engine through the same days (buffering its deploy/retract
    records with event ordinals) while the workers emit and dispatch —
    the overlap that makes sharding pay — and finally merges.
    ``on_day_end(day)`` runs after each day's merge (the runner feeds the
    streaming analyzers there — at that point the parent capturers hold
    exactly that day's rows); ``on_window_end(next_day)`` runs after each
    merged window (checkpoint saves and the abort-for-testing path).
    """
    journal = get_journal()
    window_days = max(1, int(window_days))
    for window_start in range(start_day, duration, window_days):
        window_end = min(window_start + window_days, duration)
        pool.send_window(window_start, window_end)
        parent_days = []
        for day in range(window_start, window_end):
            buffer = RecordingJournal(
                context_fn=lambda: scenario.engine.processed
            )
            with use_journal(buffer):
                scenario.begin_day(day)
            scenario._last_poll = (day + 1) * DAY
            parent_days.append(buffer.records)
        worker_days = pool.recv_window()
        for offset, day in enumerate(range(window_start, window_end)):
            emitted = merge_day(
                scenario, journal, day, parent_days[offset],
                [per_worker[offset] for per_worker in worker_days],
            )
            if progress and day % 10 == 0:
                counters = scenario.counters
                print(f"day {day}: {emitted} packets "
                      f"(NT-A {counters.nta}, NT-C {counters.ntc})")
            if on_day_end is not None:
                on_day_end(day)
        if on_window_end is not None:
            on_window_end(window_end)
