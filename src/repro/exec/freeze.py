"""Frozen scenario state: the picklable slice workers and caches need.

A live :class:`~repro.sim.scenario.PaperScenario` owns the event engine,
scheduled closures, and every scanner agent — none of which survive a
pickle, and none of which the experiment drivers touch.  What the drivers
*do* read from ``result.scenario`` is a small, fully picklable surface:

* ``config`` — the :class:`~repro.sim.scenario.ScenarioConfig`,
* ``honeyprefixes`` — deployed :class:`~repro.core.honeyprefix.Honeyprefix`
  instances (feature timelines included, for Fig 11 attribution),
* ``live_prefixes`` / ``nta_covering`` — the control-subnet exclusions and
  the Hilbert/scope experiments' covering /32,
* ``fabric.prefix2as`` / ``fabric.asdb`` / ``fabric.geodb`` — the metadata
  datasets behind :class:`~repro.analysis.asinfo.MetadataJoiner`,
* ``counters`` — the dispatch accounting.

:func:`freeze_scenario` captures exactly that surface into a
:class:`FrozenScenario`, and :func:`freeze_result` swaps it into a
:class:`~repro.sim.runner.ScenarioResult` whose columnar records are numpy
arrays (picklable by construction).  A frozen result renders every
registered experiment byte-identically to the live one — the determinism
contract the parallel executor and the scenario cache both build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FrozenFabric:
    """The metadata datasets :class:`MetadataJoiner` consumes."""

    prefix2as: object
    asdb: object
    geodb: object


@dataclass
class FrozenScenario:
    """Engine-free stand-in for ``ScenarioResult.scenario``."""

    config: object
    honeyprefixes: dict = field(default_factory=dict)
    live_prefixes: list = field(default_factory=list)
    nta_covering: object = None
    counters: object = None
    fabric: FrozenFabric | None = None

    #: Marks instances so callers can tell a frozen scenario from a live
    #: one (e.g. to refuse re-running it).
    frozen = True

    def run(self, progress: bool = False) -> None:
        raise RuntimeError(
            "a frozen scenario carries results only and cannot be re-run; "
            "rebuild a PaperScenario from its config instead"
        )


def freeze_scenario(scenario) -> FrozenScenario:
    """Capture the experiment-facing surface of a (run) scenario."""
    if getattr(scenario, "frozen", False):
        return scenario
    fabric = scenario.fabric
    return FrozenScenario(
        config=scenario.config,
        honeyprefixes=dict(scenario.honeyprefixes),
        live_prefixes=list(scenario.live_prefixes),
        nta_covering=scenario.nta_covering,
        counters=scenario.counters,
        fabric=FrozenFabric(
            prefix2as=fabric.prefix2as,
            asdb=fabric.asdb,
            geodb=fabric.geodb,
        ),
    )


def freeze_result(result):
    """A picklable :class:`ScenarioResult` with a frozen scenario inside."""
    from repro.sim.runner import ScenarioResult

    if getattr(result.scenario, "frozen", False):
        return result
    return ScenarioResult(
        scenario=freeze_scenario(result.scenario),
        nta=result.nta, ntb=result.ntb, ntc=result.ntc,
        telemetry=result.telemetry, truth=dict(result.truth),
    )
