"""Frozen scenario state: the picklable slice workers and caches need.

A live :class:`~repro.sim.scenario.PaperScenario` owns the event engine,
scheduled closures, and every scanner agent — none of which survive a
pickle, and none of which the experiment drivers touch.  What the drivers
*do* read from ``result.scenario`` is a small, fully picklable surface:

* ``config`` — the :class:`~repro.sim.scenario.ScenarioConfig`,
* ``honeyprefixes`` — deployed :class:`~repro.core.honeyprefix.Honeyprefix`
  instances (feature timelines included, for Fig 11 attribution),
* ``live_prefixes`` / ``nta_covering`` — the control-subnet exclusions and
  the Hilbert/scope experiments' covering /32,
* ``fabric.prefix2as`` / ``fabric.asdb`` / ``fabric.geodb`` — the metadata
  datasets behind :class:`~repro.analysis.asinfo.MetadataJoiner`,
* ``counters`` — the dispatch accounting.

:func:`freeze_scenario` captures exactly that surface into a
:class:`FrozenScenario`, and :func:`freeze_result` swaps it into a
:class:`~repro.sim.runner.ScenarioResult` whose columnar records are numpy
arrays (picklable by construction).  A frozen result renders every
registered experiment byte-identically to the live one — the determinism
contract the parallel executor and the scenario cache both build on.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class FrozenFabric:
    """The metadata datasets :class:`MetadataJoiner` consumes."""

    prefix2as: object
    asdb: object
    geodb: object


@dataclass
class FrozenScenario:
    """Engine-free stand-in for ``ScenarioResult.scenario``."""

    config: object
    honeyprefixes: dict = field(default_factory=dict)
    live_prefixes: list = field(default_factory=list)
    nta_covering: object = None
    counters: object = None
    fabric: FrozenFabric | None = None

    #: Marks instances so callers can tell a frozen scenario from a live
    #: one (e.g. to refuse re-running it).
    frozen = True

    def run(self, progress: bool = False) -> None:
        raise RuntimeError(
            "a frozen scenario carries results only and cannot be re-run; "
            "rebuild a PaperScenario from its config instead"
        )


def freeze_scenario(scenario) -> FrozenScenario:
    """Capture the experiment-facing surface of a (run) scenario."""
    if getattr(scenario, "frozen", False):
        return scenario
    fabric = scenario.fabric
    return FrozenScenario(
        config=scenario.config,
        honeyprefixes=dict(scenario.honeyprefixes),
        live_prefixes=list(scenario.live_prefixes),
        nta_covering=scenario.nta_covering,
        counters=scenario.counters,
        fabric=FrozenFabric(
            prefix2as=fabric.prefix2as,
            asdb=fabric.asdb,
            geodb=fabric.geodb,
        ),
    )


def freeze_result(result):
    """A picklable :class:`ScenarioResult` with a frozen scenario inside."""
    from repro.sim.runner import ScenarioResult

    if getattr(result.scenario, "frozen", False):
        return result
    return ScenarioResult(
        scenario=freeze_scenario(result.scenario),
        nta=result.nta, ntb=result.ntb, ntc=result.ntc,
        telemetry=result.telemetry, truth=dict(result.truth),
        streaming=result.streaming, observatory=result.observatory,
    )


# -- engine-state checkpoints ----------------------------------------------
#
# A checkpoint is the *plan-only fast-forward* contract: it stores what a
# resumed process cannot cheaply recompute (the captured chunks, dispatch
# counters, and the journal records emitted so far) and deliberately omits
# what it can (engine queue, RNG states, scanner sessions).  Resume
# rebuilds the scenario from its config and replays the covered days'
# draws without sampling packets — see ``PaperScenario.replay_day`` — so
# the live state after restore is bit-for-bit what an uninterrupted run
# would hold at the same day boundary.

#: Bump when the checkpoint layout changes; mismatched files are ignored
#: (the resume falls back to a fresh run rather than crashing).
#: 2: added ``streaming`` (open analyzer state for ``stream_analysis``).
#: 3: added ``observatory`` (observer cursor for ``observe_dir`` runs).
CHECKPOINT_PROTOCOL = 3


@dataclass
class ScenarioCheckpoint:
    """Resumable state of a partially run scenario, at a day boundary."""

    protocol: int
    repro_version: str
    config_hash: str
    #: First day the resumed run still has to simulate.
    next_day: int
    #: ``(nta, ntb, ntc, live_dropped, unrouted)`` dispatch totals.
    counters: tuple
    #: telescope key -> (analysis chunks, truth chunks), in arrival order.
    captures: dict
    #: Every journal record emitted since the run started, as
    #: ``(record_type, fields)`` pairs — replayed verbatim on resume so
    #: the resumed journal is byte-identical to an uninterrupted one.
    journal_records: list
    #: ``stream_analysis`` runs only: telescope name ->
    #: :class:`~repro.analysis.streaming.StreamAnalyzer` mid-run (open
    #: sessions, closed events, flow state).  None for batch runs — a
    #: checkpoint can only resume into the mode that wrote it.
    streaming: dict | None = None
    #: ``observe_dir`` runs only: the
    #: :class:`~repro.observatory.observer.ObservatoryState` cursor
    #: (seen-source sets, cumulative event counts, honeyprefix first
    #: contacts) at the boundary.  Same mode-pairing rule as streaming.
    observatory: object | None = None


def _capturers(scenario) -> dict:
    return {
        "nta": scenario.telescope.capturer,
        "ntb": scenario.ntb_capturer,
        "ntc": scenario.ntc_capturer,
    }


def checkpoint_path(directory, config) -> Path:
    """Where ``config``'s checkpoint lives: one file per config hash, so
    concurrent runs of different configs never clobber each other."""
    from repro.obs import config_hash

    return Path(directory) / f"{config_hash(config)}.ckpt"


def capture_checkpoint(scenario, next_day: int, journal_records,
                       streaming: dict | None = None,
                       observatory: object | None = None,
                       ) -> ScenarioCheckpoint:
    """Snapshot a live scenario's resumable state at a day boundary."""
    from repro import __version__
    from repro.obs import config_hash

    c = scenario.counters
    return ScenarioCheckpoint(
        protocol=CHECKPOINT_PROTOCOL,
        repro_version=__version__,
        config_hash=config_hash(scenario.config),
        next_day=int(next_day),
        counters=(c.nta, c.ntb, c.ntc, c.live_dropped, c.unrouted),
        captures={
            key: cap.chunks_since((0, 0))
            for key, cap in _capturers(scenario).items()
        },
        journal_records=list(journal_records),
        streaming=streaming,
        observatory=observatory,
    )


def save_checkpoint(directory, checkpoint: ScenarioCheckpoint,
                    config) -> Path:
    """Atomically persist a checkpoint (write-then-rename, so a process
    killed mid-write can never corrupt the previous good checkpoint)."""
    path = checkpoint_path(directory, config)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".ckpt.tmp")
    with open(tmp, "wb") as stream:
        pickle.dump(checkpoint, stream, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_checkpoint(directory, config) -> ScenarioCheckpoint | None:
    """Load ``config``'s checkpoint, or None when no usable one exists.

    Missing, torn, stale-version, or wrong-protocol files all return
    None — a resume then simply starts from day zero, which is always
    correct, just slower.
    """
    from repro import __version__
    from repro.obs import config_hash

    path = checkpoint_path(directory, config)
    if not path.exists():
        return None
    try:
        with open(path, "rb") as stream:
            checkpoint = pickle.load(stream)
    except Exception:
        return None
    if (not isinstance(checkpoint, ScenarioCheckpoint)
            or checkpoint.protocol != CHECKPOINT_PROTOCOL
            or checkpoint.repro_version != __version__
            or checkpoint.config_hash != config_hash(config)):
        return None
    return checkpoint


def restore_checkpoint(scenario, checkpoint: ScenarioCheckpoint) -> None:
    """Load a checkpoint's captures and counters into a rebuilt scenario.

    Complements the replay fast-forward: replay re-derives the live
    engine/RNG/session state, this restores the accumulated outputs.
    """
    for key, cap in _capturers(scenario).items():
        chunks, truth_chunks = checkpoint.captures[key]
        cap.extend_chunks(chunks, truth_chunks)
    c = scenario.counters
    (c.nta, c.ntb, c.ntc, c.live_dropped, c.unrouted) = checkpoint.counters
