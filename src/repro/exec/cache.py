"""On-disk scenario result cache, keyed by config hash + package version.

A cache entry is one directory holding the frozen
:class:`~repro.sim.runner.ScenarioResult` bundle:

* ``nta.npz`` / ``ntb.npz`` / ``ntc.npz`` — the telescopes' columnar
  captures (:meth:`PacketRecords.save_npz`),
* ``truth-<telescope>.npz`` — the ground-truth provenance sidecars,
* ``meta.pkl`` — the pickled :class:`~repro.exec.freeze.FrozenScenario`
  (honeyprefix timelines, metadata datasets, dispatch counters),
* ``manifest.json`` — the :class:`~repro.obs.journal.RunManifest` fields
  plus a SHA-256 checksum per file.

The entry key is ``<repro version>-<config hash>``: the config hash covers
*every* :class:`ScenarioConfig` field (seed included), and baking the
package version into the key invalidates all entries on upgrade — a new
release may change simulation semantics, so a stale bundle must never
masquerade as a fresh run.  Loads verify every checksum before
deserializing anything; any mismatch, torn file, or unreadable manifest
counts as a miss and the caller re-simulates (and overwrites the entry).
Stores write into a temporary sibling directory and rename it into place,
so a crashed store can never leave a half-written entry that passes
verification.

Lifecycle management (the scenario service's warm tier builds on it):

* **size accounting** — :meth:`ScenarioCache.entries` lists every entry
  with its on-disk byte size and last-use time; :meth:`total_bytes` walks
  the whole cache root (stray temp dirs and the pin file included) so it
  matches ``du --apparent-size`` of the directory exactly;
* **LRU eviction** — constructing with ``max_bytes`` sets a byte budget;
  :meth:`evict` removes least-recently-used entries until the entries fit
  the budget.  Loads and probes touch the entry directory's mtime, which
  is the recency signal (it survives process restarts);
* **pinning** — :meth:`pin` marks warm-tier entries that :meth:`evict`
  must never remove, whatever the budget; pins live in a root-level
  ``pins.json`` written atomically.  Callers can additionally pass
  ``protect=...`` to shield in-flight entries for one sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.exec.freeze import freeze_result
from repro.obs import RunManifest, config_hash, get_journal, get_registry, get_tracer

#: Bump when the entry layout changes incompatibly.
CACHE_SCHEMA_VERSION = 1

#: The record columns files inside one entry (fixed names, fixed set).
_RECORD_FILES = ("nta.npz", "ntb.npz", "ntc.npz")


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class CacheMiss(Exception):
    """Internal: entry absent, stale, or failed verification."""


def _manifest_digest(manifest: dict) -> str:
    """Canonical digest of the manifest minus its own checksum field."""
    body = {k: v for k, v in manifest.items() if k != "manifest_sha256"}
    payload = json.dumps(body, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()


#: Name of the root-level file recording pinned entry keys.
PINS_FILE = "pins.json"


@dataclass(frozen=True)
class CacheEntryInfo:
    """One entry's lifecycle accounting row."""

    key: str
    path: Path
    bytes: int
    #: Last-use time: the entry directory's mtime, refreshed by every
    #: successful load/probe (and set by the store's rename).
    last_used: float
    pinned: bool


def _tree_bytes(root: Path) -> int:
    """Sum of apparent file sizes under ``root`` (matches ``du -b``
    minus directory-inode overhead; symlinks are not followed)."""
    total = 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            try:
                total += os.lstat(os.path.join(dirpath, name)).st_size
            except OSError:
                continue  # racing eviction/rewrite: file vanished
    return total


class ScenarioCache:
    """Content-addressed store of frozen scenario results.

    ``max_bytes`` sets the eviction budget enforced by :meth:`evict`
    (``None`` disables eviction entirely — the PR-5 behavior).
    """

    def __init__(self, cache_dir: str | os.PathLike,
                 max_bytes: int | None = None):
        self.root = Path(cache_dir)
        self.max_bytes = max_bytes

    # -- keys -------------------------------------------------------------

    def key(self, config) -> str:
        from repro import __version__

        return f"{__version__}-{config_hash(config)}"

    def entry_dir(self, config) -> Path:
        return self.root / self.key(config)

    # -- store ------------------------------------------------------------

    def store(self, result) -> Path:
        """Persist ``result``; returns the entry directory."""
        registry = get_registry()
        with get_tracer().span("scenario.cache_store"):
            frozen = freeze_result(result)
            config = frozen.config
            entry = self.entry_dir(config)
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = Path(tempfile.mkdtemp(
                prefix=entry.name + ".tmp-", dir=self.root
            ))
            try:
                frozen.nta.save_npz(tmp / "nta.npz")
                frozen.ntb.save_npz(tmp / "ntb.npz")
                frozen.ntc.save_npz(tmp / "ntc.npz")
                truth_files = {}
                for name, truth in frozen.truth.items():
                    filename = f"truth-{name}.npz"
                    truth.save_npz(tmp / filename)
                    truth_files[filename] = name
                with open(tmp / "meta.pkl", "wb") as stream:
                    pickle.dump(frozen.scenario, stream,
                                protocol=pickle.HIGHEST_PROTOCOL)
                files = sorted(
                    [*_RECORD_FILES, *truth_files, "meta.pkl"]
                )
                manifest = {
                    "cache_schema": CACHE_SCHEMA_VERSION,
                    **RunManifest.from_config(config).to_record_fields(),
                    "truth": truth_files,
                    "files": {f: _sha256(tmp / f) for f in files},
                }
                # Self-checksum: the per-file digests cover every payload
                # byte, this covers every manifest byte — so a bit flip
                # anywhere in the entry fails verification.
                manifest["manifest_sha256"] = _manifest_digest(manifest)
                with open(tmp / "manifest.json", "w") as stream:
                    json.dump(manifest, stream, sort_keys=True, default=repr)
                    stream.write("\n")
                if entry.exists():
                    shutil.rmtree(entry)
                os.rename(tmp, entry)
            except BaseException:
                shutil.rmtree(tmp, ignore_errors=True)
                raise
        registry.counter("scenario.cache.stores").inc()
        get_journal().emit("cache_store", config_hash=config_hash(config),
                           path=str(entry))
        return entry

    # -- load -------------------------------------------------------------

    def _verified_manifest(self, config, entry: Path) -> dict:
        """Read the manifest and checksum every file, or raise CacheMiss."""
        manifest_path = entry / "manifest.json"
        if not manifest_path.is_file():
            raise CacheMiss("no manifest")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (json.JSONDecodeError, OSError, UnicodeDecodeError) as error:
            raise CacheMiss(f"unreadable manifest: {error}") from error
        if not isinstance(manifest, dict):
            raise CacheMiss("manifest is not an object")
        declared = manifest.pop("manifest_sha256", None)
        if declared != _manifest_digest(manifest):
            raise CacheMiss("manifest self-checksum mismatch")
        if manifest.get("cache_schema") != CACHE_SCHEMA_VERSION:
            raise CacheMiss("cache schema version mismatch")
        from repro import __version__

        if manifest.get("repro_version") != __version__:
            raise CacheMiss("package version changed")
        if manifest.get("config_hash") != config_hash(config):
            raise CacheMiss("config hash mismatch")
        files = manifest.get("files")
        if not isinstance(files, dict) or not files:
            raise CacheMiss("manifest lists no files")
        for name, expected in files.items():
            path = entry / name
            if not path.is_file():
                raise CacheMiss(f"missing file {name}")
            if _sha256(path) != expected:
                raise CacheMiss(f"checksum mismatch on {name}")
        return manifest

    def load(self, config):
        """The cached :class:`ScenarioResult` for ``config``, or None.

        Verification runs *before* deserialization: a corrupt or stale
        entry is reported as a miss (with a ``scenario.cache.invalid``
        count when an entry existed but failed), never as a crash.
        """
        from repro.analysis.groundtruth import GroundTruthRecords
        from repro.analysis.records import PacketRecords
        from repro.sim.runner import ScenarioResult

        registry = get_registry()
        entry = self.entry_dir(config)
        with get_tracer().span("scenario.cache_load", key=entry.name) as span:
            try:
                manifest = self._verified_manifest(config, entry)
                records = {
                    name: PacketRecords.load_npz(entry / f"{name}.npz")
                    for name in ("nta", "ntb", "ntc")
                }
                truth = {
                    telescope: GroundTruthRecords.load_npz(entry / filename)
                    for filename, telescope in manifest["truth"].items()
                }
                with open(entry / "meta.pkl", "rb") as stream:
                    scenario = pickle.load(stream)
            except CacheMiss as miss:
                span.set(outcome="miss", reason=str(miss))
                if entry.exists():
                    registry.counter("scenario.cache.invalid").inc()
                registry.counter("scenario.cache.misses").inc()
                return None
            except (OSError, pickle.UnpicklingError, ValueError, KeyError):
                # Verification passed but deserialization still tore —
                # treat exactly like a miss; the caller re-simulates.
                span.set(outcome="miss", reason="deserialization failed")
                registry.counter("scenario.cache.invalid").inc()
                registry.counter("scenario.cache.misses").inc()
                return None
            span.set(outcome="hit")
        self._touch(entry)
        registry.counter("scenario.cache.hits").inc()
        get_journal().emit("cache_hit", config_hash=config_hash(config),
                           path=str(entry))
        return ScenarioResult(
            scenario=scenario,
            nta=records["nta"], ntb=records["ntb"], ntc=records["ntc"],
            telemetry=registry.snapshot() if registry.enabled else {},
            truth=truth,
        )

    def probe(self, config) -> bool:
        """True when a fully verified entry exists for ``config``.

        Runs the same manifest + checksum verification as :meth:`load`
        but deserializes nothing — the scenario service's warm-tier check
        before admitting a request.  A successful probe refreshes the
        entry's recency, exactly like a load.
        """
        entry = self.entry_dir(config)
        try:
            self._verified_manifest(config, entry)
        except CacheMiss:
            return False
        self._touch(entry)
        return True

    # -- lifecycle: size accounting, pinning, eviction ---------------------

    @staticmethod
    def _touch(entry: Path) -> None:
        try:
            os.utime(entry)
        except OSError:
            pass  # entry raced away; the caller already has its data

    def total_bytes(self) -> int:
        """Apparent size of everything under the cache root — entries,
        the pin file, stray temp dirs — so it matches a ``du`` of the
        directory, not just the healthy entries."""
        if not self.root.is_dir():
            return 0
        return _tree_bytes(self.root)

    def entries(self) -> list[CacheEntryInfo]:
        """Accounting rows for every entry directory, LRU first."""
        if not self.root.is_dir():
            return []
        pinned = self.pinned()
        rows = []
        for child in self.root.iterdir():
            if not child.is_dir():
                continue
            try:
                last_used = child.stat().st_mtime
            except OSError:
                continue
            rows.append(CacheEntryInfo(
                key=child.name, path=child, bytes=_tree_bytes(child),
                last_used=last_used, pinned=child.name in pinned,
            ))
        rows.sort(key=lambda row: (row.last_used, row.key))
        return rows

    def _resolve_key(self, config_or_key) -> str:
        if isinstance(config_or_key, str):
            return config_or_key
        return self.key(config_or_key)

    def pinned(self) -> set[str]:
        """The pinned entry keys (empty when no pin file exists)."""
        path = self.root / PINS_FILE
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return set()
        pins = payload.get("pins", [])
        return {str(key) for key in pins} if isinstance(pins, list) else set()

    def _write_pins(self, pins: set[str]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"pins": sorted(pins)}, indent=2) + "\n"
        fd, tmp = tempfile.mkstemp(prefix=PINS_FILE + ".", dir=self.root)
        try:
            with os.fdopen(fd, "w") as stream:
                stream.write(payload)
            os.replace(tmp, self.root / PINS_FILE)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def pin(self, config_or_key) -> str:
        """Mark an entry as evict-proof; returns the pinned key."""
        key = self._resolve_key(config_or_key)
        self._write_pins(self.pinned() | {key})
        return key

    def unpin(self, config_or_key) -> str:
        """Remove an entry's pin (a no-op when it was not pinned)."""
        key = self._resolve_key(config_or_key)
        self._write_pins(self.pinned() - {key})
        return key

    def evict(self, protect=()) -> list[str]:
        """Remove least-recently-used entries until they fit ``max_bytes``.

        Pinned entries and any key in ``protect`` (the service passes its
        in-flight run ids) are never removed, even when that leaves the
        cache over budget.  Returns the evicted keys, oldest first, and
        keeps the ``scenario.cache.bytes`` gauge current.
        """
        registry = get_registry()
        evicted: list[str] = []
        if self.max_bytes is not None:
            protected = set(protect)
            rows = self.entries()
            entry_bytes = sum(row.bytes for row in rows)
            for row in rows:
                if entry_bytes <= self.max_bytes:
                    break
                if row.pinned or row.key in protected:
                    continue
                shutil.rmtree(row.path, ignore_errors=True)
                entry_bytes -= row.bytes
                evicted.append(row.key)
                registry.counter("scenario.cache.evictions").inc()
        registry.gauge("scenario.cache.bytes").set(self.total_bytes())
        return evicted
