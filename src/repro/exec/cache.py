"""On-disk scenario result cache, keyed by config hash + package version.

A cache entry is one directory holding the frozen
:class:`~repro.sim.runner.ScenarioResult` bundle:

* ``nta.npz`` / ``ntb.npz`` / ``ntc.npz`` — the telescopes' columnar
  captures (:meth:`PacketRecords.save_npz`),
* ``truth-<telescope>.npz`` — the ground-truth provenance sidecars,
* ``meta.pkl`` — the pickled :class:`~repro.exec.freeze.FrozenScenario`
  (honeyprefix timelines, metadata datasets, dispatch counters),
* ``manifest.json`` — the :class:`~repro.obs.journal.RunManifest` fields
  plus a SHA-256 checksum per file.

The entry key is ``<repro version>-<config hash>``: the config hash covers
*every* :class:`ScenarioConfig` field (seed included), and baking the
package version into the key invalidates all entries on upgrade — a new
release may change simulation semantics, so a stale bundle must never
masquerade as a fresh run.  Loads verify every checksum before
deserializing anything; any mismatch, torn file, or unreadable manifest
counts as a miss and the caller re-simulates (and overwrites the entry).
Stores write into a temporary sibling directory and rename it into place,
so a crashed store can never leave a half-written entry that passes
verification.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path

from repro.exec.freeze import freeze_result
from repro.obs import RunManifest, config_hash, get_journal, get_registry, get_tracer

#: Bump when the entry layout changes incompatibly.
CACHE_SCHEMA_VERSION = 1

#: The record columns files inside one entry (fixed names, fixed set).
_RECORD_FILES = ("nta.npz", "ntb.npz", "ntc.npz")


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class CacheMiss(Exception):
    """Internal: entry absent, stale, or failed verification."""


class ScenarioCache:
    """Content-addressed store of frozen scenario results."""

    def __init__(self, cache_dir: str | os.PathLike):
        self.root = Path(cache_dir)

    # -- keys -------------------------------------------------------------

    def key(self, config) -> str:
        from repro import __version__

        return f"{__version__}-{config_hash(config)}"

    def entry_dir(self, config) -> Path:
        return self.root / self.key(config)

    # -- store ------------------------------------------------------------

    def store(self, result) -> Path:
        """Persist ``result``; returns the entry directory."""
        registry = get_registry()
        with get_tracer().span("scenario.cache_store"):
            frozen = freeze_result(result)
            config = frozen.config
            entry = self.entry_dir(config)
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = Path(tempfile.mkdtemp(
                prefix=entry.name + ".tmp-", dir=self.root
            ))
            try:
                frozen.nta.save_npz(tmp / "nta.npz")
                frozen.ntb.save_npz(tmp / "ntb.npz")
                frozen.ntc.save_npz(tmp / "ntc.npz")
                truth_files = {}
                for name, truth in frozen.truth.items():
                    filename = f"truth-{name}.npz"
                    truth.save_npz(tmp / filename)
                    truth_files[filename] = name
                with open(tmp / "meta.pkl", "wb") as stream:
                    pickle.dump(frozen.scenario, stream,
                                protocol=pickle.HIGHEST_PROTOCOL)
                files = sorted(
                    [*_RECORD_FILES, *truth_files, "meta.pkl"]
                )
                manifest = {
                    "cache_schema": CACHE_SCHEMA_VERSION,
                    **RunManifest.from_config(config).to_record_fields(),
                    "truth": truth_files,
                    "files": {f: _sha256(tmp / f) for f in files},
                }
                with open(tmp / "manifest.json", "w") as stream:
                    json.dump(manifest, stream, sort_keys=True, default=repr)
                    stream.write("\n")
                if entry.exists():
                    shutil.rmtree(entry)
                os.rename(tmp, entry)
            except BaseException:
                shutil.rmtree(tmp, ignore_errors=True)
                raise
        registry.counter("scenario.cache.stores").inc()
        get_journal().emit("cache_store", config_hash=config_hash(config),
                           path=str(entry))
        return entry

    # -- load -------------------------------------------------------------

    def _verified_manifest(self, config, entry: Path) -> dict:
        """Read the manifest and checksum every file, or raise CacheMiss."""
        manifest_path = entry / "manifest.json"
        if not manifest_path.is_file():
            raise CacheMiss("no manifest")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (json.JSONDecodeError, OSError) as error:
            raise CacheMiss(f"unreadable manifest: {error}") from error
        if manifest.get("cache_schema") != CACHE_SCHEMA_VERSION:
            raise CacheMiss("cache schema version mismatch")
        from repro import __version__

        if manifest.get("repro_version") != __version__:
            raise CacheMiss("package version changed")
        if manifest.get("config_hash") != config_hash(config):
            raise CacheMiss("config hash mismatch")
        files = manifest.get("files")
        if not isinstance(files, dict) or not files:
            raise CacheMiss("manifest lists no files")
        for name, expected in files.items():
            path = entry / name
            if not path.is_file():
                raise CacheMiss(f"missing file {name}")
            if _sha256(path) != expected:
                raise CacheMiss(f"checksum mismatch on {name}")
        return manifest

    def load(self, config):
        """The cached :class:`ScenarioResult` for ``config``, or None.

        Verification runs *before* deserialization: a corrupt or stale
        entry is reported as a miss (with a ``scenario.cache.invalid``
        count when an entry existed but failed), never as a crash.
        """
        from repro.analysis.groundtruth import GroundTruthRecords
        from repro.analysis.records import PacketRecords
        from repro.sim.runner import ScenarioResult

        registry = get_registry()
        entry = self.entry_dir(config)
        with get_tracer().span("scenario.cache_load", key=entry.name) as span:
            try:
                manifest = self._verified_manifest(config, entry)
                records = {
                    name: PacketRecords.load_npz(entry / f"{name}.npz")
                    for name in ("nta", "ntb", "ntc")
                }
                truth = {
                    telescope: GroundTruthRecords.load_npz(entry / filename)
                    for filename, telescope in manifest["truth"].items()
                }
                with open(entry / "meta.pkl", "rb") as stream:
                    scenario = pickle.load(stream)
            except CacheMiss as miss:
                span.set(outcome="miss", reason=str(miss))
                if entry.exists():
                    registry.counter("scenario.cache.invalid").inc()
                registry.counter("scenario.cache.misses").inc()
                return None
            except (OSError, pickle.UnpicklingError, ValueError, KeyError):
                # Verification passed but deserialization still tore —
                # treat exactly like a miss; the caller re-simulates.
                span.set(outcome="miss", reason="deserialization failed")
                registry.counter("scenario.cache.invalid").inc()
                registry.counter("scenario.cache.misses").inc()
                return None
            span.set(outcome="hit")
        registry.counter("scenario.cache.hits").inc()
        get_journal().emit("cache_hit", config_hash=config_hash(config),
                           path=str(entry))
        return ScenarioResult(
            scenario=scenario,
            nta=records["nta"], ntb=records["ntb"], ntc=records["ntc"],
            telemetry=registry.snapshot() if registry.enabled else {},
            truth=truth,
        )
