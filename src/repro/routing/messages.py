"""BGP update messages: announcements and withdrawals."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addr import IPv6Prefix


@dataclass(frozen=True, slots=True)
class Announcement:
    """A BGP route announcement.

    ``as_path`` is ordered from the announcing neighbor toward the origin;
    the last element is the origin ASN.
    """

    prefix: IPv6Prefix
    origin_asn: int
    timestamp: float
    as_path: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.origin_asn <= 0:
            raise ValueError(f"origin ASN must be positive: {self.origin_asn}")
        if self.as_path and self.as_path[-1] != self.origin_asn:
            raise ValueError(
                f"AS path {self.as_path} must terminate at origin {self.origin_asn}"
            )

    def extended(self, via_asn: int) -> "Announcement":
        """Return a copy as re-announced through ``via_asn`` (path prepend)."""
        return Announcement(
            prefix=self.prefix,
            origin_asn=self.origin_asn,
            timestamp=self.timestamp,
            as_path=(via_asn,) + (self.as_path or (self.origin_asn,)),
        )


@dataclass(frozen=True, slots=True)
class Withdrawal:
    """A BGP route withdrawal."""

    prefix: IPv6Prefix
    origin_asn: int
    timestamp: float
