"""Routing Information Base with longest-prefix-match lookup.

Routes are indexed by prefix length; lookups test each populated length from
longest to shortest.  With at most 129 lengths this is effectively a fixed
small constant per lookup while staying simple and allocation-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.net.addr import IPv6Prefix, _cached_mask


@dataclass(frozen=True, slots=True)
class Route:
    """A single RIB entry."""

    prefix: IPv6Prefix
    origin_asn: int
    as_path: tuple[int, ...] = ()
    installed_at: float = 0.0


class Rib:
    """A routing table supporting insert, withdraw, and LPM lookup."""

    def __init__(self) -> None:
        # length -> {network int -> Route}
        self._by_length: dict[int, dict[int, Route]] = {}
        self._sorted_lengths: list[int] = []

    def __len__(self) -> int:
        return sum(len(nets) for nets in self._by_length.values())

    def __contains__(self, prefix: IPv6Prefix) -> bool:
        return prefix.network in self._by_length.get(prefix.length, {})

    def insert(self, route: Route) -> None:
        """Install (or replace) the route for its exact prefix."""
        nets = self._by_length.get(route.prefix.length)
        if nets is None:
            nets = self._by_length[route.prefix.length] = {}
            self._sorted_lengths = sorted(self._by_length, reverse=True)
        nets[route.prefix.network] = route

    def withdraw(self, prefix: IPv6Prefix) -> Route | None:
        """Remove and return the exact-match route, or None if absent."""
        nets = self._by_length.get(prefix.length)
        if not nets:
            return None
        route = nets.pop(prefix.network, None)
        if not nets:
            del self._by_length[prefix.length]
            self._sorted_lengths = sorted(self._by_length, reverse=True)
        return route

    def lookup(self, address: int) -> Route | None:
        """Longest-prefix-match lookup for a destination address."""
        for length in self._sorted_lengths:
            network = address & _cached_mask(length)
            route = self._by_length[length].get(network)
            if route is not None:
                return route
        return None

    def exact(self, prefix: IPv6Prefix) -> Route | None:
        """Exact-match lookup."""
        return self._by_length.get(prefix.length, {}).get(prefix.network)

    def covered_by(self, prefix: IPv6Prefix) -> list[Route]:
        """All routes whose prefixes nest inside ``prefix`` (inclusive)."""
        found = []
        for length, nets in self._by_length.items():
            if length < prefix.length:
                continue
            for route in nets.values():
                if prefix.contains_prefix(route.prefix):
                    found.append(route)
        return found

    def routes(self) -> Iterator[Route]:
        """Iterate all installed routes (unspecified order)."""
        for nets in self._by_length.values():
            yield from nets.values()
