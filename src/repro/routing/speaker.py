"""BGP speaker: the BIRD-like daemon the telescope runs.

A :class:`BgpSpeaker` owns an ASN, keeps a local RIB of what it currently
originates, and pushes announcements/withdrawals into a
:class:`~repro.routing.collectors.CollectorSystem` (the observable Internet).
It optionally registers ROAs first, mirroring the paper's workflow where the
ISP registered honeyprefixes on APNIC's RPKI portal so upstreams would
accept and propagate the routes.
"""

from __future__ import annotations

from repro.net.addr import IPv6Prefix
from repro.routing.collectors import CollectorSystem
from repro.routing.messages import Announcement, Withdrawal
from repro.routing.rib import Rib, Route
from repro.routing.rpki import Roa, RoaRegistry


class BgpSpeaker:
    """Originates prefixes from ``asn`` into the collector system."""

    def __init__(
        self,
        asn: int,
        collectors: CollectorSystem,
        roa_registry: RoaRegistry | None = None,
    ):
        if asn <= 0:
            raise ValueError(f"ASN must be positive: {asn}")
        self.asn = asn
        self.collectors = collectors
        self.roa_registry = roa_registry
        self.local_rib = Rib()
        self.history: list[Announcement | Withdrawal] = []

    def register_roa(
        self, prefix: IPv6Prefix, at: float, max_length: int | None = None
    ) -> Roa:
        """Register a ROA covering ``prefix`` (and longer, up to max_length)."""
        if self.roa_registry is None:
            raise RuntimeError("speaker has no ROA registry configured")
        roa = Roa(
            prefix=prefix,
            asn=self.asn,
            max_length=prefix.length if max_length is None else max_length,
            registered_at=at,
        )
        self.roa_registry.register(roa)
        return roa

    def announce(self, prefix: IPv6Prefix, at: float) -> Announcement:
        """Originate ``prefix``; returns the announcement that was sent.

        The announcement is installed in the local RIB regardless of how many
        collectors accept it (the paper's H_TCP /48 was configured in BIRD
        but never reached the Internet — locally present, globally absent).
        """
        announcement = Announcement(
            prefix=prefix,
            origin_asn=self.asn,
            timestamp=at,
            as_path=(self.asn,),
        )
        self.local_rib.insert(
            Route(prefix=prefix, origin_asn=self.asn, as_path=(self.asn,),
                  installed_at=at)
        )
        self.history.append(announcement)
        self.collectors.announce(announcement)
        return announcement

    def withdraw(self, prefix: IPv6Prefix, at: float) -> Withdrawal:
        """Withdraw a previously originated prefix."""
        if self.local_rib.withdraw(prefix) is None:
            raise ValueError(f"{prefix} is not currently originated by AS{self.asn}")
        withdrawal = Withdrawal(prefix=prefix, origin_asn=self.asn, timestamp=at)
        self.history.append(withdrawal)
        self.collectors.withdraw(withdrawal)
        return withdrawal

    def originated(self) -> list[IPv6Prefix]:
        """Prefixes this speaker currently originates."""
        return [route.prefix for route in self.local_rib.routes()]
