"""RPKI: Route Origin Authorizations and route-origin validation.

The paper's ISP registered honeyprefixes on APNIC's RPKI portal before
upstreams would accept the routes, and NT-C's upstream rejected honeyprefix
announcements until ROAs existed.  ``RoaRegistry`` models the portal and the
validator the upstreams run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.net.addr import IPv6Prefix


class RpkiValidity(enum.Enum):
    """RFC 6811 route-origin validation states."""

    VALID = "valid"
    INVALID = "invalid"
    NOT_FOUND = "not_found"


@dataclass(frozen=True, slots=True)
class Roa:
    """A Route Origin Authorization.

    Authorizes ``asn`` to originate ``prefix`` and any more-specific up to
    ``max_length``.
    """

    prefix: IPv6Prefix
    asn: int
    max_length: int
    registered_at: float = 0.0

    def __post_init__(self) -> None:
        if self.max_length < self.prefix.length or self.max_length > 128:
            raise ValueError(
                f"max_length {self.max_length} invalid for {self.prefix}"
            )
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive: {self.asn}")

    def covers(self, prefix: IPv6Prefix) -> bool:
        """True when ``prefix`` falls under this ROA's prefix/max-length."""
        return (
            self.prefix.contains_prefix(prefix)
            and prefix.length <= self.max_length
        )


class RoaRegistry:
    """The RPKI portal: register ROAs, validate announcements against them."""

    def __init__(self) -> None:
        self._roas: list[Roa] = []

    def register(self, roa: Roa) -> None:
        self._roas.append(roa)

    def roas(self) -> tuple[Roa, ...]:
        return tuple(self._roas)

    def validate(
        self, prefix: IPv6Prefix, origin_asn: int, at: float | None = None
    ) -> RpkiValidity:
        """Validate an announcement per RFC 6811 semantics.

        ``at`` restricts validation to ROAs registered no later than that
        simulation time (a ROA cannot protect a route before it exists).
        """
        covered = False
        for roa in self._roas:
            if at is not None and roa.registered_at > at:
                continue
            if roa.prefix.contains_prefix(prefix):
                covered = True
                if roa.covers(prefix) and roa.asn == origin_asn:
                    return RpkiValidity.VALID
        return RpkiValidity.INVALID if covered else RpkiValidity.NOT_FOUND
