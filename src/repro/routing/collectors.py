"""Public route collectors and the BGP propagation model.

Models the observable side of BGP that IPv6 scanners exploit: a set of
public route collectors (RouteViews / RIPE RIS style, 36 by default to match
the paper's "36 public BGP collectors monitored").  Propagation semantics:

* announcements of length <= /48 reach most collectors (the paper observed
  an average of 28 of 36),
* hyper-specific announcements (/49-/64) reach only the few collectors with
  permissive ingress policies (the paper observed 5 of 36),
* RPKI-strict collectors reject announcements that do not validate against
  the ROA registry,
* withdrawals become visible within minutes to hours.

Scanner agents subscribe by polling :meth:`CollectorSystem.visible_updates`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro._util import make_rng, spawn_rngs
from repro.net.addr import IPv6Prefix
from repro.obs import get_registry
from repro.routing.messages import Announcement, Withdrawal
from repro.routing.rpki import RoaRegistry, RpkiValidity

#: Longest prefix length that propagates globally (paper §3.2).
GLOBAL_ROUTABLE_MAX_LENGTH = 48


@dataclass(frozen=True, slots=True)
class VisibleUpdate:
    """A BGP update as seen at one collector, with its visibility time."""

    collector: str
    visible_at: float
    update: Announcement | Withdrawal

    @property
    def is_withdrawal(self) -> bool:
        return isinstance(self.update, Withdrawal)


class RouteCollector:
    """One public route collector.

    ``accepts_hyper_specific`` marks the minority of collectors whose peers
    do not filter >/48 announcements.  ``rpki_strict`` collectors drop
    announcements that fail route-origin validation.
    """

    def __init__(
        self,
        name: str,
        accepts_hyper_specific: bool = False,
        rpki_strict: bool = False,
    ):
        self.name = name
        self.accepts_hyper_specific = accepts_hyper_specific
        self.rpki_strict = rpki_strict
        self._events: list[VisibleUpdate] = []
        self._times: list[float] = []

    def record(self, update: Announcement | Withdrawal, visible_at: float) -> None:
        event = VisibleUpdate(self.name, visible_at, update)
        idx = bisect.bisect_right(self._times, visible_at)
        self._times.insert(idx, visible_at)
        self._events.insert(idx, event)

    def events(self) -> tuple[VisibleUpdate, ...]:
        return tuple(self._events)

    def events_between(self, since: float, until: float) -> list[VisibleUpdate]:
        """Events with ``since < visible_at <= until`` (poll semantics)."""
        lo = bisect.bisect_right(self._times, since)
        hi = bisect.bisect_right(self._times, until)
        return self._events[lo:hi]

    def carries(self, prefix: IPv6Prefix, at: float) -> bool:
        """True when this collector holds a route for ``prefix`` at ``at``."""
        state = False
        for event in self._events:
            if event.visible_at > at:
                break
            if event.update.prefix == prefix:
                state = not event.is_withdrawal
        return state


class CollectorSystem:
    """The full set of public collectors plus the propagation model."""

    def __init__(
        self,
        rng: np.random.Generator | int | None = 0,
        n_collectors: int = 36,
        n_permissive: int = 5,
        roa_registry: RoaRegistry | None = None,
        reach_probability: float = 0.85,
        min_delay: float = 60.0,
        max_delay: float = 900.0,
    ):
        if n_permissive > n_collectors:
            raise ValueError("n_permissive cannot exceed n_collectors")
        self._rng = make_rng(rng)
        self.roa_registry = roa_registry
        self.reach_probability = reach_probability
        self.min_delay = min_delay
        self.max_delay = max_delay
        registry = get_registry()
        self._m_announcements = registry.counter("bgp.announcements")
        self._m_withdrawals = registry.counter("bgp.withdrawals")
        self._m_records = registry.counter("bgp.collector_records")
        self.collectors: list[RouteCollector] = []
        strict_flags = self._rng.random(n_collectors) < 0.4
        for i in range(n_collectors):
            self.collectors.append(
                RouteCollector(
                    name=f"rc{i:02d}",
                    accepts_hyper_specific=i < n_permissive,
                    rpki_strict=bool(strict_flags[i]) and roa_registry is not None,
                )
            )

    def _delay(self) -> float:
        return float(self._rng.uniform(self.min_delay, self.max_delay))

    def _validity(self, prefix: IPv6Prefix, origin: int, at: float) -> RpkiValidity:
        if self.roa_registry is None:
            return RpkiValidity.NOT_FOUND
        return self.roa_registry.validate(prefix, origin, at=at)

    def announce(self, announcement: Announcement) -> list[RouteCollector]:
        """Propagate an announcement; return the collectors that accepted it."""
        self._m_announcements.inc()
        validity = self._validity(
            announcement.prefix, announcement.origin_asn, announcement.timestamp
        )
        reached = []
        hyper = announcement.prefix.length > GLOBAL_ROUTABLE_MAX_LENGTH
        for collector in self.collectors:
            if hyper and not collector.accepts_hyper_specific:
                continue
            if collector.rpki_strict and validity is not RpkiValidity.VALID:
                continue
            if not hyper and self._rng.random() > self.reach_probability:
                continue
            collector.record(announcement, announcement.timestamp + self._delay())
            reached.append(collector)
        self._m_records.inc(len(reached))
        return reached

    def withdraw(self, withdrawal: Withdrawal) -> list[RouteCollector]:
        """Propagate a withdrawal to every collector carrying the prefix."""
        self._m_withdrawals.inc()
        reached = []
        for collector in self.collectors:
            if collector.carries(withdrawal.prefix, withdrawal.timestamp):
                collector.record(withdrawal, withdrawal.timestamp + self._delay())
                reached.append(collector)
        self._m_records.inc(len(reached))
        return reached

    def visibility_count(self, prefix: IPv6Prefix, at: float) -> int:
        """Number of collectors carrying ``prefix`` at time ``at``."""
        return sum(1 for c in self.collectors if c.carries(prefix, at))

    def visible_updates(self, since: float, until: float) -> Iterator[VisibleUpdate]:
        """All updates that became visible in ``(since, until]``.

        This is the feed scanner agents poll; updates from different
        collectors for the same prefix are yielded individually, as a real
        RIS/RouteViews consumer would see them.
        """
        for collector in self.collectors:
            yield from collector.events_between(since, until)

    def new_prefixes(self, since: float, until: float) -> dict[IPv6Prefix, float]:
        """Deduplicated map of newly announced prefix -> earliest visibility.

        Convenience for scanners that only care about *new* targets.
        """
        seen: dict[IPv6Prefix, float] = {}
        for event in self.visible_updates(since, until):
            if event.is_withdrawal:
                continue
            prev = seen.get(event.update.prefix)
            if prev is None or event.visible_at < prev:
                seen[event.update.prefix] = event.visible_at
        return seen
