"""BGP routing substrate: speakers, RIBs, public route collectors, RPKI.

The proactive telescope's first attraction feature is announcing /48
"honeyprefixes" via BGP.  Scanners in the ecosystem watch public route
collectors (RouteViews/RIS-style) for new prefixes.  The key semantics the
paper depends on are modeled here:

* /48 is the longest prefix that reliably propagates globally; announcements
  of /49-/64 "hyper-specific" prefixes reach only a handful of collectors,
* RPKI-aware upstreams reject announcements without a covering ROA,
* withdrawals propagate within hours and scanners notice quickly.
"""

from repro.routing.messages import Announcement, Withdrawal
from repro.routing.rib import Rib, Route
from repro.routing.speaker import BgpSpeaker
from repro.routing.collectors import CollectorSystem, RouteCollector
from repro.routing.rpki import Roa, RoaRegistry, RpkiValidity

__all__ = [
    "Announcement",
    "Withdrawal",
    "Rib",
    "Route",
    "BgpSpeaker",
    "CollectorSystem",
    "RouteCollector",
    "Roa",
    "RoaRegistry",
    "RpkiValidity",
]
