"""Hitlist responsiveness prober and aliased-prefix detection.

The prober asks a :class:`ResponsivenessOracle` — in a full simulation, the
telescope fabric — whether an (address, protocol, port) answers at a given
time.  Aliased-prefix detection follows the hitlist methodology: probe a
handful of pseudo-random addresses inside a prefix; if *all* of them answer,
the prefix is aliased (a single machine answering for everything), so its
addresses are segregated into the aliased list rather than inflating the
responsive list.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro._util import make_rng
from repro.hitlist.categories import HitlistCategory
from repro.net.addr import IPv6Prefix


class ResponsivenessOracle(Protocol):
    """Answers whether an address responds to a protocol/port at a time."""

    def responds(
        self, address: int, proto: int, port: int | None, at: float
    ) -> bool:  # pragma: no cover - protocol definition
        ...


class CallableOracle:
    """Adapter wrapping a plain callable as an oracle."""

    def __init__(self, fn: Callable[[int, int, int | None, float], bool]):
        self._fn = fn

    def responds(self, address: int, proto: int, port: int | None, at: float) -> bool:
        return self._fn(address, proto, port, at)


class Prober:
    """Probes candidates per category and detects aliased prefixes."""

    def __init__(
        self,
        oracle: ResponsivenessOracle,
        rng: np.random.Generator | int | None = 0,
        alias_probe_count: int = 16,
    ):
        self.oracle = oracle
        self._rng = make_rng(rng)
        self.alias_probe_count = alias_probe_count
        self.probe_count = 0

    def probe_address(
        self, address: int, category: HitlistCategory, at: float
    ) -> bool:
        """Probe one address for one protocol category."""
        proto = category.protocol
        if proto is None:
            raise ValueError(f"category {category} is not address-probeable")
        self.probe_count += 1
        return self.oracle.responds(address, proto, category.port, at)

    def detect_alias(self, prefix: IPv6Prefix, at: float) -> bool:
        """True when ``prefix`` looks fully aliased.

        Probes ``alias_probe_count`` random addresses with ICMP; aliasing is
        declared only when every single probe answers — random addresses in
        a non-aliased prefix are overwhelmingly unused.
        """
        for _ in range(self.alias_probe_count):
            addr = prefix.random_address(self._rng).value
            self.probe_count += 1
            if not self.oracle.responds(addr, HitlistCategory.ICMP.protocol,
                                        None, at):
                return False
        return True
