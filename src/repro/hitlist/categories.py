"""Hitlist categories.

Mirrors the categories the paper interacted with (§4.3.6): per-protocol
responsive lists (ICMP, TCP/80, TCP/443, UDP/53) plus the aliased and
non-aliased prefix lists.
"""

from __future__ import annotations

import enum

from repro.net.packet import ICMPV6, TCP, UDP


class HitlistCategory(enum.Enum):
    """One published hitlist category."""

    ICMP = "icmp"
    TCP80 = "tcp80"
    TCP443 = "tcp443"
    UDP53 = "udp53"
    #: Non-aliased responsive prefixes list.
    NON_ALIASED = "non_aliased"
    #: Aliased prefixes list (entire prefixes answering everything).
    ALIASED = "aliased"

    @property
    def protocol(self) -> int | None:
        """IP protocol number probed for this category (None for lists)."""
        return {
            HitlistCategory.ICMP: ICMPV6,
            HitlistCategory.TCP80: TCP,
            HitlistCategory.TCP443: TCP,
            HitlistCategory.UDP53: UDP,
        }.get(self)

    @property
    def port(self) -> int | None:
        """Destination port probed for this category (None where n/a)."""
        return {
            HitlistCategory.TCP80: 80,
            HitlistCategory.TCP443: 443,
            HitlistCategory.UDP53: 53,
        }.get(self)


#: Categories that carry individual addresses (vs. prefixes).
ADDRESS_CATEGORIES = (
    HitlistCategory.ICMP,
    HitlistCategory.TCP80,
    HitlistCategory.TCP443,
    HitlistCategory.UDP53,
)

#: Categories that carry prefixes.
PREFIX_CATEGORIES = (HitlistCategory.NON_ALIASED, HitlistCategory.ALIASED)
