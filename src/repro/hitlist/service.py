"""The public IPv6 hitlist service.

Runs periodic compilation cycles: gather candidate addresses from its
registered public sources (zone files resolved to AAAA, CT-log SAN names,
submitted seeds), probe each per category, run aliased-prefix detection on
the candidates' covering /64s and announced prefixes, and publish a
categorized snapshot.  Downstream scanners poll :meth:`entries_between` or
fetch :meth:`snapshot_at`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro._util import DAY, check_positive
from repro.hitlist.categories import (
    ADDRESS_CATEGORIES,
    HitlistCategory,
)
from repro.hitlist.prober import Prober
from repro.net.addr import IPv6Prefix

#: A candidate source: called with (since, until) and yielding int addresses
#: that became publicly visible in that window.
CandidateSource = Callable[[float, float], Iterable[int]]

#: A prefix source for alias detection (e.g. newly announced BGP prefixes).
PrefixSource = Callable[[float, float], Iterable[IPv6Prefix]]


@dataclass(frozen=True, slots=True)
class HitlistEntry:
    """One published entry: category plus address or prefix.

    ``removed`` entries record a *delisting*: the compiler found the target
    unresponsive on a revalidation pass (e.g. after its covering BGP
    announcement was retracted).
    """

    category: HitlistCategory
    published_at: float
    address: int | None = None
    prefix: IPv6Prefix | None = None
    manual: bool = False
    removed: bool = False

    def __post_init__(self) -> None:
        if (self.address is None) == (self.prefix is None):
            raise ValueError("entry must carry exactly one of address/prefix")


@dataclass
class HitlistSnapshot:
    """The full published state as of one compilation cycle."""

    published_at: float
    addresses: dict[HitlistCategory, set[int]] = field(default_factory=dict)
    prefixes: dict[HitlistCategory, set[IPv6Prefix]] = field(default_factory=dict)


class HitlistService:
    """Periodic hitlist compiler and publisher."""

    def __init__(
        self,
        prober: Prober,
        cycle_period: float = 14 * DAY,
        alias_check_length: int = 64,
    ):
        self.prober = prober
        self.cycle_period = check_positive("cycle_period", cycle_period)
        self.alias_check_length = alias_check_length
        self._candidate_sources: list[CandidateSource] = []
        self._prefix_sources: list[PrefixSource] = []
        self._entries: list[HitlistEntry] = []
        self._entry_times: list[float] = []
        self._known_addresses: set[int] = set()
        #: address -> categories it is currently listed under.
        self._address_categories: dict[int, set[HitlistCategory]] = {}
        self._known_aliased: set[IPv6Prefix] = set()
        self._known_non_aliased: set[IPv6Prefix] = set()
        self._last_cycle_end = 0.0

    # -- source registration -------------------------------------------------

    def add_candidate_source(self, source: CandidateSource) -> None:
        """Register a source of candidate addresses."""
        self._candidate_sources.append(source)

    def add_prefix_source(self, source: PrefixSource) -> None:
        """Register a source of prefixes to alias-check."""
        self._prefix_sources.append(source)

    # -- publication ----------------------------------------------------------

    def _publish(self, entry: HitlistEntry) -> None:
        idx = bisect.bisect_right(self._entry_times, entry.published_at)
        self._entry_times.insert(idx, entry.published_at)
        self._entries.insert(idx, entry)

    def insert_manual(
        self, category: HitlistCategory, at: float,
        address: int | None = None, prefix: IPv6Prefix | None = None,
    ) -> HitlistEntry:
        """Manually insert an entry (the paper's collaboration with the
        hitlist maintainers, §4.3.6 — 40 addresses across 10 categories)."""
        entry = HitlistEntry(
            category=category, published_at=at,
            address=address, prefix=prefix, manual=True,
        )
        self._publish(entry)
        if address is not None:
            self._known_addresses.add(address)
            self._address_categories.setdefault(address, set()).add(category)
        return entry

    # -- compilation ----------------------------------------------------------

    def run_cycle(self, at: float) -> list[HitlistEntry]:
        """Run one compilation cycle ending at time ``at``.

        Gathers candidates that appeared since the previous cycle, probes
        them, and publishes new entries.  Returns the entries published by
        this cycle.
        """
        since, until = self._last_cycle_end, at
        if until <= since:
            raise ValueError(
                f"cycle end {until} must be after previous cycle end {since}"
            )
        self._last_cycle_end = until

        new_entries: list[HitlistEntry] = []
        # Revalidate known entries first: delist what no longer answers.
        for addr in sorted(self._address_categories):
            categories = self._address_categories[addr]
            for category in sorted(categories, key=lambda c: c.value):
                if not self.prober.probe_address(addr, category, until):
                    entry = HitlistEntry(
                        category=category, published_at=until,
                        address=addr, removed=True,
                    )
                    self._publish(entry)
                    new_entries.append(entry)
                    categories.discard(category)
            if not categories:
                del self._address_categories[addr]
                self._known_addresses.discard(addr)

        candidates: set[int] = set()
        for source in self._candidate_sources:
            candidates.update(source(since, until))
        candidates -= self._known_addresses

        # Alias detection first: aliased prefixes soak up their candidates.
        check_prefixes: set[IPv6Prefix] = set()
        for source in self._prefix_sources:
            check_prefixes.update(source(since, until))
        for addr in candidates:
            check_prefixes.add(
                IPv6Prefix(
                    addr & ~((1 << (128 - self.alias_check_length)) - 1),
                    self.alias_check_length,
                )
            )
        for prefix in sorted(check_prefixes, key=lambda p: (p.length, p.network)):
            if prefix in self._known_aliased or prefix in self._known_non_aliased:
                continue
            # Aliased space is represented once, at the detected level;
            # nested prefixes are subsumed, not re-published.
            if any(known.contains_prefix(prefix)
                   for known in self._known_aliased):
                continue
            if self.prober.detect_alias(prefix, until):
                self._known_aliased.add(prefix)
                entry = HitlistEntry(
                    category=HitlistCategory.ALIASED,
                    published_at=until, prefix=prefix,
                )
            else:
                self._known_non_aliased.add(prefix)
                entry = HitlistEntry(
                    category=HitlistCategory.NON_ALIASED,
                    published_at=until, prefix=prefix,
                )
            self._publish(entry)
            new_entries.append(entry)

        for addr in sorted(candidates):
            if any(addr in p for p in self._known_aliased):
                # Aliased space: represented by the prefix list, not addresses.
                continue
            for category in ADDRESS_CATEGORIES:
                if self.prober.probe_address(addr, category, until):
                    entry = HitlistEntry(
                        category=category, published_at=until, address=addr
                    )
                    self._publish(entry)
                    new_entries.append(entry)
                    self._known_addresses.add(addr)
                    self._address_categories.setdefault(addr, set()).add(
                        category
                    )
        return new_entries

    # -- consumption ----------------------------------------------------------

    def entries_between(self, since: float, until: float) -> list[HitlistEntry]:
        """Entries with ``since < published_at <= until`` (poll semantics)."""
        lo = bisect.bisect_right(self._entry_times, since)
        hi = bisect.bisect_right(self._entry_times, until)
        return self._entries[lo:hi]

    def entries(self) -> tuple[HitlistEntry, ...]:
        return tuple(self._entries)

    def snapshot_at(self, at: float) -> HitlistSnapshot:
        """The cumulative published state visible at time ``at``."""
        snapshot = HitlistSnapshot(published_at=at)
        hi = bisect.bisect_right(self._entry_times, at)
        for entry in self._entries[:hi]:
            if entry.address is not None:
                bucket = snapshot.addresses.setdefault(entry.category, set())
                if entry.removed:
                    bucket.discard(entry.address)
                else:
                    bucket.add(entry.address)
            else:
                snapshot.prefixes.setdefault(entry.category, set()).add(
                    entry.prefix
                )
        return snapshot
