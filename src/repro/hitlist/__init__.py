"""Public IPv6 hitlist service (Gasser et al.-style).

The hitlist periodically compiles candidate addresses from public data
sources (TLD zone files, CT logs, operator-submitted seeds), probes them for
responsiveness per protocol, detects aliased prefixes, and publishes
categorized lists that hitlist-consuming scanners download.  The paper also
collaborated with the hitlist maintainers to *manually* insert addresses —
modeled by :meth:`HitlistService.insert_manual`.
"""

from repro.hitlist.categories import HitlistCategory
from repro.hitlist.prober import ResponsivenessOracle, Prober
from repro.hitlist.service import HitlistService, HitlistEntry, HitlistSnapshot

__all__ = [
    "HitlistCategory",
    "ResponsivenessOracle",
    "Prober",
    "HitlistService",
    "HitlistEntry",
    "HitlistSnapshot",
]
