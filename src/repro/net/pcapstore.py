"""Capture file reader/writer plus BPF-lite packet filters.

``PacketWriter``/``PacketReader`` persist packets in the wire format of
:mod:`repro.net.wire`.  ``PacketFilter`` is a tiny composable predicate
language standing in for the BPF filters the paper's Go tooling used.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.net import wire
from repro.net.addr import IPv6Prefix
from repro.net.packet import Packet


class PacketWriter:
    """Append packets to a capture file.

    Usable as a context manager; flushes and closes the underlying stream on
    exit.  Files start with the format header written by this class.
    """

    def __init__(self, path: str | os.PathLike | io.BufferedIOBase):
        if isinstance(path, io.BufferedIOBase):
            self._stream = path
            self._owns = False
        else:
            self._stream = open(path, "wb")
            self._owns = True
        wire.write_header(self._stream)
        self._count = 0

    @property
    def count(self) -> int:
        """Number of packets written so far."""
        return self._count

    def write(self, pkt: Packet) -> None:
        self._stream.write(wire.encode_packet(pkt))
        self._count += 1

    def write_all(self, packets: Iterable[Packet]) -> int:
        n = 0
        for pkt in packets:
            self.write(pkt)
            n += 1
        return n

    def close(self) -> None:
        self._stream.flush()
        if self._owns:
            self._stream.close()

    def __enter__(self) -> "PacketWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PacketReader:
    """Iterate packets from a capture file, optionally through a filter."""

    def __init__(
        self,
        path: str | os.PathLike | io.BufferedIOBase,
        packet_filter: Callable[[Packet], bool] | None = None,
    ):
        if isinstance(path, io.BufferedIOBase):
            self._stream = path
            self._owns = False
        else:
            self._stream = open(path, "rb")
            self._owns = True
        wire.read_header(self._stream)
        self._filter = packet_filter

    def __iter__(self) -> Iterator[Packet]:
        try:
            for pkt in wire.stream_packets(self._stream):
                if self._filter is None or self._filter(pkt):
                    yield pkt
        finally:
            self.close()

    def close(self) -> None:
        if self._owns:
            self._stream.close()

    def __enter__(self) -> "PacketReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_packets(
    path: str | os.PathLike, packet_filter: Callable[[Packet], bool] | None = None
) -> list[Packet]:
    """Read all packets from ``path`` (optionally filtered) into a list."""
    return list(PacketReader(Path(path), packet_filter))


@dataclass(frozen=True)
class PacketFilter:
    """Composable packet predicate (a BPF-lite).

    Build with the class methods and combine with ``&`` / ``|`` / ``~``::

        f = PacketFilter.proto(TCP) & PacketFilter.dst_in(prefix)
    """

    predicate: Callable[[Packet], bool]

    def __call__(self, pkt: Packet) -> bool:
        return self.predicate(pkt)

    def __and__(self, other: "PacketFilter") -> "PacketFilter":
        return PacketFilter(lambda p: self.predicate(p) and other.predicate(p))

    def __or__(self, other: "PacketFilter") -> "PacketFilter":
        return PacketFilter(lambda p: self.predicate(p) or other.predicate(p))

    def __invert__(self) -> "PacketFilter":
        return PacketFilter(lambda p: not self.predicate(p))

    @classmethod
    def everything(cls) -> "PacketFilter":
        return cls(lambda p: True)

    @classmethod
    def proto(cls, proto: int) -> "PacketFilter":
        return cls(lambda p: p.proto == proto)

    @classmethod
    def dport(cls, port: int) -> "PacketFilter":
        return cls(lambda p: p.dport == port)

    @classmethod
    def dst_in(cls, prefix: IPv6Prefix) -> "PacketFilter":
        return cls(lambda p: p.dst in prefix)

    @classmethod
    def src_in(cls, prefix: IPv6Prefix) -> "PacketFilter":
        return cls(lambda p: p.src in prefix)

    @classmethod
    def between(cls, start: float, end: float) -> "PacketFilter":
        if end < start:
            raise ValueError(f"empty time window: [{start}, {end}]")
        return cls(lambda p: start <= p.timestamp <= end)
