"""Packet model: IPv6 header plus ICMPv6 / TCP / UDP payloads.

Packets are small frozen dataclasses.  Only the fields the telescope and
analysis pipeline actually inspect are modeled (addresses, protocol, ports,
flags, ICMP type, payload bytes, hop limit) — this is the packet surface the
paper's capture infrastructure records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

import numpy as np

# IANA protocol numbers.
ICMPV6 = 58
TCP = 6
UDP = 17

_PROTO_NAMES = {ICMPV6: "icmpv6", TCP: "tcp", UDP: "udp"}


class IcmpType(enum.IntEnum):
    """ICMPv6 message types used by the telescope."""

    DEST_UNREACHABLE = 1
    PACKET_TOO_BIG = 2
    TIME_EXCEEDED = 3
    ECHO_REQUEST = 128
    ECHO_REPLY = 129


class TcpFlags(enum.IntFlag):
    """TCP flag bits (subset)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


@dataclass(frozen=True, slots=True)
class Packet:
    """A single captured/emitted packet.

    ``src`` and ``dst`` are 128-bit ints (see :mod:`repro.net.addr`).
    ``timestamp`` is simulation seconds.  For ICMPv6 packets the ports carry
    (type, code); for TCP/UDP they are the transport ports.
    """

    timestamp: float
    src: int
    dst: int
    proto: int
    sport: int = 0
    dport: int = 0
    flags: int = 0
    hop_limit: int = 64
    payload: bytes = b""
    seq: int = 0
    ack: int = 0

    def __post_init__(self) -> None:
        if self.proto not in _PROTO_NAMES:
            raise ValueError(f"unsupported protocol number: {self.proto}")
        if not 0 <= self.sport <= 0xFFFF or not 0 <= self.dport <= 0xFFFF:
            raise ValueError(
                f"ports must fit in 16 bits: sport={self.sport} dport={self.dport}"
            )
        if not 0 <= self.hop_limit <= 255:
            raise ValueError(f"hop limit must fit in 8 bits: {self.hop_limit}")

    @property
    def proto_name(self) -> str:
        return _PROTO_NAMES[self.proto]

    @property
    def is_icmp_echo_request(self) -> bool:
        return self.proto == ICMPV6 and self.sport == IcmpType.ECHO_REQUEST

    @property
    def is_tcp_syn(self) -> bool:
        """True for a bare SYN (no ACK) — the start of a connection attempt."""
        return (
            self.proto == TCP
            and bool(self.flags & TcpFlags.SYN)
            and not self.flags & TcpFlags.ACK
        )

    def reply_template(self) -> "Packet":
        """Return a packet with src/dst (and ports) swapped, same timestamp.

        Honeypot responders start from this and then adjust protocol fields.
        """
        return replace(
            self,
            src=self.dst,
            dst=self.src,
            sport=self.dport,
            dport=self.sport,
            payload=b"",
        )


# -- vectorized predicates (columnar reply path) ---------------------------
#
# The batch honeypot kernels evaluate the same predicates the scalar
# ``Packet`` properties implement, over whole uint8/uint16 columns at once.

def tcp_syn_mask(flags) -> np.ndarray:
    """Vectorized :attr:`Packet.is_tcp_syn` over a uint8 flags column."""
    flags = np.asarray(flags)
    syn = np.uint8(int(TcpFlags.SYN))
    ack = np.uint8(int(TcpFlags.ACK))
    return ((flags & syn) != 0) & ((flags & ack) == 0)


def icmp_echo_request_mask(proto, sport) -> np.ndarray:
    """Vectorized :attr:`Packet.is_icmp_echo_request` over proto/sport
    columns (``sport`` carries the ICMP type, as everywhere in a batch)."""
    proto = np.asarray(proto)
    sport = np.asarray(sport)
    return ((proto == np.uint8(ICMPV6))
            & (sport == np.uint16(int(IcmpType.ECHO_REQUEST))))


def icmp_echo_request(
    timestamp: float, src: int, dst: int, ident: int = 0, payload: bytes = b""
) -> Packet:
    """Build an ICMPv6 Echo Request.  ``ident`` rides in the dport field."""
    return Packet(
        timestamp=timestamp,
        src=src,
        dst=dst,
        proto=ICMPV6,
        sport=int(IcmpType.ECHO_REQUEST),
        dport=ident & 0xFFFF,
        payload=payload,
    )


def icmp_echo_reply(request: Packet, timestamp: float | None = None) -> Packet:
    """Build the Echo Reply matching ``request``."""
    if not request.is_icmp_echo_request:
        raise ValueError("icmp_echo_reply requires an ICMPv6 Echo Request")
    return Packet(
        timestamp=request.timestamp if timestamp is None else timestamp,
        src=request.dst,
        dst=request.src,
        proto=ICMPV6,
        sport=int(IcmpType.ECHO_REPLY),
        dport=request.dport,
        payload=request.payload,
    )


def tcp_segment(
    timestamp: float,
    src: int,
    dst: int,
    sport: int,
    dport: int,
    flags: TcpFlags,
    seq: int = 0,
    ack: int = 0,
    payload: bytes = b"",
) -> Packet:
    """Build a TCP segment."""
    return Packet(
        timestamp=timestamp,
        src=src,
        dst=dst,
        proto=TCP,
        sport=sport,
        dport=dport,
        flags=int(flags),
        seq=seq,
        ack=ack,
        payload=payload,
    )


def udp_datagram(
    timestamp: float,
    src: int,
    dst: int,
    sport: int,
    dport: int,
    payload: bytes = b"",
) -> Packet:
    """Build a UDP datagram."""
    return Packet(
        timestamp=timestamp,
        src=src,
        dst=dst,
        proto=UDP,
        sport=sport,
        dport=dport,
        payload=payload,
    )
