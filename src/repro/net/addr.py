"""Int-backed IPv6 addresses and prefixes.

The standard-library :mod:`ipaddress` module is convenient but too slow for
the hot paths in this library (hundreds of thousands of per-packet
aggregations).  We keep addresses as plain 128-bit ints wrapped in a frozen
``IPv6Address`` and expose vectorized helpers for the aggregation
granularities the paper uses (/32, /48, /64, /128).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator

import numpy as np

MAX_ADDRESS = (1 << 128) - 1

_HEX_GROUP = re.compile(r"^[0-9a-fA-F]{1,4}$")


def _mask(prefix_len: int) -> int:
    """Return the network mask for ``prefix_len`` as a 128-bit int."""
    if not 0 <= prefix_len <= 128:
        raise ValueError(f"prefix length must be in [0, 128], got {prefix_len}")
    if prefix_len == 0:
        return 0
    return MAX_ADDRESS ^ ((1 << (128 - prefix_len)) - 1)


@lru_cache(maxsize=None)
def _cached_mask(prefix_len: int) -> int:
    return _mask(prefix_len)


def parse_address(text: str) -> int:
    """Parse an IPv6 address string into its 128-bit integer value.

    Supports the ``::`` zero-compression form and full eight-group form.
    Raises :class:`ValueError` on malformed input.
    """
    text = text.strip()
    if text.count("::") > 1:
        raise ValueError(f"invalid IPv6 address (multiple '::'): {text!r}")
    if "::" in text:
        head, _, tail = text.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 1:
            raise ValueError(f"invalid IPv6 address (bad '::'): {text!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise ValueError(f"invalid IPv6 address (need 8 groups): {text!r}")
    value = 0
    for group in groups:
        if not _HEX_GROUP.match(group):
            raise ValueError(f"invalid IPv6 group {group!r} in {text!r}")
        value = (value << 16) | int(group, 16)
    return value


def format_address(value: int) -> str:
    """Format a 128-bit int as a canonical (RFC 5952-style) IPv6 string."""
    if not 0 <= value <= MAX_ADDRESS:
        raise ValueError(f"address out of range: {value!r}")
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -16, -16)]
    # Find the longest run of zero groups (length >= 2) for '::' compression.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for i, g in enumerate(groups):
        if g == 0:
            if run_start < 0:
                run_start, run_len = i, 1
            else:
                run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(f"{g:x}" for g in groups)
    head = ":".join(f"{g:x}" for g in groups[:best_start])
    tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
    return f"{head}::{tail}"


@dataclass(frozen=True, slots=True, order=True)
class IPv6Address:
    """A single IPv6 address backed by a 128-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= MAX_ADDRESS:
            raise ValueError(f"address out of range: {self.value!r}")

    @classmethod
    def parse(cls, text: str) -> "IPv6Address":
        return cls(parse_address(text))

    def __str__(self) -> str:
        return format_address(self.value)

    def truncate(self, prefix_len: int) -> int:
        """Return the int value of this address truncated to ``prefix_len``."""
        return self.value & _cached_mask(prefix_len)

    def prefix(self, prefix_len: int) -> "IPv6Prefix":
        """Return the covering prefix of the given length."""
        return IPv6Prefix(self.truncate(prefix_len), prefix_len)


@dataclass(frozen=True, slots=True, order=True)
class IPv6Prefix:
    """An IPv6 network prefix: a truncated 128-bit network int + length."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 128:
            raise ValueError(f"prefix length out of range: {self.length!r}")
        if not 0 <= self.network <= MAX_ADDRESS:
            raise ValueError(f"network out of range: {self.network!r}")
        if self.network & ~_cached_mask(self.length):
            raise ValueError(
                f"host bits set in {format_address(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv6Prefix":
        addr_text, slash, len_text = text.partition("/")
        if not slash:
            raise ValueError(f"prefix must contain '/': {text!r}")
        return cls(parse_address(addr_text), int(len_text))

    def __str__(self) -> str:
        return f"{format_address(self.network)}/{self.length}"

    def __contains__(self, item) -> bool:
        value = item.value if isinstance(item, IPv6Address) else int(item)
        return value & _cached_mask(self.length) == self.network

    def contains_prefix(self, other: "IPv6Prefix") -> bool:
        """True when ``other`` is equal to or nested inside this prefix."""
        if other.length < self.length:
            return False
        return other.network & _cached_mask(self.length) == self.network

    @property
    def first(self) -> IPv6Address:
        """The first (all-zero-host) address of the prefix."""
        return IPv6Address(self.network)

    @property
    def last(self) -> IPv6Address:
        """The last (all-one-host) address of the prefix."""
        return IPv6Address(self.network | (MAX_ADDRESS ^ _cached_mask(self.length)))

    @property
    def num_addresses(self) -> int:
        return 1 << (128 - self.length)

    def address_at(self, offset: int) -> IPv6Address:
        """Return the address at ``offset`` from the start of the prefix."""
        if not 0 <= offset < self.num_addresses:
            raise ValueError(f"offset {offset} outside {self}")
        return IPv6Address(self.network | offset)

    def random_address(self, rng: np.random.Generator) -> IPv6Address:
        """Draw a uniformly random address from this prefix."""
        host_bits = 128 - self.length
        offset = 0
        # numpy generators yield at most 64 random bits at a time.
        for shift in range(0, host_bits, 64):
            chunk_bits = min(64, host_bits - shift)
            chunk = int(rng.integers(0, 1 << chunk_bits, dtype=np.uint64))
            offset |= chunk << shift
        return IPv6Address(self.network | offset)

    def subnets(self, new_length: int) -> Iterator["IPv6Prefix"]:
        """Iterate the subnets of this prefix at ``new_length``.

        Refuses to enumerate more than 2**20 subnets to protect callers from
        accidentally materializing astronomically large iterators.
        """
        if new_length < self.length:
            raise ValueError(
                f"new length /{new_length} shorter than prefix /{self.length}"
            )
        count = 1 << (new_length - self.length)
        if count > 1 << 20:
            raise ValueError(
                f"refusing to enumerate {count} subnets of {self}; "
                "use subnet_at() for point lookups"
            )
        step = 1 << (128 - new_length)
        for i in range(count):
            yield IPv6Prefix(self.network + i * step, new_length)

    def subnet_at(self, index: int, new_length: int) -> "IPv6Prefix":
        """Return the ``index``-th subnet of this prefix at ``new_length``."""
        if new_length < self.length:
            raise ValueError(
                f"new length /{new_length} shorter than prefix /{self.length}"
            )
        count = 1 << (new_length - self.length)
        if not 0 <= index < count:
            raise ValueError(f"subnet index {index} out of range for {self}")
        step = 1 << (128 - new_length)
        return IPv6Prefix(self.network + index * step, new_length)

    def supernet(self, new_length: int) -> "IPv6Prefix":
        """Return the covering prefix of this prefix at a shorter length."""
        if new_length > self.length:
            raise ValueError(
                f"supernet length /{new_length} longer than prefix /{self.length}"
            )
        return IPv6Prefix(self.network & _cached_mask(new_length), new_length)


def aggregate(value: int, prefix_len: int) -> int:
    """Truncate an int address to ``prefix_len`` (fast scalar path)."""
    return value & _cached_mask(prefix_len)


def aggregate_sources(values: Iterable[int], prefix_len: int) -> set[int]:
    """Aggregate int addresses to the set of covering /``prefix_len`` nets."""
    mask = _cached_mask(prefix_len)
    return {v & mask for v in values}


def split_u64(values: Iterable[int]) -> tuple[np.ndarray, np.ndarray]:
    """Split 128-bit int addresses into (hi, lo) uint64 numpy arrays.

    The columnar analysis code stores addresses this way so that numpy can
    group and mask them without Python-object overhead.
    """
    vals = list(values)
    hi = np.fromiter(((v >> 64) & 0xFFFFFFFFFFFFFFFF for v in vals),
                     dtype=np.uint64, count=len(vals))
    lo = np.fromiter((v & 0xFFFFFFFFFFFFFFFF for v in vals),
                     dtype=np.uint64, count=len(vals))
    return hi, lo


def join_u64(hi: np.ndarray, lo: np.ndarray) -> list[int]:
    """Inverse of :func:`split_u64`."""
    return [(int(h) << 64) | int(l) for h, l in zip(hi, lo)]


def mask_u64(hi: np.ndarray, lo: np.ndarray, prefix_len: int) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized truncation of (hi, lo) address columns to ``prefix_len``."""
    if not 0 <= prefix_len <= 128:
        raise ValueError(f"prefix length must be in [0, 128], got {prefix_len}")
    if prefix_len <= 64:
        hi_mask = np.uint64(0) if prefix_len == 0 else np.uint64(
            (0xFFFFFFFFFFFFFFFF << (64 - prefix_len)) & 0xFFFFFFFFFFFFFFFF
        )
        return hi & hi_mask, np.zeros_like(lo)
    lo_bits = prefix_len - 64
    lo_mask = np.uint64(0xFFFFFFFFFFFFFFFF) if lo_bits == 64 else np.uint64(
        (0xFFFFFFFFFFFFFFFF << (64 - lo_bits)) & 0xFFFFFFFFFFFFFFFF
    )
    return hi.copy(), lo & lo_mask


def pack_key_u64(hi: np.ndarray, lo: np.ndarray,
                 prefix_len: int) -> np.ndarray | None:
    """Pack truncated (hi, lo) address columns into one uint64 key column.

    Only possible when ``prefix_len <= 64``: the truncated address then
    lives entirely in the hi half, which covers the paper's /32, /48, and
    /64 aggregation levels.  Returns ``None`` for longer lengths; callers
    fall back to the two-column helpers below.  The single-column form lets
    ``np.unique``/``np.isin`` run their fast 1-D sort instead of the slow
    void-view sort they perform on 2-D input.
    """
    if not 0 <= prefix_len <= 128:
        raise ValueError(f"prefix length must be in [0, 128], got {prefix_len}")
    if prefix_len > 64:
        return None
    if prefix_len == 0:
        return np.zeros(len(hi), dtype=np.uint64)
    mask = np.uint64((0xFFFFFFFFFFFFFFFF << (64 - prefix_len))
                     & 0xFFFFFFFFFFFFFFFF)
    return hi & mask


def unique_pairs_u64(hi: np.ndarray, lo: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Distinct (hi, lo) rows, in ascending (hi, lo) order.

    Equivalent to ``np.unique(column_stack([hi, lo]), axis=0)`` but via a
    plain two-key lexsort instead of the void-view sort numpy uses for 2-D
    input.
    """
    n = len(hi)
    if n == 0:
        return hi[:0], lo[:0]
    order = np.lexsort((lo, hi))
    sh, sl = hi[order], lo[order]
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    keep[1:] = (sh[1:] != sh[:-1]) | (sl[1:] != sl[:-1])
    return sh[keep], sl[keep]


def group_ids_u64(hi: np.ndarray, lo: np.ndarray) -> tuple[np.ndarray, int]:
    """Group rows by (hi, lo) value: ``(ids, n_groups)``.

    Ids are assigned in ascending (hi, lo) order, matching the ``inverse``
    of ``np.unique(..., axis=0, return_inverse=True)``, again without the
    2-D void-view sort.
    """
    n = len(hi)
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    order = np.lexsort((lo, hi))
    sh, sl = hi[order], lo[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = (sh[1:] != sh[:-1]) | (sl[1:] != sl[:-1])
    ids_sorted = np.cumsum(boundary) - 1
    ids = np.empty(n, dtype=np.int64)
    ids[order] = ids_sorted
    return ids, int(ids_sorted[-1]) + 1


def member_mask_u64(hi: np.ndarray, lo: np.ndarray,
                    set_hi: np.ndarray, set_lo: np.ndarray) -> np.ndarray:
    """Row-wise membership of (hi, lo) in the set given as (set_hi, set_lo).

    The 128-bit analogue of ``np.isin``: both halves must match on the same
    row.  Implemented by grouping the concatenation of set and query rows,
    so no Python-level per-row lookups happen.
    """
    n_set = len(set_hi)
    if n_set == 0:
        return np.zeros(len(hi), dtype=bool)
    all_hi = np.concatenate([np.asarray(set_hi, dtype=np.uint64), hi])
    all_lo = np.concatenate([np.asarray(set_lo, dtype=np.uint64), lo])
    ids, n_groups = group_ids_u64(all_hi, all_lo)
    in_set = np.zeros(n_groups, dtype=bool)
    in_set[ids[:n_set]] = True
    return in_set[ids[n_set:]]


def group_ids_cols(cols: "list[np.ndarray] | tuple") -> tuple[np.ndarray, int]:
    """Group rows by the tuple of key columns: ``(ids, n_groups)``.

    The k-column generalization of :func:`group_ids_u64`: rows compare
    equal when every column matches.  Ids are assigned in ascending
    lexicographic order of the column tuple (first column is the primary
    key).  This is the composite-key workhorse of the columnar honeypot
    reply path — session keys are (peer, peer_port, local, local_port)
    tuples spread over six u64 columns, NAT flow keys over six as well.
    """
    cols = [np.asarray(c) for c in cols]
    n = len(cols[0])
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    order = np.lexsort(tuple(reversed(cols)))
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for col in cols:
        sc = col[order]
        boundary[1:] |= sc[1:] != sc[:-1]
    ids_sorted = np.cumsum(boundary) - 1
    ids = np.empty(n, dtype=np.int64)
    ids[order] = ids_sorted
    return ids, int(ids_sorted[-1]) + 1


def member_mask_cols(query_cols, set_cols) -> np.ndarray:
    """Row-wise membership of a composite key in a composite-key set.

    The k-column generalization of :func:`member_mask_u64`, used e.g. for
    (address, port) binding lookups: the set is the bound (hi, lo, port)
    triples, the query is the packet columns.  Exact — no hashing, no
    packing collisions.
    """
    set_cols = [np.asarray(c) for c in set_cols]
    query_cols = [np.asarray(c) for c in query_cols]
    n_set = len(set_cols[0])
    if n_set == 0:
        return np.zeros(len(query_cols[0]), dtype=bool)
    all_cols = [np.concatenate([s.astype(q.dtype, copy=False), q])
                for s, q in zip(set_cols, query_cols)]
    ids, n_groups = group_ids_cols(all_cols)
    in_set = np.zeros(n_groups, dtype=bool)
    in_set[ids[:n_set]] = True
    return in_set[ids[n_set:]]


def lookup_pos_u64(hi: np.ndarray, lo: np.ndarray,
                   set_hi: np.ndarray, set_lo: np.ndarray,
                   set_pos: np.ndarray) -> np.ndarray:
    """Map each (hi, lo) row to ``set_pos`` of its match in the set (-1 on
    miss).  The value-returning sibling of :func:`member_mask_u64`; the set
    keys must be distinct."""
    n_set = len(set_hi)
    out = np.full(len(hi), -1, dtype=np.int64)
    if n_set == 0 or len(hi) == 0:
        return out
    all_hi = np.concatenate([np.asarray(set_hi, dtype=np.uint64), hi])
    all_lo = np.concatenate([np.asarray(set_lo, dtype=np.uint64), lo])
    ids, n_groups = group_ids_u64(all_hi, all_lo)
    pos_of_group = np.full(n_groups, -1, dtype=np.int64)
    pos_of_group[ids[:n_set]] = np.asarray(set_pos, dtype=np.int64)
    return pos_of_group[ids[n_set:]]


def random_addresses_u64(prefix: IPv6Prefix, rng: np.random.Generator,
                         n: int) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``n`` uniform addresses from ``prefix`` as (hi, lo) columns.

    The columnar analogue of :meth:`IPv6Prefix.random_address`: host bits
    are drawn as at most one uint64 column per half, so no Python-level
    big-int arithmetic happens per address.
    """
    net_hi = np.uint64((prefix.network >> 64) & 0xFFFFFFFFFFFFFFFF)
    net_lo = np.uint64(prefix.network & 0xFFFFFFFFFFFFFFFF)
    host_bits = 128 - prefix.length
    lo_bits = min(host_bits, 64)
    hi_bits = host_bits - lo_bits
    if lo_bits > 0:
        lo = rng.integers(0, 1 << lo_bits, size=n, dtype=np.uint64) | net_lo
    else:
        lo = np.full(n, net_lo, dtype=np.uint64)
    if hi_bits > 0:
        hi = rng.integers(0, 1 << hi_bits, size=n, dtype=np.uint64) | net_hi
    else:
        hi = np.full(n, net_hi, dtype=np.uint64)
    return hi, lo


def parse_prefix(text: str) -> IPv6Prefix:
    """Convenience alias for :meth:`IPv6Prefix.parse`."""
    return IPv6Prefix.parse(text)
