"""Standard libpcap interop: export/import captures as real ``.pcap`` files.

The internal capture format (:mod:`repro.net.wire`) is compact but
repro-specific.  This module serializes the same packets as genuine
Ethernet/IPv6/{ICMPv6,TCP,UDP} frames — correct header layouts and real
one's-complement checksums over the IPv6 pseudo-header — inside a classic
libpcap container, so simulated telescope captures open directly in
Wireshark, tcpdump, or Zeek.  The reader parses such files back into
:class:`~repro.net.packet.Packet` objects (and tolerates/ignores non-IPv6
frames in foreign captures).
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator

from repro.net.packet import ICMPV6, TCP, UDP, Packet

#: Classic pcap magic (microsecond timestamps, little-endian).
PCAP_MAGIC = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1
ETHERTYPE_IPV6 = 0x86DD

#: Locally administered placeholder MACs for the synthetic ethernet layer.
_SRC_MAC = bytes.fromhex("020000000001")
_DST_MAC = bytes.fromhex("020000000002")

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_IPV6_HEADER = struct.Struct("!IHBB16s16s")


def _checksum(data: bytes) -> int:
    """RFC 1071 one's-complement sum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _pseudo_header(src: bytes, dst: bytes, length: int,
                   next_header: int) -> bytes:
    return src + dst + struct.pack("!II", length, next_header)


def _transport_bytes(pkt: Packet) -> bytes:
    """Serialize the transport layer with a valid checksum."""
    src = pkt.src.to_bytes(16, "big")
    dst = pkt.dst.to_bytes(16, "big")
    if pkt.proto == ICMPV6:
        # Echo-style layout: type, code, checksum, identifier, sequence.
        header = struct.pack("!BBHHH", pkt.sport & 0xFF, 0, 0,
                             pkt.dport, pkt.seq & 0xFFFF)
        body = header + pkt.payload
        checksum = _checksum(
            _pseudo_header(src, dst, len(body), ICMPV6) + body
        )
        return body[:2] + struct.pack("!H", checksum) + body[4:]
    if pkt.proto == TCP:
        offset_flags = (5 << 12) | (pkt.flags & 0x3F)
        header = struct.pack("!HHIIHHHH", pkt.sport, pkt.dport,
                             pkt.seq & 0xFFFFFFFF, pkt.ack & 0xFFFFFFFF,
                             offset_flags, 0xFFFF, 0, 0)
        body = header + pkt.payload
        checksum = _checksum(_pseudo_header(src, dst, len(body), TCP) + body)
        return body[:16] + struct.pack("!H", checksum) + body[18:]
    # UDP
    length = 8 + len(pkt.payload)
    header = struct.pack("!HHHH", pkt.sport, pkt.dport, length, 0)
    body = header + pkt.payload
    checksum = _checksum(_pseudo_header(src, dst, length, UDP) + body)
    if checksum == 0:
        checksum = 0xFFFF  # UDP: zero means "no checksum"
    return body[:6] + struct.pack("!H", checksum) + body[8:]


def serialize_frame(pkt: Packet) -> bytes:
    """One packet as a full Ethernet/IPv6 frame."""
    transport = _transport_bytes(pkt)
    ipv6 = _IPV6_HEADER.pack(
        6 << 28,                     # version 6, tc 0, flow label 0
        len(transport),
        pkt.proto,
        pkt.hop_limit,
        pkt.src.to_bytes(16, "big"),
        pkt.dst.to_bytes(16, "big"),
    )
    ethernet = _DST_MAC + _SRC_MAC + struct.pack("!H", ETHERTYPE_IPV6)
    return ethernet + ipv6 + transport


def write_pcap(path_or_stream, packets: Iterable[Packet]) -> int:
    """Write packets as a classic libpcap file; returns the packet count."""
    stream: BinaryIO
    owns = False
    if hasattr(path_or_stream, "write"):
        stream = path_or_stream
    else:
        stream = open(path_or_stream, "wb")
        owns = True
    try:
        stream.write(_GLOBAL_HEADER.pack(
            PCAP_MAGIC, 2, 4, 0, 0, 65_535, LINKTYPE_ETHERNET
        ))
        count = 0
        for pkt in packets:
            frame = serialize_frame(pkt)
            seconds = int(pkt.timestamp)
            micros = int(round((pkt.timestamp - seconds) * 1e6))
            stream.write(_RECORD_HEADER.pack(
                seconds, micros, len(frame), len(frame)
            ))
            stream.write(frame)
            count += 1
        return count
    finally:
        if owns:
            stream.close()


def parse_frame(frame: bytes, timestamp: float) -> Packet | None:
    """Parse one Ethernet frame back into a Packet (None for non-IPv6 or
    unsupported transports)."""
    if len(frame) < 14 + 40:
        return None
    ethertype = struct.unpack_from("!H", frame, 12)[0]
    if ethertype != ETHERTYPE_IPV6:
        return None
    (_vtf, payload_len, next_header, hop_limit,
     src, dst) = _IPV6_HEADER.unpack_from(frame, 14)
    body = frame[14 + 40: 14 + 40 + payload_len]
    src_int = int.from_bytes(src, "big")
    dst_int = int.from_bytes(dst, "big")
    if next_header == ICMPV6 and len(body) >= 8:
        icmp_type, _code, _ck, ident, seq = struct.unpack_from("!BBHHH",
                                                               body)
        return Packet(
            timestamp=timestamp, src=src_int, dst=dst_int, proto=ICMPV6,
            sport=icmp_type, dport=ident, seq=seq,
            hop_limit=hop_limit, payload=body[8:],
        )
    if next_header == TCP and len(body) >= 20:
        (sport, dport, seq, ack, offset_flags, _win, _ck,
         _urg) = struct.unpack_from("!HHIIHHHH", body)
        data_offset = (offset_flags >> 12) * 4
        return Packet(
            timestamp=timestamp, src=src_int, dst=dst_int, proto=TCP,
            sport=sport, dport=dport, seq=seq, ack=ack,
            flags=offset_flags & 0x3F, hop_limit=hop_limit,
            payload=body[data_offset:],
        )
    if next_header == UDP and len(body) >= 8:
        sport, dport, length, _ck = struct.unpack_from("!HHHH", body)
        return Packet(
            timestamp=timestamp, src=src_int, dst=dst_int, proto=UDP,
            sport=sport, dport=dport, hop_limit=hop_limit,
            payload=body[8:length] if length >= 8 else b"",
        )
    return None


def read_pcap(path_or_stream) -> Iterator[Packet]:
    """Read a classic libpcap file, yielding the parseable IPv6 packets."""
    stream: BinaryIO
    owns = False
    if hasattr(path_or_stream, "read"):
        stream = path_or_stream
    else:
        stream = open(path_or_stream, "rb")
        owns = True
    try:
        header = stream.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise ValueError("truncated pcap global header")
        magic = struct.unpack_from("<I", header)[0]
        if magic != PCAP_MAGIC:
            raise ValueError(f"unsupported pcap magic: {magic:#x}")
        linktype = _GLOBAL_HEADER.unpack(header)[6]
        if linktype != LINKTYPE_ETHERNET:
            raise ValueError(f"unsupported link type: {linktype}")
        while True:
            record = stream.read(_RECORD_HEADER.size)
            if not record:
                return
            if len(record) < _RECORD_HEADER.size:
                raise ValueError("truncated pcap record header")
            seconds, micros, caplen, _origlen = _RECORD_HEADER.unpack(record)
            frame = stream.read(caplen)
            if len(frame) < caplen:
                raise ValueError("truncated pcap frame")
            pkt = parse_frame(frame, seconds + micros / 1e6)
            if pkt is not None:
                yield pkt
    finally:
        if owns:
            stream.close()


def verify_checksums(frame: bytes) -> bool:
    """Validate the transport checksum of a serialized IPv6 frame."""
    if len(frame) < 54 or struct.unpack_from("!H", frame, 12)[0] != \
            ETHERTYPE_IPV6:
        return False
    (_vtf, payload_len, next_header, _hop,
     src, dst) = _IPV6_HEADER.unpack_from(frame, 14)
    body = frame[54: 54 + payload_len]
    pseudo = _pseudo_header(src, dst, len(body), next_header)
    if next_header == UDP:
        # Zero out the checksum field and recompute.
        stored = struct.unpack_from("!H", body, 6)[0]
        cleared = body[:6] + b"\x00\x00" + body[8:]
        computed = _checksum(pseudo + cleared)
        if computed == 0:
            computed = 0xFFFF
        return stored == computed
    if next_header == TCP:
        stored = struct.unpack_from("!H", body, 16)[0]
        cleared = body[:16] + b"\x00\x00" + body[18:]
        return stored == _checksum(pseudo + cleared)
    if next_header == ICMPV6:
        stored = struct.unpack_from("!H", body, 2)[0]
        cleared = body[:2] + b"\x00\x00" + body[4:]
        return stored == _checksum(pseudo + cleared)
    return False


def convert_capture(source_path, destination_path) -> int:
    """Convert an internal ``.rpv6`` capture into a standard ``.pcap``.

    Returns the number of packets converted.  This is the bridge from the
    telescope's mirror files to Wireshark/Zeek tooling.
    """
    from repro.net.pcapstore import PacketReader

    return write_pcap(destination_path, PacketReader(source_path))
