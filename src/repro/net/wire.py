"""Binary wire format for packet records.

The capture infrastructure persists packets in a compact fixed-layout binary
record (a pcap-like format specialized for this library's packet model).
Record layout, little-endian:

    offset  size  field
    0       8     timestamp (float64, simulation seconds)
    8       16    src address (big-endian 128-bit)
    24      16    dst address (big-endian 128-bit)
    40      1     protocol number
    41      2     sport
    43      2     dport
    45      2     flags
    47      1     hop limit
    48      4     seq
    52      4     ack
    56      2     payload length N
    58      N     payload bytes
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator

from repro.net.packet import Packet

_HEADER = struct.pack("<4sHH", b"RPV6", 1, 0)
HEADER_LEN = len(_HEADER)

_FIXED = struct.Struct("<d16s16sBHHHBIIH")
FIXED_LEN = _FIXED.size


def write_header(stream: BinaryIO) -> None:
    """Write the capture-file magic/version header."""
    stream.write(_HEADER)


def read_header(stream: BinaryIO) -> None:
    """Consume and validate the capture-file header."""
    header = stream.read(HEADER_LEN)
    if len(header) != HEADER_LEN or header[:4] != b"RPV6":
        raise ValueError("not a repro capture file (bad magic)")
    (_, version, _) = struct.unpack("<4sHH", header)
    if version != 1:
        raise ValueError(f"unsupported capture file version: {version}")


def encode_packet(pkt: Packet) -> bytes:
    """Encode one packet into its binary record."""
    payload = pkt.payload
    if len(payload) > 0xFFFF:
        raise ValueError(f"payload too large to encode: {len(payload)} bytes")
    fixed = _FIXED.pack(
        pkt.timestamp,
        pkt.src.to_bytes(16, "big"),
        pkt.dst.to_bytes(16, "big"),
        pkt.proto,
        pkt.sport,
        pkt.dport,
        pkt.flags,
        pkt.hop_limit,
        pkt.seq & 0xFFFFFFFF,
        pkt.ack & 0xFFFFFFFF,
        len(payload),
    )
    return fixed + payload


def decode_packet(record: bytes) -> Packet:
    """Decode one binary record back into a :class:`Packet`."""
    if len(record) < FIXED_LEN:
        raise ValueError("truncated packet record")
    (ts, src, dst, proto, sport, dport, flags, hop, seq, ack, plen) = _FIXED.unpack(
        record[:FIXED_LEN]
    )
    payload = record[FIXED_LEN:FIXED_LEN + plen]
    if len(payload) != plen:
        raise ValueError("truncated packet payload")
    return Packet(
        timestamp=ts,
        src=int.from_bytes(src, "big"),
        dst=int.from_bytes(dst, "big"),
        proto=proto,
        sport=sport,
        dport=dport,
        flags=flags,
        hop_limit=hop,
        payload=payload,
        seq=seq,
        ack=ack,
    )


def stream_packets(stream: BinaryIO) -> Iterator[Packet]:
    """Yield packets from an open capture stream positioned after the header."""
    while True:
        fixed = stream.read(FIXED_LEN)
        if not fixed:
            return
        if len(fixed) < FIXED_LEN:
            raise ValueError("truncated packet record at end of stream")
        plen = struct.unpack_from("<H", fixed, FIXED_LEN - 2)[0]
        payload = stream.read(plen)
        if len(payload) != plen:
            raise ValueError("truncated packet payload at end of stream")
        yield decode_packet(fixed + payload)
