"""IPv6 data-plane substrate: addresses, packets, wire format, capture files,
and simulated network interfaces.

The telescope and scanner ecosystem are built on this package.  Addresses
are int-backed (128-bit Python ints) with helpers to aggregate to the /48
and /64 granularities the paper uses throughout, and packets are lightweight
frozen dataclasses with an exact binary wire format for capture storage.
"""

from repro.net.addr import (
    IPv6Address,
    IPv6Prefix,
    aggregate,
    aggregate_sources,
    parse_address,
    parse_prefix,
)
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    IcmpType,
    Packet,
    TcpFlags,
    icmp_echo_reply,
    icmp_echo_request,
    tcp_segment,
    udp_datagram,
)
from repro.net.pcapstore import PacketReader, PacketWriter, read_packets
from repro.net.realpcap import convert_capture, read_pcap, write_pcap
from repro.net.iface import Interface, Link

__all__ = [
    "IPv6Address",
    "IPv6Prefix",
    "aggregate",
    "aggregate_sources",
    "parse_address",
    "parse_prefix",
    "Packet",
    "ICMPV6",
    "TCP",
    "UDP",
    "IcmpType",
    "TcpFlags",
    "icmp_echo_request",
    "icmp_echo_reply",
    "tcp_segment",
    "udp_datagram",
    "PacketReader",
    "PacketWriter",
    "read_packets",
    "write_pcap",
    "read_pcap",
    "convert_capture",
    "Interface",
    "Link",
]
