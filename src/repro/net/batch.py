"""Struct-of-arrays packet batches: the emission-side columnar format.

A :class:`PacketBatch` carries the same eight columns the capture side
records (``ts, src_hi, src_lo, dst_hi, dst_lo, proto, sport, dport``) so a
whole day's probes flow from the scanner agents through dispatch and into
:class:`~repro.core.capture.PacketCapturer` without ever materializing a
per-packet :class:`~repro.net.packet.Packet` object.

Batches carry *probe semantics*: every TCP row is a bare SYN, every UDP row
carries the scanner's two-byte payload, and every ICMPv6 row is an Echo
Request (``sport`` holds the ICMP type, exactly as in the scalar emission
path).  :meth:`PacketBatch.packet_at` materializes a single row back into a
``Packet`` under those semantics — the interactive honeypots (Twinklenet,
T-Pot) only ever see the slice of a batch that can actually elicit a reply,
and that slice goes through this method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.net.addr import IPv6Prefix, mask_u64
from repro.net.packet import ICMPV6, TCP, UDP, IcmpType, Packet, TcpFlags

_U64 = 0xFFFFFFFFFFFFFFFF

#: The two-byte payload scanner UDP probes carry (matches the scalar
#: :func:`repro.net.packet.udp_datagram` emission path).
PROBE_UDP_PAYLOAD = b"\x00\x01"

#: ``origin`` value for rows whose emitting agent is unknown (e.g. a batch
#: concatenated from parts with and without provenance).
UNKNOWN_ORIGIN = -1


@dataclass(frozen=True)
class PacketBatch:
    """An immutable columnar batch of probe packets.

    The optional ``origin`` column carries the emitting scanner agent's
    stable id (int32) — ground-truth provenance the real telescopes could
    never see.  It rides along through dispatch and honeypot reaction, and
    is stripped at the capture boundary into a sidecar ground-truth table
    (:meth:`repro.core.capture.PacketCapturer.capture_batch`), so the
    analysis-facing records stay exactly what a telescope observes.
    """

    ts: np.ndarray        # float64
    src_hi: np.ndarray    # uint64
    src_lo: np.ndarray    # uint64
    dst_hi: np.ndarray    # uint64
    dst_lo: np.ndarray    # uint64
    proto: np.ndarray     # uint8
    sport: np.ndarray     # uint16
    dport: np.ndarray     # uint16
    origin: np.ndarray | None = None  # int32 agent ids, or absent

    def __post_init__(self) -> None:
        n = len(self.ts)
        for name in ("src_hi", "src_lo", "dst_hi", "dst_lo",
                     "proto", "sport", "dport"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} length mismatch")
        if self.origin is not None and len(self.origin) != n:
            raise ValueError("column origin length mismatch")

    # -- construction ---------------------------------------------------

    @classmethod
    def from_columns(cls, ts, src_hi, src_lo, dst_hi, dst_lo,
                     proto, sport, dport, origin=None) -> "PacketBatch":
        """Build a batch, coercing every column to its canonical dtype."""
        return cls(
            ts=np.asarray(ts, dtype=np.float64),
            src_hi=np.asarray(src_hi, dtype=np.uint64),
            src_lo=np.asarray(src_lo, dtype=np.uint64),
            dst_hi=np.asarray(dst_hi, dtype=np.uint64),
            dst_lo=np.asarray(dst_lo, dtype=np.uint64),
            proto=np.asarray(proto, dtype=np.uint8),
            sport=np.asarray(sport, dtype=np.uint16),
            dport=np.asarray(dport, dtype=np.uint16),
            origin=(None if origin is None
                    else np.asarray(origin, dtype=np.int32)),
        )

    @classmethod
    def empty(cls) -> "PacketBatch":
        return cls.from_columns([], [], [], [], [], [], [], [])

    @classmethod
    def from_packets(cls, packets: Iterable[Packet]) -> "PacketBatch":
        cols: tuple[list, ...] = ([], [], [], [], [], [], [], [])
        for p in packets:
            cols[0].append(p.timestamp)
            cols[1].append((p.src >> 64) & _U64)
            cols[2].append(p.src & _U64)
            cols[3].append((p.dst >> 64) & _U64)
            cols[4].append(p.dst & _U64)
            cols[5].append(p.proto)
            cols[6].append(p.sport)
            cols[7].append(p.dport)
        return cls.from_columns(*cols)

    @classmethod
    def concat(cls, parts: list["PacketBatch"]) -> "PacketBatch":
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        if any(p.origin is not None for p in parts):
            # Provenance survives concatenation; parts lacking it get
            # UNKNOWN_ORIGIN rather than silently dropping the column.
            origin = np.concatenate([
                p.origin if p.origin is not None
                else np.full(len(p), UNKNOWN_ORIGIN, dtype=np.int32)
                for p in parts
            ])
        else:
            origin = None
        return cls(
            ts=np.concatenate([p.ts for p in parts]),
            src_hi=np.concatenate([p.src_hi for p in parts]),
            src_lo=np.concatenate([p.src_lo for p in parts]),
            dst_hi=np.concatenate([p.dst_hi for p in parts]),
            dst_lo=np.concatenate([p.dst_lo for p in parts]),
            proto=np.concatenate([p.proto for p in parts]),
            sport=np.concatenate([p.sport for p in parts]),
            dport=np.concatenate([p.dport for p in parts]),
            origin=origin,
        )

    # -- basics ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ts)

    def select(self, mask: np.ndarray) -> "PacketBatch":
        """New batch containing the rows where ``mask`` is True (or the rows
        at the given indices)."""
        return PacketBatch(
            ts=self.ts[mask],
            src_hi=self.src_hi[mask], src_lo=self.src_lo[mask],
            dst_hi=self.dst_hi[mask], dst_lo=self.dst_lo[mask],
            proto=self.proto[mask], sport=self.sport[mask],
            dport=self.dport[mask],
            origin=None if self.origin is None else self.origin[mask],
        )

    # -- provenance -------------------------------------------------------

    def with_origin(self, agent_id: int) -> "PacketBatch":
        """A copy of this batch stamped with one emitting agent's id."""
        return PacketBatch(
            ts=self.ts, src_hi=self.src_hi, src_lo=self.src_lo,
            dst_hi=self.dst_hi, dst_lo=self.dst_lo, proto=self.proto,
            sport=self.sport, dport=self.dport,
            origin=np.full(len(self), agent_id, dtype=np.int32),
        )

    def drop_origin(self) -> "PacketBatch":
        """This batch without provenance (what a real telescope sees)."""
        if self.origin is None:
            return self
        return PacketBatch(
            ts=self.ts, src_hi=self.src_hi, src_lo=self.src_lo,
            dst_hi=self.dst_hi, dst_lo=self.dst_lo, proto=self.proto,
            sport=self.sport, dport=self.dport,
        )

    # -- masks -----------------------------------------------------------

    def mask_dst_in(self, prefix: IPv6Prefix) -> np.ndarray:
        """Rows whose destination lies inside ``prefix``.

        Prefixes of length <= 64 (every routed telescope prefix) resolve
        from the ``dst_hi`` column alone — one shift and one compare per
        row — which is what lets dispatch fan a whole day's batch out
        per-telescope without ever touching the low halves.
        """
        if 0 < prefix.length <= 64:
            shift = np.uint64(64 - prefix.length)
            want = np.uint64(((prefix.network >> 64) & _U64) >> shift)
            return (self.dst_hi >> shift) == want
        hi, lo = mask_u64(self.dst_hi, self.dst_lo, prefix.length)
        want_hi = np.uint64((prefix.network >> 64) & _U64)
        want_lo = np.uint64(prefix.network & _U64)
        return (hi == want_hi) & (lo == want_lo)

    # -- per-row materialization ------------------------------------------

    def packet_at(self, i: int) -> Packet:
        """Materialize row ``i`` as a probe :class:`Packet`.

        Applies the batch's probe semantics: TCP rows become bare SYNs, UDP
        rows carry :data:`PROBE_UDP_PAYLOAD`, ICMPv6 rows are Echo Requests
        (their ``sport`` column already holds the ICMP type).
        """
        proto = int(self.proto[i])
        flags = 0
        payload = b""
        if proto == TCP:
            flags = int(TcpFlags.SYN)
        elif proto == UDP:
            payload = PROBE_UDP_PAYLOAD
        return Packet(
            timestamp=float(self.ts[i]),
            src=(int(self.src_hi[i]) << 64) | int(self.src_lo[i]),
            dst=(int(self.dst_hi[i]) << 64) | int(self.dst_lo[i]),
            proto=proto,
            sport=int(self.sport[i]),
            dport=int(self.dport[i]),
            flags=flags,
            payload=payload,
        )

    def iter_packets(self) -> Iterator[Packet]:
        """Materialize every row (slow path — reference/fallback only)."""
        for i in range(len(self)):
            yield self.packet_at(i)


# -- wire batches (the reply side) ------------------------------------------


@dataclass(frozen=True)
class WireBatch:
    """A columnar batch of full wire-format packets.

    :class:`PacketBatch` carries probe semantics (every TCP row is a bare
    SYN, every UDP row the scanner's two-byte payload); the honeypot reply
    path needs the full transport surface — TCP flags, sequence numbers,
    and arbitrary payloads.  A ``WireBatch`` extends the eight capture
    columns with exactly those: ``flags`` (uint8), ``seq``/``ack`` (int64)
    and a payload pool (``payload_id`` indexes ``payloads``; ``-1`` means
    the empty payload).  Payloads are pooled because reply payloads are
    drawn from a handful of constants (SERVFAIL header, kiss-of-death,
    container banners), so one batch stores each distinct value once.
    """

    ts: np.ndarray        # float64
    src_hi: np.ndarray    # uint64
    src_lo: np.ndarray    # uint64
    dst_hi: np.ndarray    # uint64
    dst_lo: np.ndarray    # uint64
    proto: np.ndarray     # uint8
    sport: np.ndarray     # uint16
    dport: np.ndarray     # uint16
    flags: np.ndarray     # uint8
    seq: np.ndarray       # int64
    ack: np.ndarray       # int64
    payload_id: np.ndarray  # int32; -1 = empty payload
    payloads: tuple[bytes, ...] = ()

    def __len__(self) -> int:
        return len(self.ts)

    @classmethod
    def empty(cls) -> "WireBatch":
        z64 = np.empty(0, dtype=np.uint64)
        return cls(
            ts=np.empty(0, dtype=np.float64),
            src_hi=z64, src_lo=z64.copy(), dst_hi=z64.copy(),
            dst_lo=z64.copy(),
            proto=np.empty(0, dtype=np.uint8),
            sport=np.empty(0, dtype=np.uint16),
            dport=np.empty(0, dtype=np.uint16),
            flags=np.empty(0, dtype=np.uint8),
            seq=np.empty(0, dtype=np.int64),
            ack=np.empty(0, dtype=np.int64),
            payload_id=np.empty(0, dtype=np.int32),
        )

    @classmethod
    def from_packets(cls, packets: Iterable[Packet]) -> "WireBatch":
        cols: tuple[list, ...] = tuple([] for _ in range(12))
        payloads: list[bytes] = []
        pool: dict[bytes, int] = {}
        for p in packets:
            cols[0].append(p.timestamp)
            cols[1].append((p.src >> 64) & _U64)
            cols[2].append(p.src & _U64)
            cols[3].append((p.dst >> 64) & _U64)
            cols[4].append(p.dst & _U64)
            cols[5].append(p.proto)
            cols[6].append(p.sport)
            cols[7].append(p.dport)
            cols[8].append(p.flags)
            cols[9].append(p.seq)
            cols[10].append(p.ack)
            if p.payload:
                pid = pool.get(p.payload)
                if pid is None:
                    pid = pool[p.payload] = len(payloads)
                    payloads.append(p.payload)
            else:
                pid = -1
            cols[11].append(pid)
        return cls(
            ts=np.asarray(cols[0], dtype=np.float64),
            src_hi=np.asarray(cols[1], dtype=np.uint64),
            src_lo=np.asarray(cols[2], dtype=np.uint64),
            dst_hi=np.asarray(cols[3], dtype=np.uint64),
            dst_lo=np.asarray(cols[4], dtype=np.uint64),
            proto=np.asarray(cols[5], dtype=np.uint8),
            sport=np.asarray(cols[6], dtype=np.uint16),
            dport=np.asarray(cols[7], dtype=np.uint16),
            flags=np.asarray(cols[8], dtype=np.uint8),
            seq=np.asarray(cols[9], dtype=np.int64),
            ack=np.asarray(cols[10], dtype=np.int64),
            payload_id=np.asarray(cols[11], dtype=np.int32),
            payloads=tuple(payloads),
        )

    def payload_at(self, i: int) -> bytes:
        pid = int(self.payload_id[i])
        return b"" if pid < 0 else self.payloads[pid]

    def packet_at(self, i: int) -> Packet:
        """Materialize row ``i`` with full wire fidelity."""
        return Packet(
            timestamp=float(self.ts[i]),
            src=(int(self.src_hi[i]) << 64) | int(self.src_lo[i]),
            dst=(int(self.dst_hi[i]) << 64) | int(self.dst_lo[i]),
            proto=int(self.proto[i]),
            sport=int(self.sport[i]),
            dport=int(self.dport[i]),
            flags=int(self.flags[i]),
            payload=self.payload_at(i),
            seq=int(self.seq[i]),
            ack=int(self.ack[i]),
        )

    def to_packets(self) -> list[Packet]:
        return [self.packet_at(i) for i in range(len(self))]

    def as_packet_batch(self) -> PacketBatch:
        """The eight capture columns of this batch, shared (no copies).

        Flags, sequence numbers and payloads are transport detail the
        capture format does not record, exactly as
        :attr:`~repro.core.capture.CAPTURE_COLUMNS` defines it — so replies
        can flow through :meth:`PacketCapturer.capture_batch` unchanged.
        """
        return PacketBatch(
            ts=self.ts, src_hi=self.src_hi, src_lo=self.src_lo,
            dst_hi=self.dst_hi, dst_lo=self.dst_lo, proto=self.proto,
            sport=self.sport, dport=self.dport,
        )


def as_wire(batch: "PacketBatch | WireBatch") -> WireBatch:
    """View a batch as a :class:`WireBatch`.

    A :class:`PacketBatch` gets its probe semantics materialized into
    explicit columns — TCP rows become bare SYNs, UDP rows carry
    :data:`PROBE_UDP_PAYLOAD` — which is exactly what
    :meth:`PacketBatch.packet_at` does one row at a time.
    """
    if isinstance(batch, WireBatch):
        return batch
    n = len(batch)
    flags = np.where(batch.proto == np.uint8(TCP),
                     np.uint8(int(TcpFlags.SYN)), np.uint8(0))
    payload_id = np.where(batch.proto == np.uint8(UDP),
                          np.int32(0), np.int32(-1))
    zeros = np.zeros(n, dtype=np.int64)
    return WireBatch(
        ts=batch.ts, src_hi=batch.src_hi, src_lo=batch.src_lo,
        dst_hi=batch.dst_hi, dst_lo=batch.dst_lo, proto=batch.proto,
        sport=batch.sport, dport=batch.dport,
        flags=flags.astype(np.uint8, copy=False),
        seq=zeros, ack=zeros,
        payload_id=payload_id.astype(np.int32, copy=False),
        payloads=(PROBE_UDP_PAYLOAD,),
    )


class WireBuilder:
    """Accumulates reply rows and builds one :class:`WireBatch`.

    The honeypot kernels produce replies per protocol category (ICMP echo,
    DNS, NTP, TCP segments ...), each as a vectorized block tagged with the
    *originating input row index*; scalar fallback paths append single
    rows.  ``build()`` stably sorts everything by that index, restoring the
    exact reply order of the per-packet reference (each input row emits at
    most one reply, so row order is reply order).
    """

    def __init__(self) -> None:
        self._blocks: list[dict] = []
        self._rows: list[tuple] = []
        self._payloads: list[bytes] = []
        self._pool: dict[bytes, int] = {}
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def intern(self, payload: bytes) -> int:
        """Pool a payload value; returns its id (-1 for empty)."""
        if not payload:
            return -1
        pid = self._pool.get(payload)
        if pid is None:
            pid = self._pool[payload] = len(self._payloads)
            self._payloads.append(payload)
        return pid

    def translate_ids(self, payloads: tuple[bytes, ...],
                      ids: np.ndarray) -> np.ndarray:
        """Re-home payload ids from a foreign pool into this builder's."""
        if len(ids) == 0 or not payloads:
            return np.asarray(ids, dtype=np.int32)
        lut = np.fromiter((self.intern(p) for p in payloads),
                          dtype=np.int32, count=len(payloads))
        ids = np.asarray(ids, dtype=np.int32)
        out = np.full(len(ids), -1, dtype=np.int32)
        have = ids >= 0
        out[have] = lut[ids[have]]
        return out

    def append_block(self, idx, ts, src_hi, src_lo, dst_hi, dst_lo,
                     proto, sport, dport, flags=None, seq=None, ack=None,
                     payload_id=None) -> None:
        """Append a vectorized block of replies (one per row of ``idx``)."""
        n = len(ts)
        if n == 0:
            return
        self._blocks.append({
            "idx": np.asarray(idx, dtype=np.int64),
            "ts": np.asarray(ts, dtype=np.float64),
            "src_hi": np.asarray(src_hi, dtype=np.uint64),
            "src_lo": np.asarray(src_lo, dtype=np.uint64),
            "dst_hi": np.asarray(dst_hi, dtype=np.uint64),
            "dst_lo": np.asarray(dst_lo, dtype=np.uint64),
            "proto": np.broadcast_to(
                np.asarray(proto, dtype=np.uint8), (n,)),
            "sport": np.broadcast_to(
                np.asarray(sport, dtype=np.uint16), (n,)),
            "dport": np.broadcast_to(
                np.asarray(dport, dtype=np.uint16), (n,)),
            "flags": np.broadcast_to(
                np.asarray(0 if flags is None else flags, dtype=np.uint8),
                (n,)),
            "seq": np.broadcast_to(
                np.asarray(0 if seq is None else seq, dtype=np.int64), (n,)),
            "ack": np.broadcast_to(
                np.asarray(0 if ack is None else ack, dtype=np.int64), (n,)),
            "payload_id": np.broadcast_to(
                np.asarray(-1 if payload_id is None else payload_id,
                           dtype=np.int32), (n,)),
        })
        self._n += n

    def append_row(self, idx: int, ts: float, src: int, dst: int, proto: int,
                   sport: int, dport: int, flags: int = 0, seq: int = 0,
                   ack: int = 0, payload: bytes = b"") -> None:
        """Append one reply (the scalar fallback paths use this)."""
        self._rows.append((
            idx, ts, (src >> 64) & _U64, src & _U64,
            (dst >> 64) & _U64, dst & _U64, proto, sport, dport,
            flags, seq, ack, self.intern(payload),
        ))
        self._n += 1

    def append_packet(self, idx: int, pkt: Packet) -> None:
        """Append one materialized reply packet (scalar fallback sugar)."""
        self.append_row(idx, pkt.timestamp, pkt.src, pkt.dst, pkt.proto,
                        pkt.sport, pkt.dport, pkt.flags, pkt.seq, pkt.ack,
                        pkt.payload)

    def build(self) -> WireBatch:
        if self._rows:
            rows = self._rows
            self._blocks.append({
                "idx": np.asarray([r[0] for r in rows], dtype=np.int64),
                "ts": np.asarray([r[1] for r in rows], dtype=np.float64),
                "src_hi": np.asarray([r[2] for r in rows], dtype=np.uint64),
                "src_lo": np.asarray([r[3] for r in rows], dtype=np.uint64),
                "dst_hi": np.asarray([r[4] for r in rows], dtype=np.uint64),
                "dst_lo": np.asarray([r[5] for r in rows], dtype=np.uint64),
                "proto": np.asarray([r[6] for r in rows], dtype=np.uint8),
                "sport": np.asarray([r[7] for r in rows], dtype=np.uint16),
                "dport": np.asarray([r[8] for r in rows], dtype=np.uint16),
                "flags": np.asarray([r[9] for r in rows], dtype=np.uint8),
                "seq": np.asarray([r[10] for r in rows], dtype=np.int64),
                "ack": np.asarray([r[11] for r in rows], dtype=np.int64),
                "payload_id": np.asarray([r[12] for r in rows],
                                         dtype=np.int32),
            })
            self._rows = []
        if not self._blocks:
            return WireBatch.empty()
        cols = {name: np.concatenate([b[name] for b in self._blocks])
                for name in self._blocks[0]}
        order = np.argsort(cols.pop("idx"), kind="stable")
        return WireBatch(**{name: col[order] for name, col in cols.items()},
                         payloads=tuple(self._payloads))


def probe_batch(ts, src_hi, src_lo, dst_hi, dst_lo, proto, sport, dport,
                ) -> PacketBatch:
    """Normalize freshly drawn emission columns into a :class:`PacketBatch`.

    Enforces the probe invariants the scalar ``_packet_for`` path applies
    per packet: ICMPv6 rows get the Echo Request type in ``sport`` and a
    zero identifier in ``dport`` regardless of what the sampler drew.
    """
    proto = np.asarray(proto, dtype=np.uint8)
    sport = np.asarray(sport, dtype=np.uint16).copy()
    dport = np.asarray(dport, dtype=np.uint16).copy()
    icmp = proto == np.uint8(ICMPV6)
    sport[icmp] = np.uint16(int(IcmpType.ECHO_REQUEST))
    dport[icmp] = np.uint16(0)
    return PacketBatch.from_columns(
        ts, src_hi, src_lo, dst_hi, dst_lo, proto, sport, dport
    )
