"""Struct-of-arrays packet batches: the emission-side columnar format.

A :class:`PacketBatch` carries the same eight columns the capture side
records (``ts, src_hi, src_lo, dst_hi, dst_lo, proto, sport, dport``) so a
whole day's probes flow from the scanner agents through dispatch and into
:class:`~repro.core.capture.PacketCapturer` without ever materializing a
per-packet :class:`~repro.net.packet.Packet` object.

Batches carry *probe semantics*: every TCP row is a bare SYN, every UDP row
carries the scanner's two-byte payload, and every ICMPv6 row is an Echo
Request (``sport`` holds the ICMP type, exactly as in the scalar emission
path).  :meth:`PacketBatch.packet_at` materializes a single row back into a
``Packet`` under those semantics — the interactive honeypots (Twinklenet,
T-Pot) only ever see the slice of a batch that can actually elicit a reply,
and that slice goes through this method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.net.addr import IPv6Prefix, mask_u64
from repro.net.packet import ICMPV6, TCP, UDP, IcmpType, Packet, TcpFlags

_U64 = 0xFFFFFFFFFFFFFFFF

#: The two-byte payload scanner UDP probes carry (matches the scalar
#: :func:`repro.net.packet.udp_datagram` emission path).
PROBE_UDP_PAYLOAD = b"\x00\x01"

#: ``origin`` value for rows whose emitting agent is unknown (e.g. a batch
#: concatenated from parts with and without provenance).
UNKNOWN_ORIGIN = -1


@dataclass(frozen=True)
class PacketBatch:
    """An immutable columnar batch of probe packets.

    The optional ``origin`` column carries the emitting scanner agent's
    stable id (int32) — ground-truth provenance the real telescopes could
    never see.  It rides along through dispatch and honeypot reaction, and
    is stripped at the capture boundary into a sidecar ground-truth table
    (:meth:`repro.core.capture.PacketCapturer.capture_batch`), so the
    analysis-facing records stay exactly what a telescope observes.
    """

    ts: np.ndarray        # float64
    src_hi: np.ndarray    # uint64
    src_lo: np.ndarray    # uint64
    dst_hi: np.ndarray    # uint64
    dst_lo: np.ndarray    # uint64
    proto: np.ndarray     # uint8
    sport: np.ndarray     # uint16
    dport: np.ndarray     # uint16
    origin: np.ndarray | None = None  # int32 agent ids, or absent

    def __post_init__(self) -> None:
        n = len(self.ts)
        for name in ("src_hi", "src_lo", "dst_hi", "dst_lo",
                     "proto", "sport", "dport"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} length mismatch")
        if self.origin is not None and len(self.origin) != n:
            raise ValueError("column origin length mismatch")

    # -- construction ---------------------------------------------------

    @classmethod
    def from_columns(cls, ts, src_hi, src_lo, dst_hi, dst_lo,
                     proto, sport, dport, origin=None) -> "PacketBatch":
        """Build a batch, coercing every column to its canonical dtype."""
        return cls(
            ts=np.asarray(ts, dtype=np.float64),
            src_hi=np.asarray(src_hi, dtype=np.uint64),
            src_lo=np.asarray(src_lo, dtype=np.uint64),
            dst_hi=np.asarray(dst_hi, dtype=np.uint64),
            dst_lo=np.asarray(dst_lo, dtype=np.uint64),
            proto=np.asarray(proto, dtype=np.uint8),
            sport=np.asarray(sport, dtype=np.uint16),
            dport=np.asarray(dport, dtype=np.uint16),
            origin=(None if origin is None
                    else np.asarray(origin, dtype=np.int32)),
        )

    @classmethod
    def empty(cls) -> "PacketBatch":
        return cls.from_columns([], [], [], [], [], [], [], [])

    @classmethod
    def from_packets(cls, packets: Iterable[Packet]) -> "PacketBatch":
        cols: tuple[list, ...] = ([], [], [], [], [], [], [], [])
        for p in packets:
            cols[0].append(p.timestamp)
            cols[1].append((p.src >> 64) & _U64)
            cols[2].append(p.src & _U64)
            cols[3].append((p.dst >> 64) & _U64)
            cols[4].append(p.dst & _U64)
            cols[5].append(p.proto)
            cols[6].append(p.sport)
            cols[7].append(p.dport)
        return cls.from_columns(*cols)

    @classmethod
    def concat(cls, parts: list["PacketBatch"]) -> "PacketBatch":
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        if any(p.origin is not None for p in parts):
            # Provenance survives concatenation; parts lacking it get
            # UNKNOWN_ORIGIN rather than silently dropping the column.
            origin = np.concatenate([
                p.origin if p.origin is not None
                else np.full(len(p), UNKNOWN_ORIGIN, dtype=np.int32)
                for p in parts
            ])
        else:
            origin = None
        return cls(
            ts=np.concatenate([p.ts for p in parts]),
            src_hi=np.concatenate([p.src_hi for p in parts]),
            src_lo=np.concatenate([p.src_lo for p in parts]),
            dst_hi=np.concatenate([p.dst_hi for p in parts]),
            dst_lo=np.concatenate([p.dst_lo for p in parts]),
            proto=np.concatenate([p.proto for p in parts]),
            sport=np.concatenate([p.sport for p in parts]),
            dport=np.concatenate([p.dport for p in parts]),
            origin=origin,
        )

    # -- basics ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ts)

    def select(self, mask: np.ndarray) -> "PacketBatch":
        """New batch containing the rows where ``mask`` is True (or the rows
        at the given indices)."""
        return PacketBatch(
            ts=self.ts[mask],
            src_hi=self.src_hi[mask], src_lo=self.src_lo[mask],
            dst_hi=self.dst_hi[mask], dst_lo=self.dst_lo[mask],
            proto=self.proto[mask], sport=self.sport[mask],
            dport=self.dport[mask],
            origin=None if self.origin is None else self.origin[mask],
        )

    # -- provenance -------------------------------------------------------

    def with_origin(self, agent_id: int) -> "PacketBatch":
        """A copy of this batch stamped with one emitting agent's id."""
        return PacketBatch(
            ts=self.ts, src_hi=self.src_hi, src_lo=self.src_lo,
            dst_hi=self.dst_hi, dst_lo=self.dst_lo, proto=self.proto,
            sport=self.sport, dport=self.dport,
            origin=np.full(len(self), agent_id, dtype=np.int32),
        )

    def drop_origin(self) -> "PacketBatch":
        """This batch without provenance (what a real telescope sees)."""
        if self.origin is None:
            return self
        return PacketBatch(
            ts=self.ts, src_hi=self.src_hi, src_lo=self.src_lo,
            dst_hi=self.dst_hi, dst_lo=self.dst_lo, proto=self.proto,
            sport=self.sport, dport=self.dport,
        )

    # -- masks -----------------------------------------------------------

    def mask_dst_in(self, prefix: IPv6Prefix) -> np.ndarray:
        """Rows whose destination lies inside ``prefix``.

        Prefixes of length <= 64 (every routed telescope prefix) resolve
        from the ``dst_hi`` column alone — one shift and one compare per
        row — which is what lets dispatch fan a whole day's batch out
        per-telescope without ever touching the low halves.
        """
        if 0 < prefix.length <= 64:
            shift = np.uint64(64 - prefix.length)
            want = np.uint64(((prefix.network >> 64) & _U64) >> shift)
            return (self.dst_hi >> shift) == want
        hi, lo = mask_u64(self.dst_hi, self.dst_lo, prefix.length)
        want_hi = np.uint64((prefix.network >> 64) & _U64)
        want_lo = np.uint64(prefix.network & _U64)
        return (hi == want_hi) & (lo == want_lo)

    # -- per-row materialization ------------------------------------------

    def packet_at(self, i: int) -> Packet:
        """Materialize row ``i`` as a probe :class:`Packet`.

        Applies the batch's probe semantics: TCP rows become bare SYNs, UDP
        rows carry :data:`PROBE_UDP_PAYLOAD`, ICMPv6 rows are Echo Requests
        (their ``sport`` column already holds the ICMP type).
        """
        proto = int(self.proto[i])
        flags = 0
        payload = b""
        if proto == TCP:
            flags = int(TcpFlags.SYN)
        elif proto == UDP:
            payload = PROBE_UDP_PAYLOAD
        return Packet(
            timestamp=float(self.ts[i]),
            src=(int(self.src_hi[i]) << 64) | int(self.src_lo[i]),
            dst=(int(self.dst_hi[i]) << 64) | int(self.dst_lo[i]),
            proto=proto,
            sport=int(self.sport[i]),
            dport=int(self.dport[i]),
            flags=flags,
            payload=payload,
        )

    def iter_packets(self) -> Iterator[Packet]:
        """Materialize every row (slow path — reference/fallback only)."""
        for i in range(len(self)):
            yield self.packet_at(i)


def probe_batch(ts, src_hi, src_lo, dst_hi, dst_lo, proto, sport, dport,
                ) -> PacketBatch:
    """Normalize freshly drawn emission columns into a :class:`PacketBatch`.

    Enforces the probe invariants the scalar ``_packet_for`` path applies
    per packet: ICMPv6 rows get the Echo Request type in ``sport`` and a
    zero identifier in ``dport`` regardless of what the sampler drew.
    """
    proto = np.asarray(proto, dtype=np.uint8)
    sport = np.asarray(sport, dtype=np.uint16).copy()
    dport = np.asarray(dport, dtype=np.uint16).copy()
    icmp = proto == np.uint8(ICMPV6)
    sport[icmp] = np.uint16(int(IcmpType.ECHO_REQUEST))
    dport[icmp] = np.uint16(0)
    return PacketBatch.from_columns(
        ts, src_hi, src_lo, dst_hi, dst_lo, proto, sport, dport
    )
