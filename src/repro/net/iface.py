"""Simulated network interfaces and links.

An :class:`Interface` stands in for a raw-socket-bound NIC: it claims a set
of destination prefixes (IP aliasing — one interface, many non-contiguous
subnets, exactly the capability the paper built Twinklenet around) and hands
received packets to a callback.  A :class:`Link` connects interfaces and
delivers packets to whichever endpoint claims the destination address.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.net.addr import IPv6Prefix
from repro.net.packet import Packet

RxHandler = Callable[[Packet], None]


class Interface:
    """A network interface claiming one or more destination prefixes.

    ``name`` is for diagnostics.  ``handler`` is invoked for every packet
    delivered to the interface; it may call :meth:`transmit` to respond.
    """

    def __init__(self, name: str, handler: RxHandler | None = None):
        self.name = name
        self._prefixes: list[IPv6Prefix] = []
        self._handler = handler
        self._link: "Link | None" = None
        self.rx_count = 0
        self.tx_count = 0

    def claim(self, prefix: IPv6Prefix) -> None:
        """Claim ownership of all destinations within ``prefix``."""
        self._prefixes.append(prefix)

    def claim_all(self, prefixes: Iterable[IPv6Prefix]) -> None:
        for prefix in prefixes:
            self.claim(prefix)

    def release(self, prefix: IPv6Prefix) -> None:
        """Stop claiming ``prefix``.  Raises ValueError if not claimed."""
        self._prefixes.remove(prefix)

    @property
    def prefixes(self) -> tuple[IPv6Prefix, ...]:
        return tuple(self._prefixes)

    def owns(self, dst: int) -> bool:
        """True when any claimed prefix covers ``dst``."""
        return any(dst in prefix for prefix in self._prefixes)

    def set_handler(self, handler: RxHandler) -> None:
        self._handler = handler

    def attach(self, link: "Link") -> None:
        self._link = link

    def deliver(self, pkt: Packet) -> None:
        """Called by the link when a packet arrives for this interface."""
        self.rx_count += 1
        if self._handler is not None:
            self._handler(pkt)

    def transmit(self, pkt: Packet) -> None:
        """Send a packet out the attached link."""
        if self._link is None:
            raise RuntimeError(f"interface {self.name!r} is not attached to a link")
        self.tx_count += 1
        self._link.send(self, pkt)


class Link:
    """A broadcast segment joining interfaces.

    Delivery is by destination ownership: the first attached interface (other
    than the sender) whose claimed prefixes cover the destination receives
    the packet.  Undeliverable packets are counted and dropped, mirroring a
    darknet's silent sink.
    """

    def __init__(self, name: str = "link0"):
        self.name = name
        self._interfaces: list[Interface] = []
        self.dropped = 0
        self.delivered = 0

    def attach(self, iface: Interface) -> None:
        self._interfaces.append(iface)
        iface.attach(self)

    @property
    def interfaces(self) -> tuple[Interface, ...]:
        return tuple(self._interfaces)

    def send(self, sender: Interface | None, pkt: Packet) -> None:
        """Route ``pkt`` to the owning interface; drop when unowned."""
        for iface in self._interfaces:
            if iface is sender:
                continue
            if iface.owns(pkt.dst):
                self.delivered += 1
                iface.deliver(pkt)
                return
        self.dropped += 1

    def inject(self, pkt: Packet) -> None:
        """Inject a packet from outside the link (e.g. the wider Internet)."""
        self.send(None, pkt)
