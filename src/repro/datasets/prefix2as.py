"""Prefix-to-AS mapping (CAIDA RouteViews prefix2as stand-in)."""

from __future__ import annotations

from repro.net.addr import IPv6Prefix
from repro.routing.rib import Rib, Route


class Prefix2As:
    """Longest-prefix-match prefix -> origin-AS mapping with dating."""

    def __init__(self) -> None:
        self._rib = Rib()

    def add(self, prefix: IPv6Prefix, asn: int, valid_from: float = 0.0) -> None:
        if asn <= 0:
            raise ValueError(f"ASN must be positive: {asn}")
        self._rib.insert(
            Route(prefix=prefix, origin_asn=asn, installed_at=valid_from)
        )

    def lookup(self, address: int, at: float | None = None) -> int | None:
        """Origin ASN for ``address``, or None when unmapped."""
        route = self._rib.lookup(address)
        if route is None:
            return None
        if at is not None and route.installed_at > at:
            return None
        return route.origin_asn

    def __len__(self) -> int:
        return len(self._rib)
