"""AS-type database (ASdb stand-in).

Categories follow the paper's Figure 5 breakdown.  The paper manually
reassigned four network entities (e.g. AlphaStrike Labs, Shadow Server) to
an *Internet Scanner* category after finding ASdb misclassifications; the
database supports both baseline classification noise and manual overrides.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro._util import check_probability, make_rng


class AsCategory(enum.Enum):
    """AS types used in the paper's analysis (Fig. 5)."""

    HOSTING_CLOUD = "hosting_cloud"
    RESEARCH_EDUCATION = "research_education"
    INTERNET_SCANNER = "internet_scanner"
    ISP_TELECOM = "isp_telecom"
    CDN = "cdn"
    ENTERPRISE = "enterprise"
    OTHER = "other"


@dataclass(frozen=True, slots=True)
class AsRecord:
    """One AS: number, name, true category, and registration country."""

    asn: int
    name: str
    category: AsCategory
    country: str

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive: {self.asn}")
        if len(self.country) != 2:
            raise ValueError(f"country must be an ISO-3166 alpha-2 code: "
                             f"{self.country!r}")


class AsDatabase:
    """Registry of AS records with noisy classification + manual overrides."""

    def __init__(
        self,
        misclassification_rate: float = 0.03,
        rng: np.random.Generator | int | None = 0,
    ):
        self.misclassification_rate = check_probability(
            "misclassification_rate", misclassification_rate
        )
        self._rng = make_rng(rng)
        self._records: dict[int, AsRecord] = {}
        self._overrides: dict[int, AsCategory] = {}
        # Misclassification draws are fixed per ASN at first query so that
        # repeated lookups are consistent (a real database is wrong the same
        # way every time you read it).
        self._noise: dict[int, AsCategory] = {}

    def register(self, record: AsRecord) -> None:
        if record.asn in self._records:
            raise ValueError(f"AS{record.asn} already registered")
        self._records[record.asn] = record

    def __contains__(self, asn: int) -> bool:
        return asn in self._records

    def __len__(self) -> int:
        return len(self._records)

    def record(self, asn: int) -> AsRecord | None:
        return self._records.get(asn)

    def name(self, asn: int) -> str:
        record = self._records.get(asn)
        return record.name if record else f"AS{asn}"

    def override(self, asn: int, category: AsCategory) -> None:
        """Manually pin the classification for ``asn`` (paper §5.2)."""
        self._overrides[asn] = category

    def classify(self, asn: int) -> AsCategory:
        """The category the database *reports* (may be wrong).

        Overrides win; otherwise the true category is returned except with
        probability ``misclassification_rate``, where a stable wrong answer
        is returned instead.
        """
        if asn in self._overrides:
            return self._overrides[asn]
        record = self._records.get(asn)
        if record is None:
            return AsCategory.OTHER
        if asn not in self._noise:
            if self._rng.random() < self.misclassification_rate:
                others = [c for c in AsCategory if c is not record.category]
                self._noise[asn] = others[self._rng.integers(len(others))]
            else:
                self._noise[asn] = record.category
        return self._noise[asn]

    def true_category(self, asn: int) -> AsCategory:
        """Ground-truth category (what manual inspection would find)."""
        record = self._records.get(asn)
        return record.category if record else AsCategory.OTHER

    def records(self) -> tuple[AsRecord, ...]:
        return tuple(self._records.values())
