"""IP geolocation database (IPinfo stand-in): prefix -> country, dated."""

from __future__ import annotations

from repro.net.addr import IPv6Prefix
from repro.routing.rib import Rib, Route


class GeoDatabase:
    """Longest-prefix-match geolocation with snapshot dating.

    The paper used the IPinfo snapshot matching each packet's capture day;
    we date entries the same way so lookups can be restricted to mappings
    that existed at capture time.
    """

    def __init__(self) -> None:
        self._rib = Rib()
        self._countries: dict[IPv6Prefix, tuple[str, float]] = {}

    def add(self, prefix: IPv6Prefix, country: str, valid_from: float = 0.0) -> None:
        if len(country) != 2:
            raise ValueError(f"country must be an ISO-3166 alpha-2 code: "
                             f"{country!r}")
        self._rib.insert(Route(prefix=prefix, origin_asn=1,
                               installed_at=valid_from))
        self._countries[prefix] = (country.upper(), valid_from)

    def lookup(self, address: int, at: float | None = None) -> str | None:
        """Country for ``address``, or None when unmapped."""
        route = self._rib.lookup(address)
        if route is None:
            return None
        country, valid_from = self._countries[route.prefix]
        if at is not None and valid_from > at:
            return None
        return country

    def __len__(self) -> int:
        return len(self._countries)
