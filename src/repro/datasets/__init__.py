"""Metadata datasets: AS classification, geolocation, prefix-to-AS mapping.

Stand-ins for ASdb, IPinfo's geolocation database, and CAIDA's RouteViews
prefix2as snapshots.  The synthetic scanner population registers its source
prefixes here so the analysis pipeline exercises the same joins the paper's
pipeline performed (including dated snapshots and ASdb's occasional
misclassifications).
"""

from repro.datasets.asdb import AsCategory, AsDatabase, AsRecord
from repro.datasets.geodb import GeoDatabase
from repro.datasets.prefix2as import Prefix2As

__all__ = [
    "AsCategory",
    "AsDatabase",
    "AsRecord",
    "GeoDatabase",
    "Prefix2As",
]
