"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``list`` — show the available experiments,
* ``run`` — run the full scenario and print the headline tables,
* ``experiment <id> [...]`` — regenerate specific tables/figures,
* ``observe`` — run a streaming observatory: one schema-versioned
  observer JSON per simulated day (scan-event rates per telescope,
  new-scanner discovery, tactic mix, honeyprefix reaction latency),
  then print the rolling drift/changepoint report over the day files,
* ``serve`` — run the multi-tenant scenario service: an asyncio HTTP API
  where clients POST a ``ScenarioConfig`` JSON to ``/runs``, identical
  configs dedupe onto one in-flight run, warm configs are served from the
  scenario cache, progress streams as Server-Sent Events, and
  ``/metrics``/``/traces`` are the ops surface (see
  ``docs/ARCHITECTURE.md``, "Scenario service").

Options shared by ``run``/``experiment``: ``--days``, ``--scale``,
``--seed``, ``--tail``, and the observability trio (composable in one
invocation):

* ``--metrics[=FILE]`` — print a telemetry snapshot after the run; with
  ``FILE``, also write it as JSON;
* ``--trace[=FILE]`` — trace the pipeline and print a self-time-per-stage
  table; with ``FILE``, also write Chrome/Perfetto trace-event JSON;
* ``--journal[=FILE]`` — append the run-provenance journal (manifest,
  per-day progress, session/honeyprefix lifecycle, detection summaries)
  to ``FILE`` (default ``journal.jsonl``);
* ``--cache[=DIR]`` — reuse/store the scenario result in an on-disk cache
  (default ``.cache``); ``--no-cache`` ignores any configured cache;
* ``--checkpoint[=DIR]`` — save a resumable engine-state checkpoint every
  ``--checkpoint-every`` days (default dir ``.checkpoints``); ``--resume``
  picks up from the last checkpoint instead of starting at day zero.

``run`` additionally takes ``--jobs N`` (shard the day loop's agents
across ``N`` worker processes) and ``--pipeline`` (overlap emission and
dispatch on a second thread); both produce byte-identical results to a
serial run.  ``experiment`` takes ``--jobs N`` to render report sections
in ``N`` worker processes (the report bytes do not depend on N).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments import EXPERIMENTS
from repro.obs import (
    Journal,
    MetricsRegistry,
    Tracer,
    get_tracer,
    set_journal,
    set_registry,
    set_tracer,
)
from repro.sim import ScenarioConfig, run_scenario

#: --journal without a path appends here.
DEFAULT_JOURNAL_PATH = "journal.jsonl"

#: --cache without a directory uses this.
DEFAULT_CACHE_DIR = ".cache"

#: --checkpoint without a directory uses this.
DEFAULT_CHECKPOINT_DIR = ".checkpoints"

#: --spill without a directory uses this.
DEFAULT_SPILL_DIR = ".spill"

#: --observe / the observe subcommand write observer day files here.
DEFAULT_OBSERVE_DIR = "data"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Unveiling IPv6 Scanning Dynamics'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser(
        "list", help="list available experiments",
        description="List the experiment ids 'experiment' accepts.  "
                    "Scenario-driven rows carry a marker column: "
                    "'*' means the experiment fans out internally with "
                    "--jobs N; 's' means its detection inputs can be "
                    "computed by a streaming run (run --stream).")
    list_p.add_argument("--json", action="store_true",
                        help="emit the experiment table as JSON (id, "
                             "standalone, jobs- and stream-eligibility) "
                             "instead of text")

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--days", type=int, default=100,
                       help="simulated days (default 100)")
        p.add_argument("--scale", type=float, default=2e-4,
                       help="volume scale vs. the paper (default 2e-4)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--tail", type=int, default=140,
                       help="number of long-tail scanner ASes")
        p.add_argument("--metrics", nargs="?", const=True, default=None,
                       metavar="FILE",
                       help="collect pipeline telemetry and print a sorted "
                            "snapshot; with FILE, also write it as JSON")
        p.add_argument("--trace", nargs="?", const=True, default=None,
                       metavar="FILE",
                       help="trace the pipeline and print a self-time-per-"
                            "stage table; with FILE, also write Chrome/"
                            "Perfetto trace-event JSON")
        p.add_argument("--journal", nargs="?", const=DEFAULT_JOURNAL_PATH,
                       default=None, metavar="FILE",
                       help="write the run-provenance journal (JSONL) to "
                            f"FILE (default {DEFAULT_JOURNAL_PATH})")
        p.add_argument("--cache", nargs="?", const=DEFAULT_CACHE_DIR,
                       default=None, metavar="DIR",
                       help="load/store the scenario result via the on-disk "
                            f"cache in DIR (default {DEFAULT_CACHE_DIR})")
        p.add_argument("--no-cache", action="store_true",
                       help="ignore any configured cache and simulate")
        p.add_argument("--checkpoint", nargs="?",
                       const=DEFAULT_CHECKPOINT_DIR, default=None,
                       metavar="DIR",
                       help="save a resumable checkpoint every "
                            "--checkpoint-every days into DIR (default "
                            f"{DEFAULT_CHECKPOINT_DIR})")
        p.add_argument("--checkpoint-every", type=int, default=10,
                       metavar="DAYS",
                       help="checkpoint cadence in days (default 10)")
        p.add_argument("--resume", action="store_true",
                       help="resume from the last usable checkpoint in "
                            "the --checkpoint directory")

    run_p = sub.add_parser("run", help="run the scenario, print headlines")
    run_p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="shard the day loop's agents across N worker "
                            "processes (results are identical for every N)")
    run_p.add_argument("--pipeline", action="store_true",
                       help="overlap packet emission and dispatch on a "
                            "second thread (serial mode only)")
    run_p.add_argument("--stream", action="store_true",
                       help="run scan detection incrementally during the "
                            "day loop and release each day's packets: peak "
                            "memory holds one day, not the horizon; prints "
                            "a streaming scan summary instead of the "
                            "record-driven tables")
    run_p.add_argument("--observe", nargs="?", const=DEFAULT_OBSERVE_DIR,
                       default=None, metavar="DIR",
                       help="with --stream: emit one schema-versioned "
                            "observer JSON per simulated day into DIR "
                            f"(default {DEFAULT_OBSERVE_DIR})")
    run_p.add_argument("--spill", nargs="?", const=DEFAULT_SPILL_DIR,
                       default=None, metavar="DIR",
                       help="bound capture memory by sealing buffered "
                            "chunks past the budget to checksummed npz "
                            "segments in DIR (default "
                            f"{DEFAULT_SPILL_DIR})")
    run_p.add_argument("--spill-budget-mb", type=int, default=None,
                       metavar="MB",
                       help="capture bytes to buffer before spilling "
                            "(default 64)")
    add_scenario_args(run_p)

    exp_p = sub.add_parser("experiment",
                           help="regenerate specific tables/figures")
    exp_p.add_argument("ids", nargs="+", metavar="ID",
                       help="experiment ids (see 'list'), or 'all'")
    exp_p.add_argument("--output", default=None,
                       help="also write the combined report to this file")
    exp_p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="render report sections in N worker processes "
                            "(output is identical for every N)")
    add_scenario_args(exp_p)

    obs_p = sub.add_parser(
        "observe",
        help="run the scenario in observatory mode, print a drift report")
    obs_p.add_argument("--data", default=DEFAULT_OBSERVE_DIR, metavar="DIR",
                       help="observatory directory: one observer JSON per "
                            "simulated day, plus observations.jsonl and "
                            f"index.jsonl (default {DEFAULT_OBSERVE_DIR})")
    obs_p.add_argument("--summary-only", action="store_true",
                       help="skip the simulation; summarize the day files "
                            "already in --data")
    obs_p.add_argument("--json", default=None, metavar="FILE",
                       help="also write the drift report as JSON to FILE")
    obs_p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="shard the day loop's agents across N worker "
                            "processes (day files are identical for "
                            "every N)")
    add_scenario_args(obs_p)

    serve_p = sub.add_parser(
        "serve", help="serve scenario runs over HTTP (multi-tenant API)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="TCP port (default 8642; 0 picks a free one)")
    serve_p.add_argument("--cache", default=DEFAULT_CACHE_DIR, metavar="DIR",
                         help="scenario cache directory backing the service "
                              f"(default {DEFAULT_CACHE_DIR})")
    serve_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes executing cold runs")
    serve_p.add_argument("--queue-limit", type=int, default=32, metavar="N",
                         help="max pending runs before POSTs get 503 "
                              "(default 32)")
    serve_p.add_argument("--cache-budget", type=int, default=None,
                         metavar="BYTES",
                         help="evict least-recently-used unpinned entries "
                              "beyond this many bytes (default: no budget)")
    serve_p.add_argument("--journals", default=None, metavar="DIR",
                         help="run-journal directory (default "
                              "<cache>/journals)")
    serve_p.add_argument("--checkpoint", nargs="?",
                         const=DEFAULT_CHECKPOINT_DIR, default=None,
                         metavar="DIR",
                         help="checkpoint in-flight runs every "
                              "--checkpoint-every days so a killed service "
                              "resumes instead of recomputing (default dir "
                              f"{DEFAULT_CHECKPOINT_DIR})")
    serve_p.add_argument("--checkpoint-every", type=int, default=10,
                         metavar="DAYS", help="checkpoint cadence "
                         "(default 10)")
    serve_p.add_argument("--observatory", default=None, metavar="DIR",
                         help="expose the observatory directory at "
                              "GET /observatory (SSE tail) and "
                              "GET /observatory/<day>")
    return parser


def _config(args) -> ScenarioConfig:
    return ScenarioConfig(
        seed=args.seed, duration_days=args.days,
        volume_scale=args.scale, n_tail=args.tail,
    )


def _cache_dir(args):
    return None if args.no_cache else args.cache


def _mode_conflict(args) -> str | None:
    """First mutually-exclusive option combination as a one-line message,
    or None when the requested mode set is coherent.

    Centralising the refusals keeps every combination to the same
    contract: one ``error:`` line on stderr, exit status 2, no traceback.
    """
    observe_run = args.command == "observe" and not args.summary_only
    stream = getattr(args, "stream", False) or observe_run
    observe = getattr(args, "observe", None)
    spill = getattr(args, "spill", None)
    if stream and _cache_dir(args) is not None:
        return ("--stream is incompatible with --cache (streaming runs "
                "produce no record bundle to cache)")
    if observe is not None and not stream:
        return ("--observe requires --stream (observer records are "
                "derived from the streaming day drain)")
    if spill is not None and stream:
        return ("--spill is incompatible with --stream (a streaming run "
                "already releases each day's packets)")
    if spill is not None and args.checkpoint:
        return ("--spill is incompatible with --checkpoint (spilled "
                "segments are not captured by checkpoints)")
    if args.resume and not args.checkpoint:
        return "--resume requires --checkpoint (nothing to resume from)"
    return None


def _scenario(args) -> object:
    print(f"running scenario: {args.days} days, scale {args.scale}, "
          f"seed {args.seed} ...", file=sys.stderr)
    budget_mb = getattr(args, "spill_budget_mb", None)
    return run_scenario(
        _config(args), cache_dir=_cache_dir(args),
        jobs=getattr(args, "jobs", 1) if args.command == "run" else 1,
        pipeline=getattr(args, "pipeline", False),
        checkpoint_dir=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        stream_analysis=getattr(args, "stream", False),
        observe_dir=getattr(args, "observe", None),
        spill_dir=getattr(args, "spill", None),
        spill_budget_bytes=(budget_mb * 1024 * 1024
                            if budget_mb is not None else None),
    )


def _render_stream_summary(result) -> str:
    """The ``run --stream`` headline: per-telescope scan-event counts at
    every aggregation level, computed without retaining the packets."""
    lines = ["Streaming scan summary (events element-identical to batch "
             "detect_scans)"]
    lines.append(f"  {'telescope':10s} {'packets':>9s} "
                 f"{'scans/128':>9s} {'scans/64':>8s} {'scans/48':>8s}")
    for name, summary in result.streaming.items():
        counts = {level: len(events)
                  for level, events in summary.events.items()}
        lines.append(
            f"  {name:10s} {summary.records_in:9d} "
            f"{counts.get(128, 0):9d} {counts.get(64, 0):8d} "
            f"{counts.get(48, 0):8d}"
        )
    return "\n".join(lines)


def _observe(args) -> int:
    """The ``observe`` subcommand: a streaming observatory run (unless
    ``--summary-only``) followed by the drift report over its day files."""
    import json

    from repro.observatory import DriftReport, list_day_files

    if not args.summary_only:
        result = run_scenario(
            _config(args), jobs=args.jobs,
            checkpoint_dir=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            stream_analysis=True, observe_dir=args.data,
        )
        summary = result.observatory
        print(f"observatory: {summary['days']} day files, "
              f"{summary['records']} telescope records in {args.data}",
              file=sys.stderr)
    if not list_day_files(args.data):
        print(f"error: no observer day files in {args.data}",
              file=sys.stderr)
        return 2
    report = DriftReport.from_data_dir(args.data)
    print(report.render())
    if args.json:
        with open(args.json, "w") as stream:
            json.dump(report.to_json(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"drift report written to {args.json}", file=sys.stderr)
    return 0


def _emit_metrics(registry: MetricsRegistry, metrics_arg) -> None:
    """Print the snapshot table; write JSON when a path was given."""
    print()
    print(registry.render_table())
    if isinstance(metrics_arg, str):
        registry.write_json(metrics_arg)
        print(f"metrics written to {metrics_arg}", file=sys.stderr)


def _emit_trace(tracer: Tracer, trace_arg) -> None:
    """Print the self-time table; write Chrome trace when a path was given."""
    print()
    print(tracer.render_self_time())
    if isinstance(trace_arg, str):
        tracer.write_chrome_trace(trace_arg)
        print(f"trace written to {trace_arg}", file=sys.stderr)


def _serve(args) -> int:
    """Run the scenario service until SIGINT/SIGTERM, then drain."""
    import asyncio
    import signal

    from repro.service import ScenarioServer, ScenarioService

    service = ScenarioService(
        args.cache, jobs=args.jobs, queue_limit=args.queue_limit,
        max_cache_bytes=args.cache_budget, journals_dir=args.journals,
        checkpoint_dir=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        observatory_dir=args.observatory,
    )
    server = ScenarioServer(service, host=args.host, port=args.port)

    async def amain() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, server.request_stop)
        task = asyncio.ensure_future(server.serve_async())
        # Announce only once the socket is bound (port 0 resolves here).
        while not server._started.is_set():
            await asyncio.sleep(0.01)
        print(f"scenario service on http://{args.host}:{server.port} "
              f"(cache {args.cache}, {args.jobs} worker(s), "
              f"queue limit {args.queue_limit})", file=sys.stderr, flush=True)
        await task

    try:
        asyncio.run(amain())
    finally:
        print("draining in-flight runs ...", file=sys.stderr, flush=True)
        service.close(drain=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        from repro.experiments.report import JOBS_AWARE, STREAM_ELIGIBLE

        if args.json:
            import json

            payload = [
                {
                    "id": key,
                    "standalone": not needs_result,
                    "jobs": key in JOBS_AWARE,
                    "stream": key in STREAM_ELIGIBLE,
                    "description": (fn.__doc__ or "")
                    .strip().splitlines()[0],
                }
                for key, (fn, needs_result) in EXPERIMENTS.items()
            ]
            print(json.dumps(payload, indent=2))
            return 0

        def describe(key: str) -> str:
            fn, _ = EXPERIMENTS[key]
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            marker = "*" if key in JOBS_AWARE else (
                "s" if key in STREAM_ELIGIBLE else " ")
            return f"  {key:8s} {marker} {doc}"

        print("standalone (no scenario run needed):")
        for key, (_, needs_result) in EXPERIMENTS.items():
            if not needs_result:
                print(describe(key))
        print("scenario-driven (share one telescope run; "
              "* = fans out internally with --jobs; "
              "s = detection inputs computable by run --stream):")
        for key, (_, needs_result) in EXPERIMENTS.items():
            if needs_result:
                print(describe(key))
        return 0

    if args.command == "serve":
        return _serve(args)

    conflict = _mode_conflict(args)
    if conflict is not None:
        print(f"error: {conflict}", file=sys.stderr)
        return 2

    # Install the observability layers before the scenario is built:
    # components bind their counters at construction time (tracer and
    # journal are fetched at call time, but installing everything up front
    # keeps one composable lifecycle).
    registry = MetricsRegistry() if args.metrics else None
    tracer = Tracer() if args.trace else None
    journal = Journal(args.journal) if args.journal else None
    prev_registry = set_registry(registry) if registry else None
    prev_tracer = set_tracer(tracer) if tracer else None
    prev_journal = set_journal(journal) if journal else None
    try:
        if args.command == "observe":
            code = _observe(args)
            if registry:
                _emit_metrics(registry, args.metrics)
            if tracer:
                _emit_trace(tracer, args.trace)
            return code

        if args.command == "run":
            result = _scenario(args)
            if args.stream:
                print()
                print(_render_stream_summary(result))
                if result.observatory is not None:
                    summary = result.observatory
                    print(f"observatory: {summary['days']} day files, "
                          f"{summary['records']} telescope records in "
                          f"{summary['directory']}", file=sys.stderr)
                if registry:
                    _emit_metrics(registry, args.metrics)
                if tracer:
                    _emit_trace(tracer, args.trace)
                return 0
            for key in ("table1", "table3", "fig5", "fig9", "table4"):
                fn, _ = EXPERIMENTS[key]
                print()
                with get_tracer().span(f"experiment.{key}"):
                    if registry:
                        with registry.timer(f"experiment.{key}"):
                            rendered = fn(result).render()
                    else:
                        rendered = fn(result).render()
                print(rendered)
            if registry:
                _emit_metrics(registry, args.metrics)
            if tracer:
                _emit_trace(tracer, args.trace)
            return 0

        # experiment
        from repro.exec import (
            UnknownExperimentError,
            partition_ids,
            resolve_ids,
            run_experiments,
        )

        try:
            ids = resolve_ids(args.ids)
        except UnknownExperimentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        result = None
        if partition_ids(ids)[1]:
            result = _scenario(args)
        print(run_experiments(
            ids=ids, jobs=args.jobs, output_path=args.output, result=result,
        ))
        if registry:
            _emit_metrics(registry, args.metrics)
        if tracer:
            _emit_trace(tracer, args.trace)
        return 0
    finally:
        if registry:
            set_registry(prev_registry)
        if tracer:
            set_tracer(prev_tracer)
        if journal:
            set_journal(prev_journal)
            journal.close()
            print(f"journal written to {args.journal}", file=sys.stderr)


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # ``repro list --json | head`` and friends: the consumer closed
        # the pipe, which is an answer, not an error worth a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
