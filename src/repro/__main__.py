"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``list`` — show the available experiments,
* ``run`` — run the full scenario and print the headline tables,
* ``experiment <id> [...]`` — regenerate specific tables/figures.

Options shared by ``run``/``experiment``: ``--days``, ``--scale``,
``--seed``, ``--tail``, and the observability trio (composable in one
invocation):

* ``--metrics[=FILE]`` — print a telemetry snapshot after the run; with
  ``FILE``, also write it as JSON;
* ``--trace[=FILE]`` — trace the pipeline and print a self-time-per-stage
  table; with ``FILE``, also write Chrome/Perfetto trace-event JSON;
* ``--journal[=FILE]`` — append the run-provenance journal (manifest,
  per-day progress, session/honeyprefix lifecycle, detection summaries)
  to ``FILE`` (default ``journal.jsonl``).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import EXPERIMENTS
from repro.obs import (
    Journal,
    MetricsRegistry,
    Tracer,
    get_tracer,
    set_journal,
    set_registry,
    set_tracer,
)
from repro.sim import ScenarioConfig, run_scenario

#: --journal without a path appends here.
DEFAULT_JOURNAL_PATH = "journal.jsonl"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Unveiling IPv6 Scanning Dynamics'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--days", type=int, default=100,
                       help="simulated days (default 100)")
        p.add_argument("--scale", type=float, default=2e-4,
                       help="volume scale vs. the paper (default 2e-4)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--tail", type=int, default=140,
                       help="number of long-tail scanner ASes")
        p.add_argument("--metrics", nargs="?", const=True, default=None,
                       metavar="FILE",
                       help="collect pipeline telemetry and print a sorted "
                            "snapshot; with FILE, also write it as JSON")
        p.add_argument("--trace", nargs="?", const=True, default=None,
                       metavar="FILE",
                       help="trace the pipeline and print a self-time-per-"
                            "stage table; with FILE, also write Chrome/"
                            "Perfetto trace-event JSON")
        p.add_argument("--journal", nargs="?", const=DEFAULT_JOURNAL_PATH,
                       default=None, metavar="FILE",
                       help="write the run-provenance journal (JSONL) to "
                            f"FILE (default {DEFAULT_JOURNAL_PATH})")

    run_p = sub.add_parser("run", help="run the scenario, print headlines")
    add_scenario_args(run_p)

    exp_p = sub.add_parser("experiment",
                           help="regenerate specific tables/figures")
    exp_p.add_argument("ids", nargs="+", metavar="ID",
                       help="experiment ids (see 'list'), or 'all'")
    exp_p.add_argument("--output", default=None,
                       help="also write the combined report to this file")
    add_scenario_args(exp_p)
    return parser


def _scenario(args) -> object:
    config = ScenarioConfig(
        seed=args.seed, duration_days=args.days,
        volume_scale=args.scale, n_tail=args.tail,
    )
    print(f"running scenario: {args.days} days, scale {args.scale}, "
          f"seed {args.seed} ...", file=sys.stderr)
    return run_scenario(config)


def _emit_metrics(registry: MetricsRegistry, metrics_arg) -> None:
    """Print the snapshot table; write JSON when a path was given."""
    print()
    print(registry.render_table())
    if isinstance(metrics_arg, str):
        registry.write_json(metrics_arg)
        print(f"metrics written to {metrics_arg}", file=sys.stderr)


def _emit_trace(tracer: Tracer, trace_arg) -> None:
    """Print the self-time table; write Chrome trace when a path was given."""
    print()
    print(tracer.render_self_time())
    if isinstance(trace_arg, str):
        tracer.write_chrome_trace(trace_arg)
        print(f"trace written to {trace_arg}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for key, (fn, needs_result) in EXPERIMENTS.items():
            source = "scenario" if needs_result else "standalone"
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {key:8s} [{source:10s}] {doc}")
        return 0

    # Install the observability layers before the scenario is built:
    # components bind their counters at construction time (tracer and
    # journal are fetched at call time, but installing everything up front
    # keeps one composable lifecycle).
    registry = MetricsRegistry() if args.metrics else None
    tracer = Tracer() if args.trace else None
    journal = Journal(args.journal) if args.journal else None
    prev_registry = set_registry(registry) if registry else None
    prev_tracer = set_tracer(tracer) if tracer else None
    prev_journal = set_journal(journal) if journal else None
    try:
        if args.command == "run":
            result = _scenario(args)
            for key in ("table1", "table3", "fig5", "fig9", "table4"):
                fn, _ = EXPERIMENTS[key]
                print()
                with get_tracer().span(f"experiment.{key}"):
                    if registry:
                        with registry.timer(f"experiment.{key}"):
                            rendered = fn(result).render()
                    else:
                        rendered = fn(result).render()
                print(rendered)
            if registry:
                _emit_metrics(registry, args.metrics)
            if tracer:
                _emit_trace(tracer, args.trace)
            return 0

        # experiment
        ids = list(EXPERIMENTS) if args.ids == ["all"] else args.ids
        unknown = [i for i in ids if i not in EXPERIMENTS]
        if unknown:
            print(f"unknown experiment ids: {unknown}", file=sys.stderr)
            print(f"known: {sorted(EXPERIMENTS)} (or 'all')", file=sys.stderr)
            return 2
        result = None
        if any(EXPERIMENTS[i][1] for i in ids):
            result = _scenario(args)
        from repro.experiments.report import run_all

        print(run_all(result, experiment_ids=ids, output_path=args.output))
        if registry:
            _emit_metrics(registry, args.metrics)
        if tracer:
            _emit_trace(tracer, args.trace)
        return 0
    finally:
        if registry:
            set_registry(prev_registry)
        if tracer:
            set_tracer(prev_tracer)
        if journal:
            set_journal(prev_journal)
            journal.close()
            print(f"journal written to {args.journal}", file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
