"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``list`` — show the available experiments,
* ``run`` — run the full scenario and print the headline tables,
* ``experiment <id> [...]`` — regenerate specific tables/figures.

Options shared by ``run``/``experiment``: ``--days``, ``--scale``,
``--seed``, ``--tail``.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import EXPERIMENTS
from repro.sim import ScenarioConfig, run_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Unveiling IPv6 Scanning Dynamics'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--days", type=int, default=100,
                       help="simulated days (default 100)")
        p.add_argument("--scale", type=float, default=2e-4,
                       help="volume scale vs. the paper (default 2e-4)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--tail", type=int, default=140,
                       help="number of long-tail scanner ASes")

    run_p = sub.add_parser("run", help="run the scenario, print headlines")
    add_scenario_args(run_p)

    exp_p = sub.add_parser("experiment",
                           help="regenerate specific tables/figures")
    exp_p.add_argument("ids", nargs="+", metavar="ID",
                       help="experiment ids (see 'list'), or 'all'")
    exp_p.add_argument("--output", default=None,
                       help="also write the combined report to this file")
    add_scenario_args(exp_p)
    return parser


def _scenario(args) -> object:
    config = ScenarioConfig(
        seed=args.seed, duration_days=args.days,
        volume_scale=args.scale, n_tail=args.tail,
    )
    print(f"running scenario: {args.days} days, scale {args.scale}, "
          f"seed {args.seed} ...", file=sys.stderr)
    return run_scenario(config)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for key, (fn, needs_result) in EXPERIMENTS.items():
            source = "scenario" if needs_result else "standalone"
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {key:8s} [{source:10s}] {doc}")
        return 0

    if args.command == "run":
        result = _scenario(args)
        for key in ("table1", "table3", "fig5", "fig9", "table4"):
            fn, _ = EXPERIMENTS[key]
            print()
            print(fn(result).render())
        return 0

    # experiment
    ids = list(EXPERIMENTS) if args.ids == ["all"] else args.ids
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"known: {sorted(EXPERIMENTS)} (or 'all')", file=sys.stderr)
        return 2
    result = None
    if any(EXPERIMENTS[i][1] for i in ids):
        result = _scenario(args)
    from repro.experiments.report import run_all

    print(run_all(result, experiment_ids=ids, output_path=args.output))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
