"""Shared utilities: deterministic RNG handling, simulated time, validation.

Every stochastic component in the library accepts an explicit
:class:`numpy.random.Generator`.  These helpers centralize seed-spawning and
the time conventions used across the simulator (simulation time is a float
number of seconds from epoch 0).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Seconds in one day of simulated time.
DAY = 86_400.0
#: Seconds in one week of simulated time.
WEEK = 7 * DAY
#: Seconds in one hour of simulated time.
HOUR = 3_600.0


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for an unseeded generator.  Library code funnels all RNG
    construction through here so that scenario-level determinism is easy to
    audit.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(*key: int) -> np.random.Generator:
    """Return a generator keyed by a tuple of non-negative integers.

    Unlike :func:`spawn_rngs`, the derived stream depends only on the key
    material — not on how much of any parent stream was consumed first.
    Components use this for *decision streams* (e.g. "does scanner X react
    to prefix P?") that must stay stable when unrelated code changes how
    many draws it makes.
    """
    return np.random.default_rng(list(key))


def spawn_rngs(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Children are statistically independent of each other and of the parent's
    subsequent output, which lets sub-components evolve without perturbing
    one another's streams when the scenario is edited.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def day_of(t: float) -> int:
    """Return the zero-based simulation day containing time ``t``."""
    return int(t // DAY)


def week_of(t: float) -> int:
    """Return the zero-based simulation week containing time ``t``."""
    return int(t // WEEK)


def check_nonnegative(name: str, value: float) -> float:
    """Validate that ``value`` is a non-negative number and return it."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1] and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def weighted_choice(
    rng: np.random.Generator, items: Sequence, weights: Iterable[float]
):
    """Pick one element of ``items`` with the given (unnormalized) weights."""
    w = np.asarray(list(weights), dtype=float)
    if len(w) != len(items):
        raise ValueError("weights must match items in length")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    idx = rng.choice(len(items), p=w / total)
    return items[idx]
