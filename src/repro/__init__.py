"""repro — reproduction of "Unveiling IPv6 Scanning Dynamics" (CoNEXT 2025).

Top-level convenience surface.  The subpackages are the real API:

* :mod:`repro.core` — proactive/passive telescopes (the paper's system),
* :mod:`repro.net`, :mod:`repro.routing`, :mod:`repro.dns`,
  :mod:`repro.tlsca`, :mod:`repro.hitlist`, :mod:`repro.datasets` — the
  substrates the telescope plugs into,
* :mod:`repro.scanners` — the synthetic scanner ecosystem,
* :mod:`repro.analysis` — the measurement pipeline (flows, scan detection,
  BSTM causal impact, scope/tactic/geo analyses),
* :mod:`repro.sim` — the event engine, fabric, paper scenario, CDN model,
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

from repro.sim import ScenarioConfig, run_scenario
from repro.experiments import EXPERIMENTS

__version__ = "1.1.0"

__all__ = ["ScenarioConfig", "run_scenario", "EXPERIMENTS", "__version__"]
