"""Simulation layer: the event engine, the Internet fabric wiring all
substrates together, the paper's deployment scenario, and the CDN vantage
point used for the longitudinal motivation figures.
"""

from repro.sim.engine import Engine, Event
from repro.sim.fabric import InternetFabric
from repro.sim.cdn import CdnVantage, CdnScannerSpec
from repro.sim.scenario import PaperScenario, ScenarioConfig
from repro.sim.runner import ScenarioResult, SimulationAborted, run_scenario

__all__ = [
    "Engine",
    "Event",
    "InternetFabric",
    "CdnVantage",
    "CdnScannerSpec",
    "PaperScenario",
    "ScenarioConfig",
    "ScenarioResult",
    "SimulationAborted",
    "run_scenario",
]
