"""End-to-end experiment runner and result bundle."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro._util import DAY
from repro.analysis.asinfo import MetadataJoiner
from repro.analysis.records import PacketRecords
from repro.core.honeyprefix import Honeyprefix
from repro.net.addr import IPv6Prefix
from repro.sim.scenario import PaperScenario, ScenarioConfig


@dataclass
class ScenarioResult:
    """Everything the analysis pipeline needs from one scenario run."""

    scenario: PaperScenario
    nta: PacketRecords
    ntb: PacketRecords
    ntc: PacketRecords

    @property
    def config(self) -> ScenarioConfig:
        return self.scenario.config

    @property
    def honeyprefixes(self) -> dict[str, Honeyprefix]:
        return self.scenario.honeyprefixes

    @property
    def start(self) -> float:
        return 0.0

    @property
    def end(self) -> float:
        return self.config.duration_days * DAY

    @cached_property
    def joiner(self) -> MetadataJoiner:
        fabric = self.scenario.fabric
        return MetadataJoiner(fabric.prefix2as, fabric.asdb, fabric.geodb)

    def honeyprefix_records(self, name: str) -> PacketRecords:
        """NT-A records restricted to one honeyprefix's /48."""
        hp = self.honeyprefixes[name]
        return self.nta.select(self.nta.mask_dst_in(hp.prefix))

    def control_records(self) -> PacketRecords:
        """Records of the busiest *control* /48 (non-honeyprefix dark space).

        The paper's counterfactuals use the control subnet that received the
        most scanner attention, which lower-bounds the effect sizes.
        """
        covering = self.scenario.nta_covering
        honey = {hp.prefix.network for hp in self.honeyprefixes.values()}
        live = {p.network for p in self.scenario.live_prefixes}
        nets = np.zeros(len(self.nta), dtype=object)
        counts: dict[int, int] = {}
        for i, dst in enumerate(self.nta.dst_addresses()):
            net = (dst >> 80) << 80
            nets[i] = net
            if net not in honey and net not in live:
                counts[net] = counts.get(net, 0) + 1
        if not counts:
            return PacketRecords.empty()
        best = max(counts, key=counts.get)
        mask = np.fromiter((n == best for n in nets), dtype=bool,
                           count=len(nets))
        return self.nta.select(mask)

    def telescopes(self) -> dict[str, PacketRecords]:
        return {"NT-A": self.nta, "NT-B": self.ntb, "NT-C": self.ntc}


def run_scenario(
    config: ScenarioConfig | None = None, progress: bool = False
) -> ScenarioResult:
    """Build, run, and bundle one full scenario."""
    scenario = PaperScenario(config)
    scenario.run(progress=progress)
    return ScenarioResult(
        scenario=scenario,
        nta=scenario.telescope.capturer.to_records(),
        ntb=scenario.ntb_capturer.to_records(),
        ntc=scenario.ntc_capturer.to_records(),
    )
