"""End-to-end experiment runner and result bundle."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro._util import DAY
from repro.analysis.asinfo import MetadataJoiner
from repro.analysis.records import PacketRecords
from repro.core.honeyprefix import Honeyprefix
from repro.net.addr import IPv6Prefix
from repro.obs import (
    RecordingJournal,
    RunManifest,
    config_hash,
    get_journal,
    get_registry,
    get_tracer,
    sample_peak_rss,
    set_journal,
    use_journal,
)
from repro.sim.scenario import PaperScenario, ScenarioConfig


class SimulationAborted(RuntimeError):
    """Raised by ``run_scenario(abort_after_day=...)`` — the test hook
    simulating a process killed mid-horizon.  Any state the run was asked
    to persist (checkpoints, journal lines) is already on disk when this
    raises, exactly as it would be at a real kill between day windows."""

#: A /48-truncated address has its low 80 bits zeroed; prefixes whose
#: network keeps any of those bits set can never equal a truncated net.
_LOW80 = (1 << 80) - 1


@dataclass
class ScenarioResult:
    """Everything the analysis pipeline needs from one scenario run."""

    scenario: PaperScenario
    nta: PacketRecords
    ntb: PacketRecords
    ntc: PacketRecords
    #: Metrics snapshot taken right after the run (empty when metrics are
    #: disabled) — experiments join their own numbers against it.
    telemetry: dict = field(default_factory=dict)
    #: Per-telescope ground-truth provenance sidecars
    #: (:class:`repro.analysis.groundtruth.GroundTruthRecords`): which agent
    #: emitted each captured packet — data a real telescope never has, kept
    #: out of the analysis-facing records and used only for scoring.
    truth: dict = field(default_factory=dict)
    #: ``stream_analysis`` runs only: telescope name ->
    #: :class:`~repro.analysis.streaming.StreamSummary` (scan events at
    #: every aggregation level, computed incrementally).  The record
    #: columns above are empty in that mode — the packets were analyzed
    #: and released day by day, never retained.
    streaming: dict | None = None
    #: ``observe_dir`` runs only: the observatory's closing summary
    #: (``{"directory", "days", "records"}``) after its per-day observer
    #: files, ``observations.jsonl``, and index were written.
    observatory: dict | None = None

    @property
    def config(self) -> ScenarioConfig:
        return self.scenario.config

    @property
    def honeyprefixes(self) -> dict[str, Honeyprefix]:
        return self.scenario.honeyprefixes

    @property
    def start(self) -> float:
        return 0.0

    @property
    def end(self) -> float:
        return self.config.duration_days * DAY

    @cached_property
    def joiner(self) -> MetadataJoiner:
        fabric = self.scenario.fabric
        return MetadataJoiner(fabric.prefix2as, fabric.asdb, fabric.geodb)

    def honeyprefix_records(self, name: str) -> PacketRecords:
        """NT-A records restricted to one honeyprefix's /48."""
        hp = self.honeyprefixes[name]
        return self.nta.select(self.nta.mask_dst_in(hp.prefix))

    def control_records(self) -> PacketRecords:
        """Records of the busiest *control* /48 (non-honeyprefix dark space).

        The paper's counterfactuals use the control subnet that received the
        most scanner attention, which lower-bounds the effect sizes.

        Vectorized: the /48 truncation ``(dst >> 80) << 80`` lives entirely
        in the high 64 bits, so the per-row nets come straight from the
        ``dst_hi`` column.  Ties on the packet count are broken by first
        appearance, matching :meth:`control_records_reference` exactly.
        """
        if len(self.nta) == 0:
            return PacketRecords.empty()
        excluded = {hp.prefix.network for hp in self.honeyprefixes.values()}
        excluded |= {p.network for p in self.scenario.live_prefixes}
        excluded_hi = np.fromiter(
            (net >> 64 for net in excluded if net & _LOW80 == 0),
            dtype=np.uint64,
        )
        nets_hi = (self.nta.dst_hi >> np.uint64(16)) << np.uint64(16)
        candidates = nets_hi[~np.isin(nets_hi, excluded_hi)]
        if candidates.size == 0:
            return PacketRecords.empty()
        uniq, first_seen, counts = np.unique(
            candidates, return_index=True, return_counts=True
        )
        ties = np.flatnonzero(counts == counts.max())
        best = uniq[ties[np.argmin(first_seen[ties])]]
        return self.nta.select(nets_hi == best)

    def control_records_reference(self) -> PacketRecords:
        """Per-packet reference for :meth:`control_records` (ground truth
        for the randomized equivalence tests)."""
        honey = {hp.prefix.network for hp in self.honeyprefixes.values()}
        live = {p.network for p in self.scenario.live_prefixes}
        nets = np.zeros(len(self.nta), dtype=object)
        counts: dict[int, int] = {}
        for i, dst in enumerate(self.nta.dst_addresses()):
            net = (dst >> 80) << 80
            nets[i] = net
            if net not in honey and net not in live:
                counts[net] = counts.get(net, 0) + 1
        if not counts:
            return PacketRecords.empty()
        best = max(counts, key=counts.get)
        mask = np.fromiter((n == best for n in nets), dtype=bool,
                           count=len(nets))
        return self.nta.select(mask)

    def telescopes(self) -> dict[str, PacketRecords]:
        return {"NT-A": self.nta, "NT-B": self.ntb, "NT-C": self.ntc}

    def truth_combined(self):
        """All telescopes' ground-truth sidecars as one table."""
        from repro.analysis.groundtruth import GroundTruthRecords

        return GroundTruthRecords.concat(list(self.truth.values()))


#: Checkpoints (and the sharded path's day windows) land every this many
#: days unless overridden.
DEFAULT_CHECKPOINT_EVERY = 10


def run_scenario(
    config: ScenarioConfig | None = None,
    progress: bool = False,
    cache_dir=None,
    *,
    jobs: int = 1,
    pipeline: bool = False,
    checkpoint_dir=None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = False,
    abort_after_day: int | None = None,
    stream_analysis: bool = False,
    observe_dir=None,
    spill_dir=None,
    spill_budget_bytes: int | None = None,
) -> ScenarioResult:
    """Build, run, and bundle one full scenario.

    Each stage (world construction, the day loop, freezing the captures)
    is timed into the active metrics registry and wrapped in a trace span
    under one ``run_scenario`` root, and the resulting metrics snapshot
    rides along as :attr:`ScenarioResult.telemetry`.  When a journal is
    active, the run opens with its ``run_manifest`` (config hash + seed +
    package version) and closes with a ``run_end`` summary.

    With ``cache_dir``, the run goes through the on-disk
    :class:`~repro.exec.cache.ScenarioCache`: a verified entry for this
    exact config (hash covers every field) and package version is loaded
    instead of simulating — skipping ``scenario.build``/``scenario.run``
    entirely — and a miss simulates as usual, then stores the frozen
    bundle.  The returned result renders every experiment byte-identically
    either way; the journal records ``cache_hit``/``cache_store`` so a
    warm run is auditable from its artifacts.

    Execution modes (all byte-identical in records, counters, and journal
    — the non-negotiable determinism contract):

    * ``jobs > 1`` shards the day loop across that many replicated worker
      processes (:mod:`repro.exec.shard`); requires the batch path.
    * ``pipeline=True`` overlaps emission with dispatch on a second
      thread (:class:`repro.sim.pipeline.DispatchPipeline`); serial-mode
      only — the sharded path ignores it (workers already overlap).
    * ``checkpoint_dir`` saves a resumable engine-state checkpoint every
      ``checkpoint_every`` days; with ``resume=True`` a usable checkpoint
      is loaded, the covered days are fast-forwarded without re-emitting
      a single packet, and the journal records emitted before the
      checkpoint are replayed verbatim into the active journal.
    * ``abort_after_day=N`` raises :class:`SimulationAborted` once day N
      has completed (sharded runs: once N's window has merged) — the test
      hook for kill/resume equivalence.

    Memory-bounded modes (each changes what is held, never what is
    computed):

    * ``stream_analysis=True`` runs the scan/flow detectors *during* the
      day loop: each day's captures are drained into per-telescope
      :class:`~repro.analysis.streaming.StreamAnalyzer` instances and
      released, so peak memory holds one day of packets instead of the
      horizon.  The result carries :attr:`ScenarioResult.streaming`
      summaries whose events are element-identical to running
      ``detect_scans`` over the batch records; the record columns come
      back empty.  Composes with ``jobs`` and ``checkpoint_dir`` (open
      analyzer state rides in the checkpoint); incompatible with
      ``cache_dir`` (the cache stores record bundles).
    * ``spill_dir`` keeps the *batch* path's captures bounded instead:
      buffered chunks past ``spill_budget_bytes`` are sealed to
      checksummed npz segments and streamed back at freeze time.
      Incompatible with ``checkpoint_dir`` (checkpoints snapshot
      in-memory chunks) and redundant under ``stream_analysis`` (the
      day-drain already bounds the buffer), so both pairings are errors.

    ``observe_dir`` turns a streaming run into the longitudinal
    observatory (:mod:`repro.observatory`): one validated, bit-
    reproducible observer JSON record per simulated day (scan-event
    rates, new-source discovery, tactic mix, honeyprefix reaction
    latency) written into the directory, mirrored to
    ``observations.jsonl``, and indexed at the end.  Requires
    ``stream_analysis=True``; composes with ``jobs``, ``pipeline``, and
    ``checkpoint_dir`` (the observer cursor rides in the checkpoint).
    """
    config = config if config is not None else ScenarioConfig()
    if jobs > 1 and not config.use_batch_path:
        raise ValueError("sharded runs (jobs > 1) require use_batch_path")
    if observe_dir is not None and not stream_analysis:
        raise ValueError(
            "observe_dir requires stream_analysis=True: observer records "
            "are derived from the streaming day drain")
    if stream_analysis and cache_dir is not None:
        raise ValueError(
            "stream_analysis runs produce no record bundle to cache; "
            "drop cache_dir or stream_analysis")
    if spill_dir is not None and checkpoint_dir is not None:
        raise ValueError(
            "capture spill and checkpointing are mutually exclusive: "
            "a checkpoint snapshots in-memory chunks only")
    if spill_dir is not None and stream_analysis:
        raise ValueError(
            "stream_analysis already bounds capture memory by draining "
            "each day; spill_dir would hide chunks from the day drain")
    registry = get_registry()
    tracer = get_tracer()

    checkpoint = None
    if resume and checkpoint_dir is not None:
        from repro.exec.freeze import load_checkpoint

        checkpoint = load_checkpoint(checkpoint_dir, config)
        if checkpoint is not None:
            # A checkpoint can only resume into the mode that wrote it:
            # batch checkpoints carry chunks the streaming path would
            # never analyze, streaming ones carry analyzer state the
            # batch path would silently drop.
            if stream_analysis and checkpoint.streaming is None:
                raise ValueError(
                    "cannot resume a batch-mode checkpoint with "
                    "stream_analysis=True")
            if not stream_analysis and checkpoint.streaming is not None:
                raise ValueError(
                    "cannot resume a stream_analysis checkpoint without "
                    "stream_analysis=True")
            # Same pairing rule for the observatory cursor: its seen-source
            # sets and event counters only mean anything to a run that
            # keeps observing, and a run that observes cannot start from a
            # checkpoint that never tracked them.
            if observe_dir is not None and checkpoint.observatory is None:
                raise ValueError(
                    "cannot resume a non-observatory checkpoint with "
                    "observe_dir set")
            if observe_dir is None and checkpoint.observatory is not None:
                raise ValueError(
                    "cannot resume an observatory checkpoint without "
                    "observe_dir")

    streams = None
    if stream_analysis:
        from repro.analysis.streaming import StreamAnalyzer

        if checkpoint is not None and checkpoint.streaming is not None:
            streams = checkpoint.streaming
        else:
            streams = {name: StreamAnalyzer(name)
                       for name in ("NT-A", "NT-B", "NT-C")}

    # With checkpointing on, wrap the active journal in a recorder for the
    # duration of the run: checkpoints then carry every record emitted so
    # far, and a resumed run replays them for a byte-identical journal.
    previous_journal = None
    if checkpoint_dir is not None:
        recorder = RecordingJournal(inner=get_journal())
        previous_journal = set_journal(recorder)
    observatory = None
    try:
        journal = get_journal()
        cache = None
        if checkpoint is None:
            # The manifest opens the journal whether the run simulates or
            # loads from cache: a warm run stays auditable from artifacts.
            journal.emit(
                "run_manifest",
                **RunManifest.from_config(config).to_record_fields())
            if cache_dir is not None:
                from repro.exec.cache import ScenarioCache

                cache = ScenarioCache(cache_dir)
                with tracer.span("run_scenario.cached",
                                 days=config.duration_days,
                                 seed=config.seed):
                    cached = cache.load(config)
                if cached is not None:
                    return cached
        else:
            # Resuming mid-run: the checkpoint's records (the original
            # manifest included) are the journal's opening lines, and the
            # cache is only consulted for storage at the end.
            journal.replay(checkpoint.journal_records)
            if cache_dir is not None:
                from repro.exec.cache import ScenarioCache

                cache = ScenarioCache(cache_dir)
        start_day = checkpoint.next_day if checkpoint is not None else 0

        if observe_dir is not None:
            from repro.observatory import Observatory

            observatory = Observatory(
                observe_dir, config, start_day=start_day,
                state=(checkpoint.observatory
                       if checkpoint is not None else None),
            )

        with tracer.span("run_scenario", days=config.duration_days,
                         seed=config.seed):
            scenario = _simulate(
                config, checkpoint, start_day, progress=progress, jobs=jobs,
                pipeline=pipeline, checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                abort_after_day=abort_after_day, streams=streams,
                observatory=observatory,
                spill_dir=spill_dir, spill_budget_bytes=spill_budget_bytes,
            )
            sample_peak_rss(registry, stage="run")
            summaries = None
            observatory_summary = None
            with registry.timer("scenario.freeze"), \
                    tracer.span("scenario.freeze"):
                if streams is not None:
                    summaries = {name: streams[name].finish()
                                 for name in ("NT-A", "NT-B", "NT-C")}
                    nta = ntb = ntc = PacketRecords.empty()
                    truth = {}
                    packets = sum(s.records_in for s in summaries.values())
                    if observatory is not None:
                        observatory_summary = observatory.finish()
                else:
                    nta = scenario.telescope.capturer.to_records()
                    ntb = scenario.ntb_capturer.to_records()
                    ntc = scenario.ntc_capturer.to_records()
                    truth = {
                        "NT-A": scenario.telescope.capturer.to_truth(),
                        "NT-B": scenario.ntb_capturer.to_truth(),
                        "NT-C": scenario.ntc_capturer.to_truth(),
                    }
                    packets = len(nta) + len(ntb) + len(ntc)
            journal.emit("run_end", days=config.duration_days,
                         packets=packets)
            sample_peak_rss(registry, stage="freeze")
        if summaries is not None:
            registry.gauge("scenario.records.nta").set(
                summaries["NT-A"].records_in)
            registry.gauge("scenario.records.ntb").set(
                summaries["NT-B"].records_in)
            registry.gauge("scenario.records.ntc").set(
                summaries["NT-C"].records_in)
        else:
            registry.gauge("scenario.records.nta").set(len(nta))
            registry.gauge("scenario.records.ntb").set(len(ntb))
            registry.gauge("scenario.records.ntc").set(len(ntc))
        result = ScenarioResult(
            scenario=scenario, nta=nta, ntb=ntb, ntc=ntc,
            telemetry=registry.snapshot() if registry.enabled else {},
            truth=truth, streaming=summaries,
            observatory=observatory_summary,
        )
        if cache is not None:
            cache.store(result)
        return result
    finally:
        # An aborted observatory run releases its stream handle without
        # the end marker — exactly the on-disk state a killed process
        # leaves, which resume is built to heal.
        if observatory is not None:
            observatory.close()
        if checkpoint_dir is not None:
            set_journal(previous_journal)


def _scenario_capturers(scenario) -> dict:
    return {
        "NT-A": scenario.telescope.capturer,
        "NT-B": scenario.ntb_capturer,
        "NT-C": scenario.ntc_capturer,
    }


def _feed_streams(scenario, streams, journal, day: int,
                  observatory=None) -> None:
    """Drain each telescope's day of captures into its analyzer.

    ``now`` is the day boundary, so sessions idle past the timeout close
    deterministically each day regardless of when their source next shows
    up.  One ``stream_detection`` record per telescope, in fixed order —
    the serial and sharded paths emit identical journals.

    With an ``observatory``, the drained day records are handed to it
    after all three feeds, so the observer record sees the day's
    post-feed tracker state alongside the raw packets.  The records are
    released either way once the observation is written — the one-day
    memory bound is unchanged.
    """
    drained = {} if observatory is not None else None
    for name, cap in _scenario_capturers(scenario).items():
        records = cap.drain_day_records()
        closed = streams[name].feed(records, now=(day + 1) * DAY)
        journal.emit(
            "stream_detection", day=day, telescope=name,
            records_in=len(records), events_closed=closed,
            open_sessions=streams[name].open_sessions,
        )
        if drained is not None:
            drained[name] = records
    if observatory is not None:
        observatory.observe_day(day, scenario, streams, drained)


def _simulate(config, checkpoint, start_day, *, progress, jobs, pipeline,
              checkpoint_dir, checkpoint_every, abort_after_day,
              streams=None, observatory=None, spill_dir=None,
              spill_budget_bytes=None):
    """Build (or rebuild-and-fast-forward) the scenario and run its days
    in the requested execution mode; returns the run scenario."""
    registry = get_registry()
    tracer = get_tracer()
    journal = get_journal()
    duration = config.duration_days
    chash = config_hash(config)

    def enable_spill(scenario):
        if spill_dir is None:
            return
        for cap in _scenario_capturers(scenario).values():
            if spill_budget_bytes is not None:
                cap.enable_spill(spill_dir, spill_budget_bytes)
            else:
                cap.enable_spill(spill_dir)

    def maybe_checkpoint(scenario, next_day):
        """Save at the cadence boundary; the ``checkpoint`` record goes
        out *before* the file is written so the checkpoint carries its own
        record and a resumed journal replays it in place."""
        if (checkpoint_dir is not None and next_day < duration
                and next_day % max(1, checkpoint_every) == 0):
            from repro.exec.freeze import capture_checkpoint, save_checkpoint

            journal.emit("checkpoint", day=next_day, config_hash=chash)
            save_checkpoint(
                checkpoint_dir,
                capture_checkpoint(
                    scenario, next_day, journal.plain_records(),
                    streaming=streams,
                    observatory=(observatory.checkpoint_state()
                                 if observatory is not None else None)),
                config,
            )

    if jobs > 1:
        from repro.exec.freeze import restore_checkpoint
        from repro.exec.shard import ShardPool, run_sharded_days

        # Spawn first: worker replicas build while the parent builds.
        pool = ShardPool(config, jobs, start_day)
        try:
            with registry.timer("scenario.build"), \
                    tracer.span("scenario.build"):
                scenario = PaperScenario(config)
                if checkpoint is not None:
                    restore_checkpoint(scenario, checkpoint)
                if start_day:
                    with use_journal(None):
                        for day in range(start_day):
                            scenario.replay_day(day, agents=False)
                enable_spill(scenario)
            sample_peak_rss(registry, stage="build")

            on_day_end = None
            if streams is not None:
                def on_day_end(day):
                    _feed_streams(scenario, streams, journal, day,
                                  observatory=observatory)

            def on_window_end(next_day):
                maybe_checkpoint(scenario, next_day)
                if abort_after_day is not None and next_day > abort_after_day:
                    raise SimulationAborted(
                        f"aborted after day window ending at {next_day}")

            with registry.timer("scenario.run"), \
                    tracer.span("scenario.run", jobs=jobs):
                run_sharded_days(
                    scenario, pool, start_day=start_day, duration=duration,
                    window_days=max(1, checkpoint_every), progress=progress,
                    on_day_end=on_day_end, on_window_end=on_window_end,
                )
        finally:
            pool.close()
        return scenario

    with registry.timer("scenario.build"), tracer.span("scenario.build"):
        scenario = PaperScenario(config)
        if checkpoint is not None:
            from repro.exec.freeze import restore_checkpoint

            restore_checkpoint(scenario, checkpoint)
        if start_day:
            with use_journal(None):
                for day in range(start_day):
                    scenario.replay_day(day)
        enable_spill(scenario)
    sample_peak_rss(registry, stage="build")
    with registry.timer("scenario.run"), tracer.span("scenario.run"):
        pipe = None
        if pipeline:
            from repro.sim.pipeline import DispatchPipeline

            pipe = DispatchPipeline(scenario)
        try:
            for day in range(start_day, duration):
                emitted = (pipe.run_day(day) if pipe is not None
                           else scenario.run_day(day))
                if progress and day % 10 == 0:
                    counters = scenario.counters
                    print(f"day {day}: {emitted} packets "
                          f"(NT-A {counters.nta}, NT-C {counters.ntc})")
                next_day = day + 1
                if pipe is not None and (streams is not None
                                         or checkpoint_dir is not None):
                    # Captures must be settled before they are drained
                    # into the analyzers or snapshot into a checkpoint.
                    pipe.drain()
                if streams is not None:
                    _feed_streams(scenario, streams, journal, day,
                                  observatory=observatory)
                maybe_checkpoint(scenario, next_day)
                if abort_after_day is not None and day >= abort_after_day:
                    if pipe is not None:
                        pipe.drain()
                    raise SimulationAborted(f"aborted after day {day}")
        finally:
            if pipe is not None:
                pipe.close()
    return scenario
