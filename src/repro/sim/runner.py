"""End-to-end experiment runner and result bundle."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro._util import DAY
from repro.analysis.asinfo import MetadataJoiner
from repro.analysis.records import PacketRecords
from repro.core.honeyprefix import Honeyprefix
from repro.net.addr import IPv6Prefix
from repro.obs import RunManifest, get_journal, get_registry, get_tracer
from repro.sim.scenario import PaperScenario, ScenarioConfig

#: A /48-truncated address has its low 80 bits zeroed; prefixes whose
#: network keeps any of those bits set can never equal a truncated net.
_LOW80 = (1 << 80) - 1


@dataclass
class ScenarioResult:
    """Everything the analysis pipeline needs from one scenario run."""

    scenario: PaperScenario
    nta: PacketRecords
    ntb: PacketRecords
    ntc: PacketRecords
    #: Metrics snapshot taken right after the run (empty when metrics are
    #: disabled) — experiments join their own numbers against it.
    telemetry: dict = field(default_factory=dict)
    #: Per-telescope ground-truth provenance sidecars
    #: (:class:`repro.analysis.groundtruth.GroundTruthRecords`): which agent
    #: emitted each captured packet — data a real telescope never has, kept
    #: out of the analysis-facing records and used only for scoring.
    truth: dict = field(default_factory=dict)

    @property
    def config(self) -> ScenarioConfig:
        return self.scenario.config

    @property
    def honeyprefixes(self) -> dict[str, Honeyprefix]:
        return self.scenario.honeyprefixes

    @property
    def start(self) -> float:
        return 0.0

    @property
    def end(self) -> float:
        return self.config.duration_days * DAY

    @cached_property
    def joiner(self) -> MetadataJoiner:
        fabric = self.scenario.fabric
        return MetadataJoiner(fabric.prefix2as, fabric.asdb, fabric.geodb)

    def honeyprefix_records(self, name: str) -> PacketRecords:
        """NT-A records restricted to one honeyprefix's /48."""
        hp = self.honeyprefixes[name]
        return self.nta.select(self.nta.mask_dst_in(hp.prefix))

    def control_records(self) -> PacketRecords:
        """Records of the busiest *control* /48 (non-honeyprefix dark space).

        The paper's counterfactuals use the control subnet that received the
        most scanner attention, which lower-bounds the effect sizes.

        Vectorized: the /48 truncation ``(dst >> 80) << 80`` lives entirely
        in the high 64 bits, so the per-row nets come straight from the
        ``dst_hi`` column.  Ties on the packet count are broken by first
        appearance, matching :meth:`control_records_reference` exactly.
        """
        if len(self.nta) == 0:
            return PacketRecords.empty()
        excluded = {hp.prefix.network for hp in self.honeyprefixes.values()}
        excluded |= {p.network for p in self.scenario.live_prefixes}
        excluded_hi = np.fromiter(
            (net >> 64 for net in excluded if net & _LOW80 == 0),
            dtype=np.uint64,
        )
        nets_hi = (self.nta.dst_hi >> np.uint64(16)) << np.uint64(16)
        candidates = nets_hi[~np.isin(nets_hi, excluded_hi)]
        if candidates.size == 0:
            return PacketRecords.empty()
        uniq, first_seen, counts = np.unique(
            candidates, return_index=True, return_counts=True
        )
        ties = np.flatnonzero(counts == counts.max())
        best = uniq[ties[np.argmin(first_seen[ties])]]
        return self.nta.select(nets_hi == best)

    def control_records_reference(self) -> PacketRecords:
        """Per-packet reference for :meth:`control_records` (ground truth
        for the randomized equivalence tests)."""
        honey = {hp.prefix.network for hp in self.honeyprefixes.values()}
        live = {p.network for p in self.scenario.live_prefixes}
        nets = np.zeros(len(self.nta), dtype=object)
        counts: dict[int, int] = {}
        for i, dst in enumerate(self.nta.dst_addresses()):
            net = (dst >> 80) << 80
            nets[i] = net
            if net not in honey and net not in live:
                counts[net] = counts.get(net, 0) + 1
        if not counts:
            return PacketRecords.empty()
        best = max(counts, key=counts.get)
        mask = np.fromiter((n == best for n in nets), dtype=bool,
                           count=len(nets))
        return self.nta.select(mask)

    def telescopes(self) -> dict[str, PacketRecords]:
        return {"NT-A": self.nta, "NT-B": self.ntb, "NT-C": self.ntc}

    def truth_combined(self):
        """All telescopes' ground-truth sidecars as one table."""
        from repro.analysis.groundtruth import GroundTruthRecords

        return GroundTruthRecords.concat(list(self.truth.values()))


def run_scenario(
    config: ScenarioConfig | None = None,
    progress: bool = False,
    cache_dir=None,
) -> ScenarioResult:
    """Build, run, and bundle one full scenario.

    Each stage (world construction, the day loop, freezing the captures)
    is timed into the active metrics registry and wrapped in a trace span
    under one ``run_scenario`` root, and the resulting metrics snapshot
    rides along as :attr:`ScenarioResult.telemetry`.  When a journal is
    active, the run opens with its ``run_manifest`` (config hash + seed +
    package version) and closes with a ``run_end`` summary.

    With ``cache_dir``, the run goes through the on-disk
    :class:`~repro.exec.cache.ScenarioCache`: a verified entry for this
    exact config (hash covers every field) and package version is loaded
    instead of simulating — skipping ``scenario.build``/``scenario.run``
    entirely — and a miss simulates as usual, then stores the frozen
    bundle.  The returned result renders every experiment byte-identically
    either way; the journal records ``cache_hit``/``cache_store`` so a
    warm run is auditable from its artifacts.
    """
    config = config if config is not None else ScenarioConfig()
    registry = get_registry()
    tracer = get_tracer()
    journal = get_journal()
    # The manifest opens the journal whether the run simulates or loads
    # from cache: a warm run stays auditable from its artifacts alone.
    journal.emit("run_manifest",
                 **RunManifest.from_config(config).to_record_fields())
    cache = None
    if cache_dir is not None:
        from repro.exec.cache import ScenarioCache

        cache = ScenarioCache(cache_dir)
        with tracer.span("run_scenario.cached", days=config.duration_days,
                         seed=config.seed):
            cached = cache.load(config)
        if cached is not None:
            return cached
    with tracer.span("run_scenario", days=config.duration_days,
                     seed=config.seed):
        with registry.timer("scenario.build"), tracer.span("scenario.build"):
            scenario = PaperScenario(config)
        with registry.timer("scenario.run"), tracer.span("scenario.run"):
            scenario.run(progress=progress)
        with registry.timer("scenario.freeze"), tracer.span("scenario.freeze"):
            nta = scenario.telescope.capturer.to_records()
            ntb = scenario.ntb_capturer.to_records()
            ntc = scenario.ntc_capturer.to_records()
            truth = {
                "NT-A": scenario.telescope.capturer.to_truth(),
                "NT-B": scenario.ntb_capturer.to_truth(),
                "NT-C": scenario.ntc_capturer.to_truth(),
            }
        journal.emit("run_end", days=config.duration_days,
                     packets=len(nta) + len(ntb) + len(ntc))
    registry.gauge("scenario.records.nta").set(len(nta))
    registry.gauge("scenario.records.ntb").set(len(ntb))
    registry.gauge("scenario.records.ntc").set(len(ntc))
    result = ScenarioResult(
        scenario=scenario, nta=nta, ntb=ntb, ntc=ntc,
        telemetry=registry.snapshot() if registry.enabled else {},
        truth=truth,
    )
    if cache is not None:
        cache.store(result)
    return result
