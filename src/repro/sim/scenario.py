"""The paper's deployment scenario.

Builds and schedules the full experiment of §4: the NT-A proactive
telescope inside an ISP /32 (27 honeyprefixes per Table 2, deployed in
phases across the upper half of the /32), the NT-B (/48, Ireland) and NT-C
(/32, US academic, top /33 assigned) passive telescopes, the calibrated
scanner population, ambient scanning of the long-lived passive telescopes,
the hitlist's compilation cycles, and the later triggers (TLS issuance,
manual hitlist insertion, BGP retraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import DAY, HOUR, make_rng, spawn_rngs
from repro.core.darknet import DarknetTelescope
from repro.core.capture import PacketCapturer
from repro.core.honeyprefix import Honeyprefix, standard_configs
from repro.core.proactive import ProactiveTelescope
from repro.datasets.asdb import AsCategory, AsRecord
from repro.net.addr import IPv6Prefix
from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.obs import get_journal, get_registry, get_tracer
from repro.routing.speaker import BgpSpeaker
from repro.scanners.agent import ScannerAgent
from repro.scanners.identity import AllocationMode, ScannerIdentity
from repro.scanners.population import (
    CATEGORY_PROFILES,
    PopulationSpec,
    build_population,
)
from repro.scanners.strategies import (
    AmbientScanner,
    BgpWatcher,
    CoveringSweeper,
)
from repro.sim.engine import Engine
from repro.sim.fabric import InternetFabric


@dataclass
class ScenarioConfig:
    """Scenario knobs.  Defaults give a laptop-scale 120-day run at 1:1000
    of the paper's packet volume; raise ``duration_days`` to 280 and
    ``volume_scale`` for bigger runs."""

    seed: int = 0
    duration_days: int = 120
    volume_scale: float = 1e-3
    n_tail: int = 140
    telescope_asn: int = 64500
    nta_prefix: str = "2403:e800::/32"
    ntb_prefix: str = "2001:770:200::/48"
    ntc_prefix: str = "2620:10a::/32"
    #: Deployment phase day offsets (paper-style staged rollout).
    phase1_day: int = 10
    phase2_day: int = 18
    phase3_day: int = 26
    specific_start_day: int = 34
    #: Trigger offsets relative to each honeyprefix's deployment.
    tls_offset_days: int = 12
    tpot_hitlist_offset_days: int = 28
    tpot_tls_offset_days: int = 42
    udp_hitlist_offset_days: int = 7
    #: Withdraw 2 of the 3 H_BGP prefixes this many days after deployment
    #: (the §5.3.1 retraction experiment); skipped when past the horizon.
    withdraw_after_days: int = 60
    include_rdns: bool = False
    include_sweeper: bool = True
    hitlist_first_cycle_day: int = 7
    hitlist_cycle_days: int = 14
    #: Heavy hitters' source-pool scale; None derives it from the volume
    #: scale so source-count rankings (Table 3, Fig 6) hold at any scale.
    source_scale: float | None = None
    #: Extra :class:`~repro.scanners.population.PopulationSpec` fields
    #: (e.g. ``{"ctlog_rate": 0.0}``) — the hook ablation studies use to
    #: suppress individual scanner data channels.
    population_overrides: dict = field(default_factory=dict)
    #: Drive the daily loop through the columnar fast path
    #: (``emit_day_batch`` → ``dispatch_batch`` → ``capture_batch``).  Set
    #: False to run the retained per-packet reference implementation.
    use_batch_path: bool = True
    #: Answer honeypot traffic through the columnar reaction kernels
    #: (``Twinklenet.handle_batch`` / ``DnatGateway.handle_batch``).  Set
    #: False to run the retained per-packet reference reaction.
    use_batch_react: bool = True


@dataclass
class DispatchCounters:
    """Where emitted packets went."""

    nta: int = 0
    ntb: int = 0
    ntc: int = 0
    live_dropped: int = 0
    unrouted: int = 0


class PaperScenario:
    """Builds the full experiment and exposes a daily driver."""

    def __init__(self, config: ScenarioConfig | None = None):
        self.config = config or ScenarioConfig()
        cfg = self.config
        self.rng = make_rng(cfg.seed)
        (rng_fabric, rng_population, rng_telescope,
         rng_placement, rng_ambient) = spawn_rngs(self.rng, 5)

        self.fabric = InternetFabric(rng=rng_fabric)
        self.engine = Engine()
        self.counters = DispatchCounters()

        # -- NT-A: the proactive telescope --------------------------------
        self.nta_covering = IPv6Prefix.parse(cfg.nta_prefix)
        self.speaker = BgpSpeaker(
            cfg.telescope_asn, self.fabric.collectors,
            self.fabric.roa_registry,
        )
        self.telescope = ProactiveTelescope(
            "NT-A", self.nta_covering, self.speaker,
            registrar=self.fabric.registrar,
            acme=self.fabric.acme,
            hitlist=self.fabric.hitlist,
            reverse_zone=self.fabric.reverse_zone,
            rng=rng_telescope,
        )
        self.telescope.use_batch_react = cfg.use_batch_react
        self.fabric.register_oracle(self.telescope.responds)
        self.fabric.register_interaction(self.telescope.interaction_level)
        self.fabric.hitlist.add_candidate_source(self._announced_low_candidates)
        #: The ISP uses the first five /48s; their traffic is invisible.
        self.live_prefixes = [
            self.nta_covering.subnet_at(i, 48) for i in range(5)
        ]
        self._live_keys = {p.network for p in self.live_prefixes}
        #: The live /48s' hi-halves (/48 keys fit entirely in the upper
        #: uint64), for the vectorized ``np.isin`` exclusion.
        self._live_keys_hi = np.array(
            [p.network >> 64 for p in self.live_prefixes], dtype=np.uint64
        )

        # -- NT-B / NT-C: passive telescopes --------------------------------
        self.ntb_prefix = IPv6Prefix.parse(cfg.ntb_prefix)
        self.ntc_prefix = IPv6Prefix.parse(cfg.ntc_prefix)
        self.ntb = DarknetTelescope("NT-B", self.ntb_prefix)
        self.ntc = DarknetTelescope("NT-C", self.ntc_prefix)
        # The university assigned the top half (/33) of NT-C's /32.
        self.ntc.assign(self.ntc_prefix.subnet_at(1, 33))
        self.ntb_capturer = PacketCapturer("NT-B-capture")
        self.ntc_capturer = PacketCapturer("NT-C-capture")
        self.ntb.set_capture(self.ntb_capturer.capture,
                             self.ntb_capturer.capture_batch)
        self.ntc.set_capture(self.ntc_capturer.capture,
                             self.ntc_capturer.capture_batch)

        # -- scanner population ---------------------------------------------
        source_scale = cfg.source_scale
        if source_scale is None:
            source_scale = min(0.2, max(0.01, 400.0 * cfg.volume_scale))
        spec = PopulationSpec(
            volume_scale=cfg.volume_scale, n_tail=cfg.n_tail,
            source_scale=source_scale,
            **cfg.population_overrides,
        )
        self.agents = build_population(self.fabric, spec, rng_population)
        self._attach_ambient(rng_ambient)
        # The reverse-DNS walker needs to know which tree to walk: point it
        # at the telescope's covering /32 (where H_RDNS's PTRs will appear).
        from repro.scanners.strategies import RdnsWalkerStrategy

        for agent in self.agents:
            for strategy in agent.strategies:
                if isinstance(strategy, RdnsWalkerStrategy):
                    strategy.watched.append(self.nta_covering)

        # -- honeyprefix placement + schedule --------------------------------
        self.honeyprefixes: dict[str, Honeyprefix] = {}
        self._placement_rng = rng_placement
        self._placed: set[int] = set()
        self._schedule_deployments()
        self._schedule_hitlist_cycles()

        # Stable ground-truth agent ids: build order is deterministic under
        # a fixed seed, so enumeration order is too.  Assigned once the
        # population is final (ambient and local agents included).
        for i, agent in enumerate(self.agents):
            agent.agent_id = i

        self._last_poll = 0.0

    # -- hitlist candidate helper ------------------------------------------

    def _announced_low_candidates(self, since: float, until: float):
        """Hitlist candidate source: ::1 of newly announced prefixes.

        The real hitlist seeds from many public sources; newly routed
        prefixes' first addresses are among the classic candidates, and are
        how H_UDP's ::1 landed on the ICMP list without having a domain.
        """
        for prefix in self.fabric.collectors.new_prefixes(since, until):
            yield prefix.network | 1

    # -- ambient scanning of the passive telescopes ---------------------------

    def _attach_ambient(self, rng: np.random.Generator) -> None:
        """Give the long-lived NT-B/NT-C prefixes their background scanners.

        NT-C receives ~30% of all captured traffic, mostly from a
        Google-Cloud-style heavy pinger; NT-B's /48 sees a trickle.  The
        shared heavy hitters also probe both, producing the §5.1 finding
        that overlapping sources carry almost all traffic.
        """
        cfg = self.config
        scale = cfg.volume_scale
        cloud = CATEGORY_PROFILES[AsCategory.HOSTING_CLOUD]
        re_profile = CATEGORY_PROFILES[AsCategory.RESEARCH_EDUCATION]
        by_name = {a.identity.as_name: a for a in self.agents}

        # Google-Cloud-style: NT-C's dominant source.
        google_prefix = IPv6Prefix.parse("2600:1900::/28")
        google = ScannerAgent(
            ScannerIdentity(
                asn=396982, as_name="GOOGLE-CLOUD",
                category=AsCategory.HOSTING_CLOUD, country="US",
                source_prefix=google_prefix,
                allocation=AllocationMode.PER_SESSION,
            ),
            [
                AmbientScanner(self.ntc_prefix, cloud,
                               rate=600_000 * scale, low_weight=0.6),
                BgpWatcher(self.fabric.collectors, cloud,
                           min_collectors=10,
                           peak_rate=25_000 * scale,
                           floor_rate=2_000 * scale,
                           low_weight=0.9),
            ],
            rng=spawn_rngs(rng, 1)[0],
        )
        self.fabric.asdb.register(AsRecord(
            396982, "GOOGLE-CLOUD", AsCategory.HOSTING_CLOUD, "US"
        ))
        self.fabric.prefix2as.add(google_prefix, 396982)
        self.fabric.geodb.add(google_prefix, "US")
        self.agents.append(google)

        # Shared heavy hitters probe the passive telescopes too.
        ambient_plan = [
            ("AMAZON-02", self.ntc_prefix, 150_000 * scale, cloud, 0.6),
            ("AMAZON-AES", self.ntc_prefix, 8_000 * scale, cloud, 0.6),
            ("HURRICANE", self.ntc_prefix, 4_000 * scale, cloud, 0.6),
            ("SHADOWSERVER", self.ntc_prefix, 3_000 * scale,
             CATEGORY_PROFILES[AsCategory.INTERNET_SCANNER], 0.5),
            ("INTERNET-MEASUREMENT", self.ntc_prefix, 3_000 * scale,
             CATEGORY_PROFILES[AsCategory.INTERNET_SCANNER], 0.5),
            ("CNGI-CERNET", self.ntc_prefix, 120_000 * scale, re_profile, 0.05),
            ("ALPHASTRIKE-LABS", self.ntc_prefix, 6_000 * scale,
             CATEGORY_PROFILES[AsCategory.INTERNET_SCANNER], 0.4),
            ("AMAZON-02", self.ntb_prefix, 500 * scale, cloud, 0.6),
            ("ALPHASTRIKE-LABS", self.ntb_prefix, 250 * scale,
             CATEGORY_PROFILES[AsCategory.INTERNET_SCANNER], 0.4),
            ("CNGI-CERNET", self.ntb_prefix, 200 * scale, re_profile, 0.05),
        ]
        for name, prefix, rate, profile, low_weight in ambient_plan:
            agent = by_name.get(name)
            if agent is not None:
                agent.strategies.append(AmbientScanner(
                    prefix, profile, rate=rate, low_weight=low_weight,
                ))

        # A slice of NT-A's tail also probes NT-C at trickle rates, giving
        # the ~0.1-0.2 Jaccard overlap of §5.1.
        tail_agents = [a for a in self.agents
                       if a.identity.as_name.startswith("TAIL-AS")]
        for agent in tail_agents[:20]:
            agent.strategies.append(AmbientScanner(
                self.ntc_prefix,
                CATEGORY_PROFILES[agent.identity.category],
                rate=float(rng.uniform(100, 600)) * scale,
                low_weight=0.5,
            ))

        # Telescope-local tails: sources seen at only one telescope.
        for i in range(60):
            prefix = IPv6Prefix.parse("2a10::/13").subnet_at(i, 32)
            asn = 420_000 + i
            category = (AsCategory.HOSTING_CLOUD if i % 3 else
                        AsCategory.ISP_TELECOM)
            self.fabric.asdb.register(AsRecord(
                asn, f"NTC-LOCAL-AS{asn}", category, "US" if i % 2 else "CN"
            ))
            self.fabric.prefix2as.add(prefix, asn)
            self.fabric.geodb.add(prefix, "US" if i % 2 else "CN")
            self.agents.append(ScannerAgent(
                ScannerIdentity(
                    asn=asn, as_name=f"NTC-LOCAL-AS{asn}",
                    category=category, country="US" if i % 2 else "CN",
                    source_prefix=prefix,
                    allocation=AllocationMode.FIXED,
                ),
                [AmbientScanner(
                    self.ntc_prefix,
                    CATEGORY_PROFILES[category],
                    rate=float(rng.uniform(500, 4_000)) * scale,
                    low_weight=0.5,
                )],
                rng=spawn_rngs(rng, 1)[0],
            ))
        for i in range(12):
            prefix = IPv6Prefix.parse("2a05:4000::/22").subnet_at(i, 32)
            asn = 430_000 + i
            self.fabric.asdb.register(AsRecord(
                asn, f"NTB-LOCAL-AS{asn}", AsCategory.ISP_TELECOM, "IE"
            ))
            self.fabric.prefix2as.add(prefix, asn)
            self.fabric.geodb.add(prefix, "IE")
            self.agents.append(ScannerAgent(
                ScannerIdentity(
                    asn=asn, as_name=f"NTB-LOCAL-AS{asn}",
                    category=AsCategory.ISP_TELECOM, country="IE",
                    source_prefix=prefix,
                    allocation=AllocationMode.FIXED,
                ),
                [AmbientScanner(
                    self.ntb_prefix,
                    CATEGORY_PROFILES[AsCategory.ISP_TELECOM],
                    rate=float(rng.uniform(20, 120)) * scale,
                    low_weight=0.5,
                )],
                rng=spawn_rngs(rng, 1)[0],
            ))

        if self.config.include_sweeper:
            # The one wide scanner sweeping NT-A's covering /32 (Fig. 9).
            sweep_prefix = IPv6Prefix.parse("2001:678:aaa::/48")
            self.fabric.asdb.register(AsRecord(
                450_001, "WIDE-SWEEPER", AsCategory.INTERNET_SCANNER, "NL"
            ))
            self.fabric.prefix2as.add(sweep_prefix, 450_001)
            self.fabric.geodb.add(sweep_prefix, "NL")
            self.agents.append(ScannerAgent(
                ScannerIdentity(
                    asn=450_001, as_name="WIDE-SWEEPER",
                    category=AsCategory.INTERNET_SCANNER, country="NL",
                    source_prefix=sweep_prefix,
                    allocation=AllocationMode.FIXED,
                ),
                [CoveringSweeper(
                    self.nta_covering,
                    CATEGORY_PROFILES[AsCategory.INTERNET_SCANNER],
                    rate=37_000 * self.config.volume_scale,
                    low_bias=0.5,
                )],
                rng=spawn_rngs(rng, 1)[0],
            ))

    # -- honeyprefix placement -------------------------------------------------

    def _pick_slot(self) -> IPv6Prefix:
        """Pick a random unused /48 in the upper half of NT-A's /32."""
        while True:
            idx = int(self._placement_rng.integers(32_768, 65_536))
            if idx < 5 or idx in self._placed:
                continue
            self._placed.add(idx)
            return self.nta_covering.subnet_at(idx, 48)

    def _schedule_deployments(self) -> None:
        cfg = self.config
        configs = {c.name: c for c in standard_configs(cfg.include_rdns)}

        phase1 = ["H_Alias", "H_TCP", "H_UDP", "H_BGP1", "H_BGP2", "H_BGP3"]
        phase2 = ["H_Com", "H_Org/net", "H_Combined"]
        phase3 = ["H_TPot1", "H_TPot2"]
        if cfg.include_rdns:
            phase1.append("H_RDNS")

        def deploy_at(name: str, day: float) -> None:
            config = configs[name]
            at = day * DAY
            slot = self._pick_slot()

            def action(config=config, slot=slot, at=at, name=name):
                hp = self.telescope.deploy(config, slot, at=self.engine.now)
                self.honeyprefixes[name] = hp
                self._schedule_triggers(name, hp)

            self.engine.schedule(at, action, label=f"deploy {name}")

        for i, name in enumerate(phase1):
            deploy_at(name, cfg.phase1_day + 0.2 * i)
        for i, name in enumerate(phase2):
            deploy_at(name, cfg.phase2_day + 0.2 * i)
        for i, name in enumerate(phase3):
            deploy_at(name, cfg.phase3_day + 0.3 * i)
        for i, length in enumerate(range(49, 65)):
            deploy_at(f"H_Specific/{length}",
                      cfg.specific_start_day + 0.5 * i)

    def _schedule_triggers(self, name: str, hp: Honeyprefix) -> None:
        """Schedule the honeyprefix's later triggers per the paper's timing."""
        cfg = self.config
        horizon = cfg.duration_days * DAY
        deployed = hp.deployed_at

        def maybe(day_offset: float, action, label: str) -> None:
            at = deployed + day_offset * DAY
            if at < horizon:
                self.engine.schedule(at, action, label=label)

        if hp.config.tpot:
            maybe(cfg.tpot_hitlist_offset_days,
                  lambda hp=hp: self.telescope.insert_hitlist(
                      hp, self.engine.now),
                  f"hitlist {name}")
            maybe(cfg.tpot_tls_offset_days,
                  lambda hp=hp: self.telescope.issue_tls(hp, self.engine.now),
                  f"tls {name}")
        elif hp.config.tls_root:
            maybe(cfg.tls_offset_days,
                  lambda hp=hp: self.telescope.issue_tls(hp, self.engine.now),
                  f"tls {name}")
        if name == "H_UDP":
            maybe(cfg.udp_hitlist_offset_days,
                  lambda hp=hp: self.telescope.insert_hitlist(
                      hp, self.engine.now),
                  f"hitlist {name}")
        if name in ("H_BGP2", "H_BGP3"):
            maybe(cfg.withdraw_after_days,
                  lambda hp=hp: self._withdraw(hp),
                  f"withdraw {name}")

    def _withdraw(self, hp: Honeyprefix) -> None:
        """Retract a honeyprefix's announcement; scanners react in hours."""
        at = self.engine.now
        self.telescope.withdraw(hp, at)
        for agent in self.agents:
            reaction = at + float(
                self.rng.uniform(1 * HOUR, 8 * HOUR)
            )
            agent.cancel_prefix(hp.announced_prefix, reaction)
        # Hitlist compilers re-probe quickly and delist the dead space,
        # which stops hitlist-driven pinging of the prefix's addresses.
        self.engine.schedule_in(
            6 * HOUR,
            lambda: self.fabric.hitlist.run_cycle(self.engine.now),
            label="hitlist revalidation after withdrawal",
        )

    def _schedule_hitlist_cycles(self) -> None:
        cfg = self.config
        day = cfg.hitlist_first_cycle_day
        while day <= cfg.duration_days:
            self.engine.schedule(
                day * DAY,
                lambda: self.fabric.hitlist.run_cycle(self.engine.now),
                label="hitlist cycle",
            )
            day += cfg.hitlist_cycle_days

    # -- packet dispatch ---------------------------------------------------------

    def dispatch(self, pkt: Packet) -> None:
        """Route one scanner packet to whichever telescope owns it."""
        dst = pkt.dst
        if dst in self.nta_covering:
            if ((dst >> 80) << 80) in self._live_keys:
                self.counters.live_dropped += 1
            else:
                self.counters.nta += 1
                self.telescope.handle(pkt)
        elif dst in self.ntb_prefix:
            self.counters.ntb += 1
            self.ntb.handle(pkt)
        elif dst in self.ntc_prefix:
            self.counters.ntc += 1
            self.ntc.handle(pkt)
        else:
            self.counters.unrouted += 1

    def dispatch_batch(self, batch: PacketBatch) -> None:
        """Route a whole emission batch with vectorized range masks.

        The columnar counterpart of :meth:`dispatch`: telescope membership
        and the live-/48 exclusion are mask operations on ``dst_hi`` (every
        routed prefix here is /48 or shorter, so the low half never
        matters), and :class:`DispatchCounters` update from mask sums.
        """
        if len(batch) == 0:
            return
        with get_tracer().span("scenario.dispatch_batch",
                               packets=len(batch)):
            for handler, sub in self.dispatch_parts(batch):
                handler(sub)

    def dispatch_parts(
        self, batch: PacketBatch,
    ) -> list[tuple]:
        """Partition one batch into per-telescope sub-batches.

        Computes every membership mask over the shared ``dst_hi`` column,
        updates :class:`DispatchCounters` from the mask sums, and returns
        ``(handler, sub_batch)`` pairs in fixed NT-A, NT-B, NT-C order —
        the fan-out stage the day pipeline's dispatcher consumes.
        Counters are settled *here*, before any handler runs, so emitted
        accounting never depends on how (or on which thread) the parts
        are delivered.
        """
        nta = batch.mask_dst_in(self.nta_covering)
        shift = np.uint64(16)
        hi48 = (batch.dst_hi >> shift) << shift
        live = nta & np.isin(hi48, self._live_keys_hi)
        nta &= ~live
        ntb = batch.mask_dst_in(self.ntb_prefix)
        ntc = batch.mask_dst_in(self.ntc_prefix)
        self.counters.live_dropped += int(live.sum())
        self.counters.nta += int(nta.sum())
        self.counters.ntb += int(ntb.sum())
        self.counters.ntc += int(ntc.sum())
        self.counters.unrouted += int((~(nta | live | ntb | ntc)).sum())
        parts = []
        if nta.any():
            parts.append((self.telescope.handle_batch, batch.select(nta)))
        if ntb.any():
            parts.append((self.ntb.handle_batch, batch.select(ntb)))
        if ntc.any():
            parts.append((self.ntc.handle_batch, batch.select(ntc)))
        return parts

    # -- the daily loop -------------------------------------------------------------

    def begin_day(self, day: int) -> tuple[float, float]:
        """Advance the engine through day ``day``'s events.

        Returns the ``(day_start, day_end)`` window.  Every execution mode
        — serial, replay fast-forward, and each shard-worker replica —
        opens its day here, so all replicas process the identical event
        sequence (the no-op boundary tick included) and their
        ``engine.processed`` counts stay merge-comparable.
        """
        day_start = day * DAY
        day_end = (day + 1) * DAY
        # A no-op day-boundary tick: keeps the engine's event-loop profile
        # populated (and day boundaries visible in it) even on short runs
        # where no deployment or hitlist event fires.  Touches no RNG, so
        # determinism is unaffected.
        self.engine.schedule(day_end, lambda: None, label="day boundary")
        self.engine.run_until(day_end)
        return day_start, day_end

    def run_agent_day(self, agent: ScannerAgent, day_start: float,
                      day_end: float) -> int:
        """Poll, emit, and dispatch one agent's day; returns its emitted
        count.  Reads ``self._last_poll`` (advanced once per day, after
        every agent ran) so the poll window is identical no matter which
        process or shard drives the agent."""
        registry = get_registry()
        agent.poll_feeds(self._last_poll, day_end)
        if self.config.use_batch_path:
            with registry.timer("scenario.emit"):
                batch = agent.emit_day_batch(day_start, day_end)
            with registry.timer("scenario.dispatch"):
                self.dispatch_batch(batch)
            return len(batch)
        with registry.timer("scenario.emit"):
            packets = agent.emit_day(day_start, day_end)
        with registry.timer("scenario.dispatch"):
            for pkt in packets:
                self.dispatch(pkt)
        return len(packets)

    def run_day(self, day: int) -> int:
        """Simulate day ``day``; returns the number of packets dispatched."""
        span = get_tracer().span("scenario.run_day", day=day)
        with span:
            emitted = self._run_day_impl(day)
        span.set(emitted=emitted)
        get_journal().emit("day", day=day, emitted=emitted)
        return emitted

    def _run_day_impl(self, day: int) -> int:
        day_start, day_end = self.begin_day(day)
        emitted = 0
        for agent in self.agents:
            emitted += self.run_agent_day(agent, day_start, day_end)
        self._last_poll = day_end
        return emitted

    def replay_day(self, day: int, shard_index: int = 0,
                   shard_count: int = 1, agents: bool = True) -> None:
        """Fast-forward one day without emitting or dispatching packets.

        Runs the engine exactly as :meth:`run_day` does, then replays the
        selected agents' polls and per-day plan draws
        (:meth:`~repro.scanners.agent.ScannerAgent.replay_day`), leaving
        every RNG stream, session list, and engine structure in the state
        a real run of this day would have left them — the checkpoint
        resume path.  Shard workers replay only their own agents
        (``agent_index % shard_count == shard_index``); the merging
        parent, which never polls, passes ``agents=False`` to advance the
        engine alone.  Callers suppress the journal around replay
        (``use_journal(None)``): every record this day would emit is
        already carried by the checkpoint.
        """
        day_start, day_end = self.begin_day(day)
        if agents:
            for idx in range(shard_index, len(self.agents), shard_count):
                agent = self.agents[idx]
                agent.poll_feeds(self._last_poll, day_end)
                agent.replay_day(day_start, day_end)
        self._last_poll = day_end

    def run(self, progress: bool = False) -> None:
        """Run the whole configured window."""
        for day in range(self.config.duration_days):
            n = self.run_day(day)
            if progress and day % 10 == 0:
                print(f"day {day}: {n} packets "
                      f"(NT-A {self.counters.nta}, NT-C {self.counters.ntc})")
