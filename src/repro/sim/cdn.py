"""The CDN vantage point (§1, Appendix C: Figs 1, 2, 13; Table 6).

The paper motivates the study with two years of unsolicited IPv6 traffic
captured at a large CDN (230k machines): weekly scan sources more than
doubled, weekly scan packets grew 100x, and traffic went from dominated by
one or two sources to broadly dispersed.

``CdnVantage`` is a generative model of that two-year window: a roster of
scanning ASes (the Table 6 archetypes plus a steadily arriving long tail)
emits weekly scan events whose aggregate series reproduce those growth
shapes.  ``sample_packets`` can additionally materialize packet records for
any week, so the scan-detection pipeline can be exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import WEEK, make_rng
from repro.analysis.records import PacketRecords
from repro.net.addr import IPv6Prefix

#: Table 6 archetypes: (name, type, country, share of total packets,
#: /48s, /64s, /128s used over the window).
TABLE6_ARCHETYPES = (
    ("TRANSIT-GLOBAL", "transit", "US", 0.176, 1, 3, 2745),
    ("DATACENTER-CN-1", "datacenter", "CN", 0.154, 10, 12, 45),
    ("CYBERSEC-US-1", "cybersecurity", "US", 0.141, 7, 7, 367),
    ("DATACENTER-US", "datacenter", "US", 0.120, 1, 1, 11),
    ("CLOUD-CN-1", "cloud", "CN", 0.098, 15, 17, 310),
    ("CLOUD-CN-2", "cloud", "CN", 0.091, 6, 7, 36),
    ("DATACENTER-CN-2", "datacenter", "CN", 0.065, 2, 2, 11),
    ("CLOUD-GLOBAL-1", "cloud", "US", 0.034, 35, 43, 3312),
    ("CLOUD-GLOBAL-2", "cloud", "US", 0.031, 4, 4, 53),
    ("DATACENTER-CN-3", "datacenter", "CN", 0.023, 1, 1, 4),
    ("CLOUD-GLOBAL-3", "cloud", "US", 0.020, 12, 12, 2277),
    ("CLOUD-GLOBAL-4", "cloud", "US", 0.015, 12, 19, 4475),
    ("CLOUD-GLOBAL-5", "cloud", "US", 0.014, 22, 22, 41),
    ("CLOUD-GLOBAL-6", "cloud", "US", 0.009, 7, 7, 21),
    ("CYBERSEC-US-2", "cybersecurity", "US", 0.003, 2, 2, 198),
    ("DATACENTER-CN-4", "datacenter", "CN", 0.002, 32, 138, 142),
    ("CLOUD-US", "cloud", "US", 0.001, 1, 1, 2),
    ("UNIVERSITY-CN", "university", "CN", 0.001, 1, 2, 2),
    ("DATACENTER-CA", "datacenter", "CA", 0.0005, 1, 1, 1),
    ("RESEARCH-DE", "research", "DE", 0.0005, 1, 1, 1),
)


@dataclass(frozen=True)
class CdnScannerSpec:
    """One scanning AS at the CDN."""

    asn: int
    name: str
    as_type: str
    country: str
    share: float
    arrival_week: int
    n_48: int
    n_64: int
    n_128: int
    source_prefix: IPv6Prefix
    #: Early-window concentration: >1 front-loads this AS's traffic.
    early_bias: float = 1.0


@dataclass(frozen=True)
class CdnScanEvent:
    """One weekly scan summary: an AS's activity in one week."""

    week: int
    asn: int
    packets: float
    sources_128: int
    sources_64: int
    sources_48: int
    targets: int


class CdnVantage:
    """Two-year CDN capture model."""

    def __init__(
        self,
        rng: np.random.Generator | int | None = 0,
        n_weeks: int = 104,
        base_weekly_packets: float = 20e6,
        final_weekly_packets: float = 1e9,
        volume_scale: float = 1.0,
        tail_arrival_rate0: float = 0.9,
        tail_arrival_growth: float = 0.006,
    ):
        self._rng = make_rng(rng)
        self.n_weeks = n_weeks
        self.volume_scale = volume_scale
        self.base_weekly = base_weekly_packets
        self.growth = (final_weekly_packets / base_weekly_packets) ** (
            1.0 / max(n_weeks - 1, 1)
        )
        self.tail_arrival_rate0 = tail_arrival_rate0
        self.tail_arrival_growth = tail_arrival_growth
        self.specs = self._build_specs()
        self._events: list[CdnScanEvent] | None = None

    # -- roster ----------------------------------------------------------

    def _build_specs(self) -> list[CdnScannerSpec]:
        specs = []
        base = IPv6Prefix.parse("2a00::/11")
        for i, (name, as_type, country, share, n48, n64, n128) in enumerate(
            TABLE6_ARCHETYPES
        ):
            # The top-10 are present from week 0, the biggest heavily
            # front-loaded — the early-2022 dominance of Fig. 2; the rest
            # arrive over the first ~7 months.
            arrival = 0 if i < 10 else int(self._rng.integers(0, 30))
            early_bias = (8.0, 3.0, 2.0)[i] if i < 3 else 1.0
            specs.append(CdnScannerSpec(
                asn=100_000 + i, name=name, as_type=as_type, country=country,
                share=share, arrival_week=arrival,
                n_48=n48, n_64=n64, n_128=n128,
                source_prefix=base.subnet_at(i, 32),
                early_bias=early_bias,
            ))
        # Long tail: small ASes arriving throughout at a growing rate.
        week = 0
        idx = len(TABLE6_ARCHETYPES)
        while week < self.n_weeks:
            rate = self.tail_arrival_rate0 + self.tail_arrival_growth * week
            for _ in range(int(self._rng.poisson(rate))):
                n64 = int(self._rng.integers(1, 4))
                specs.append(CdnScannerSpec(
                    asn=100_000 + idx,
                    name=f"CDN-TAIL-AS{100_000 + idx}",
                    as_type="cloud" if idx % 2 else "datacenter",
                    country=("US", "CN", "DE", "NL", "GB")[idx % 5],
                    share=float(self._rng.uniform(1e-5, 4e-4)),
                    arrival_week=week,
                    n_48=max(1, n64 - 1), n_64=n64,
                    n_128=int(self._rng.integers(1, 40)),
                    source_prefix=base.subnet_at(idx, 32),
                ))
                idx += 1
            week += 1
        return specs

    # -- weekly events -------------------------------------------------------

    def _weekly_weight(self, spec: CdnScannerSpec, week: int) -> float:
        """Relative packet weight of one AS in one week."""
        if week < spec.arrival_week:
            return 0.0
        # Front-loaded specs decay toward weight 1; tails ramp up.
        age = week - spec.arrival_week
        bias = 1.0 + (spec.early_bias - 1.0) * np.exp(-age / 30.0)
        ramp = 1.0 - np.exp(-(age + 1) / 8.0)
        return spec.share * bias * ramp

    def events(self) -> list[CdnScanEvent]:
        """Generate (and cache) all weekly scan events."""
        if self._events is not None:
            return self._events
        events = []
        for week in range(self.n_weeks):
            total = self.base_weekly * self.growth ** week * self.volume_scale
            weights = np.array([
                self._weekly_weight(spec, week) for spec in self.specs
            ])
            weight_sum = weights.sum()
            if weight_sum <= 0:
                continue
            for spec, weight in zip(self.specs, weights):
                if weight <= 0:
                    continue
                packets = total * weight / weight_sum * float(
                    self._rng.lognormal(0.0, 0.25)
                )
                if packets < 1:
                    continue
                # Source-address usage grows with the window, doubling the
                # /128 count over two years (Fig. 1).
                growth_frac = 0.5 + 0.5 * week / max(self.n_weeks - 1, 1)
                n128 = max(1, int(spec.n_128 * growth_frac
                                  * self._rng.uniform(0.6, 1.0) / 10))
                n64 = max(1, int(spec.n_64 * growth_frac))
                n48 = max(1, min(spec.n_48, n64))
                events.append(CdnScanEvent(
                    week=week, asn=spec.asn, packets=packets,
                    sources_128=n128, sources_64=n64, sources_48=n48,
                    targets=int(min(packets, 100 + packets * 0.2)),
                ))
        self._events = events
        return events

    # -- aggregate series (the figures) -----------------------------------------

    def weekly_packets(self) -> tuple[np.ndarray, np.ndarray]:
        """(total weekly packets, weekly packets of the top source) — Fig 2."""
        totals = np.zeros(self.n_weeks)
        top = np.zeros(self.n_weeks)
        for event in self.events():
            totals[event.week] += event.packets
            top[event.week] = max(top[event.week], event.packets)
        return totals, top

    def weekly_sources(self, prefix_length: int = 64) -> np.ndarray:
        """Weekly count of distinct scan sources at an aggregation — Fig 1."""
        field_name = {128: "sources_128", 64: "sources_64",
                      48: "sources_48"}[prefix_length]
        out = np.zeros(self.n_weeks)
        for event in self.events():
            out[event.week] += getattr(event, field_name)
        return out

    def weekly_ases(self) -> np.ndarray:
        """Weekly count of distinct scanning ASes — Fig 13."""
        per_week: list[set[int]] = [set() for _ in range(self.n_weeks)]
        for event in self.events():
            per_week[event.week].add(event.asn)
        return np.array([len(s) for s in per_week], dtype=np.float64)

    def top_as_table(self, n: int = 20) -> list[dict]:
        """Table 6: top ASes by total packets with their source footprints."""
        per_as: dict[int, dict] = {}
        for event in self.events():
            row = per_as.setdefault(event.asn, {
                "asn": event.asn, "packets": 0.0,
                "n_48": 0, "n_64": 0, "n_128": 0,
            })
            row["packets"] += event.packets
            row["n_48"] = max(row["n_48"], event.sources_48)
            row["n_64"] = max(row["n_64"], event.sources_64)
            row["n_128"] = max(row["n_128"], event.sources_128)
        by_asn = {spec.asn: spec for spec in self.specs}
        total = sum(r["packets"] for r in per_as.values())
        rows = sorted(per_as.values(), key=lambda r: -r["packets"])[:n]
        for row in rows:
            spec = by_asn[row["asn"]]
            row["name"] = spec.name
            row["as_type"] = spec.as_type
            row["country"] = spec.country
            row["share"] = row["packets"] / total if total else 0.0
        return rows

    # -- packet materialization ---------------------------------------------------

    def sample_packets(self, week: int,
                       max_packets: int = 200_000) -> PacketRecords:
        """Materialize one week's events as packet records.

        Lets integration tests run the real scan-detection pipeline over
        CDN-shaped traffic.  Packet counts are capped; per-event volumes are
        scaled down proportionally when the cap binds.
        """
        events = [e for e in self.events() if e.week == week]
        total = sum(e.packets for e in events)
        scale = min(1.0, max_packets / total) if total else 1.0
        cdn_space = IPv6Prefix.parse("2600:9000::/28")
        cols: tuple[list, ...] = ([], [], [], [], [], [], [], [])
        by_asn = {spec.asn: spec for spec in self.specs}
        week_start = week * WEEK
        for event in events:
            spec = by_asn[event.asn]
            n = max(1, int(event.packets * scale))
            sources = [
                spec.source_prefix.random_address(self._rng).value
                for _ in range(min(event.sources_128, 64))
            ]
            for _ in range(n):
                ts = week_start + float(self._rng.uniform(0, WEEK))
                src = sources[int(self._rng.integers(len(sources)))]
                dst = cdn_space.random_address(self._rng).value
                cols[0].append(ts)
                cols[1].append((src >> 64) & 0xFFFFFFFFFFFFFFFF)
                cols[2].append(src & 0xFFFFFFFFFFFFFFFF)
                cols[3].append((dst >> 64) & 0xFFFFFFFFFFFFFFFF)
                cols[4].append(dst & 0xFFFFFFFFFFFFFFFF)
                cols[5].append(58)
                cols[6].append(128)
                cols[7].append(0)
        return PacketRecords.from_columns(*cols)
