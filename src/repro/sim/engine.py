"""Discrete-event engine.

A classic heap scheduler: events carry a firing time and a callback.  The
scenario layer schedules deployment actions (BGP announcements, TLS
issuance, hitlist insertion, withdrawals) and the daily simulation loop as
events; running the engine advances the clock monotonically.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.obs import MetricsRegistry, get_registry, get_tracer


@dataclass(order=True)
class Event:
    """One scheduled event.  Ordering is (time, sequence)."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class Engine:
    """Heap-based discrete-event scheduler."""

    def __init__(self, start_time: float = 0.0,
                 metrics: MetricsRegistry | None = None):
        self.now = start_time
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.processed = 0
        self._metrics = metrics if metrics is not None else get_registry()
        self._event_counter = self._metrics.counter("engine.events")
        #: Event-loop profile: label -> [count, wall-clock seconds].  Only
        #: populated when metrics are enabled — timing every callback costs
        #: two clock reads per event.
        self.profile: dict[str, list] = {}

    def schedule(self, time: float, action: Callable[[], None],
                 label: str = "") -> Event:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        event = Event(time=time, seq=next(self._seq), action=action,
                      label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, action: Callable[[], None],
                    label: str = "") -> Event:
        """Schedule ``action`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative: {delay}")
        return self.schedule(self.now + delay, action, label)

    def peek_time(self) -> float | None:
        """The next event's time, or None when the queue is empty."""
        return self._queue[0].time if self._queue else None

    def step(self) -> Event | None:
        """Run the next event; returns it (or None when done)."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self.now = event.time
        if self._metrics.enabled:
            start = perf_counter()
            event.action()
            elapsed = perf_counter() - start
            self._event_counter.inc()
            label = event.label or "(unlabeled)"
            self._metrics.counter(f"engine.events.{label}").inc()
            self._metrics.timing(f"engine.event.{label}").observe(elapsed)
            stats = self.profile.get(label)
            if stats is None:
                stats = self.profile[label] = [0, 0.0]
            stats[0] += 1
            stats[1] += elapsed
        else:
            event.action()
        self.processed += 1
        return event

    def run_until(self, end_time: float) -> int:
        """Run all events with time <= end_time; returns the count run."""
        span = get_tracer().span("engine.run_until", until=end_time)
        with span:
            n = 0
            while self._queue and self._queue[0].time <= end_time:
                self.step()
                n += 1
            self.now = max(self.now, end_time)
        span.set(events=n)
        return n

    def run(self) -> int:
        """Run to queue exhaustion; returns the count run."""
        n = 0
        while self.step() is not None:
            n += 1
        return n
