"""Threaded day pipelining: emit day N+1 while day N's packets dispatch.

:class:`DispatchPipeline` splits :meth:`PaperScenario.run_day` into a
producer (the calling thread: engine advance, feed polls, emission) and a
dispatcher thread (range-mask routing, per-telescope fan-out via
``dispatch_parts``, capture).  The split is safe because the two halves
share no randomness and no mutable state:

* dispatch consumes **no RNG** — every draw happens at emission time;
* polls and emission read fabric/collector/honeyprefix state that
  dispatch never mutates; dispatch writes capturers, dispatch counters,
  and honeypot tallies that polls and emission never read;
* capture order equals submission order (a FIFO queue), which equals the
  serial per-agent order, so records are byte-identical;
* the journal is written only from the producer thread — dispatch emits
  no records — so journal bytes are byte-identical too.

The one ordering hazard is the engine: its events (deployments, hitlist
cycles, withdrawals) *do* mutate the structures dispatch reads.  The
pipeline therefore drains the dispatcher before advancing the engine into
any day with a real pending event; on event-less days (the common case)
the only event is the no-op boundary tick, and emission of the next day
overlaps dispatch of the previous one.

Pipelining is a serial-mode (``jobs=1``) optimization.  When the metrics
registry is enabled the dispatcher's timer updates race the producer's
only on distinct metric names, so totals stay exact; trace spans from the
dispatcher thread interleave, which is why ``--trace`` output is best
read from serial runs.
"""

from __future__ import annotations

import queue
import threading

from repro._util import DAY
from repro.obs import get_journal, get_registry, get_tracer

#: Sentinel telling the dispatcher thread to exit.
_STOP = object()


class DispatchPipeline:
    """Producer/consumer wrapper around one scenario's day loop."""

    def __init__(self, scenario, max_pending: int = 8):
        if not scenario.config.use_batch_path:
            raise ValueError(
                "day pipelining requires the columnar batch path "
                "(ScenarioConfig.use_batch_path=True)"
            )
        self.scenario = scenario
        self._queue: queue.Queue = queue.Queue(maxsize=max_pending)
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="dispatch-pipeline", daemon=True
        )
        self._thread.start()

    # -- dispatcher thread ---------------------------------------------

    def _dispatch_loop(self) -> None:
        registry = get_registry()
        while True:
            batch = self._queue.get()
            try:
                if batch is _STOP:
                    return
                if self._error is None:
                    with registry.timer("scenario.dispatch"):
                        self.scenario.dispatch_batch(batch)
            except BaseException as error:  # propagate via the producer
                self._error = error
            finally:
                self._queue.task_done()

    def _check_error(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    # -- producer side ---------------------------------------------------

    def run_day(self, day: int) -> int:
        """Pipelined equivalent of :meth:`PaperScenario.run_day`."""
        scenario = self.scenario
        registry = get_registry()
        day_end = (day + 1) * DAY
        next_event = scenario.engine.peek_time()
        if next_event is not None and next_event <= day_end:
            # A real event will mutate telescope/fabric state dispatch
            # reads; finish the previous day's dispatch first.
            self.drain()
        span = get_tracer().span("scenario.run_day", day=day)
        with span:
            day_start, day_end = scenario.begin_day(day)
            emitted = 0
            for agent in scenario.agents:
                agent.poll_feeds(scenario._last_poll, day_end)
                with registry.timer("scenario.emit"):
                    batch = agent.emit_day_batch(day_start, day_end)
                emitted += len(batch)
                if len(batch):
                    self._check_error()
                    self._queue.put(batch)
            scenario._last_poll = day_end
        span.set(emitted=emitted)
        # Emitted counts never depend on dispatch, and dispatch writes no
        # journal records, so the day record can (and must, to keep the
        # serial line order) be written before dispatch finishes.
        get_journal().emit("day", day=day, emitted=emitted)
        return emitted

    def drain(self) -> None:
        """Block until every submitted batch has been dispatched (the
        barrier before engine events, checkpoints, and freezing)."""
        self._queue.join()
        self._check_error()

    def close(self) -> None:
        """Drain, stop the dispatcher thread, and re-raise any error."""
        if self._thread.is_alive():
            self._queue.join()
            self._queue.put(_STOP)
            self._thread.join()
        self._check_error()

    def __enter__(self) -> "DispatchPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
