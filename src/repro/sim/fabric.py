"""The Internet fabric: every public substrate wired together.

One object owning the observable Internet the scanners watch and the
telescope publishes into: route collectors + RPKI, the DNS hierarchy with
TLD registries and a shared resolver, CT logs behind an ACME CA, the public
hitlist service, the reverse-DNS tree, and the metadata datasets
(prefix2as / ASdb / geolocation) that the analysis pipeline joins against.
"""

from __future__ import annotations

import numpy as np

from repro._util import DAY, make_rng, spawn_rngs
from repro.datasets.asdb import AsDatabase
from repro.datasets.geodb import GeoDatabase
from repro.datasets.prefix2as import Prefix2As
from repro.dns.registry import Registrar, TldRegistry
from repro.dns.resolver import Resolver
from repro.dns.reverse import ReverseZone
from repro.hitlist.prober import CallableOracle, Prober
from repro.hitlist.service import HitlistService
from repro.routing.collectors import CollectorSystem
from repro.routing.rpki import RoaRegistry
from repro.tlsca.acme import AcmeClient
from repro.tlsca.ca import CertificateAuthority
from repro.tlsca.ctlog import CtLog

#: TLDs the registrar serves (the paper bought .com/.net/.org names).
DEFAULT_TLDS = ("com", "net", "org")


class InternetFabric:
    """All public substrates, constructed and wired in one place."""

    def __init__(
        self,
        rng: np.random.Generator | int | None = 0,
        tlds: tuple[str, ...] = DEFAULT_TLDS,
        hitlist_cycle: float = 14 * DAY,
    ):
        root = make_rng(rng)
        (rng_collectors, rng_prober, self.rng_population,
         self.rng_agents) = spawn_rngs(root, 4)

        # Routing.
        self.roa_registry = RoaRegistry()
        self.collectors = CollectorSystem(
            rng=rng_collectors, roa_registry=self.roa_registry
        )

        # DNS.
        self.registrar = Registrar()
        for tld in tlds:
            self.registrar.add_tld(TldRegistry(tld))
        self.reverse_zone = ReverseZone()
        self.resolver = Resolver([self.registrar], self.reverse_zone)

        # TLS / CT.
        self.ct_log = CtLog()
        self.ca = CertificateAuthority(ct_logs=[self.ct_log])
        self.acme = AcmeClient(self.ca, self.registrar, self.resolver)

        # Hitlist: its oracle is bound later, once telescopes exist.
        self._oracles = []
        self._interaction_fns = []
        self.prober = Prober(
            CallableOracle(self._dispatch_oracle), rng=rng_prober
        )
        self.hitlist = HitlistService(self.prober, cycle_period=hitlist_cycle)
        self.hitlist.add_candidate_source(self._zone_candidates)
        self.hitlist.add_candidate_source(self._ct_candidates)
        self.hitlist.add_prefix_source(self._announced_prefixes)

        # Metadata datasets.
        self.prefix2as = Prefix2As()
        self.asdb = AsDatabase(rng=self.rng_population)
        self.geodb = GeoDatabase()

    # -- oracle plumbing -----------------------------------------------------

    def register_oracle(self, oracle) -> None:
        """Register a responsiveness oracle (a telescope's ``responds``)."""
        self._oracles.append(oracle)

    def register_interaction(self, fn) -> None:
        """Register an interaction-level oracle (a telescope's
        ``interaction_level``)."""
        self._interaction_fns.append(fn)

    def interaction_level(self, address: int, at: float) -> int:
        """Max interaction level any telescope reports for ``address``."""
        level = 0
        for fn in self._interaction_fns:
            level = max(level, fn(address, at))
            if level >= 2:
                break
        return level

    def _dispatch_oracle(self, address: int, proto: int, port: int | None,
                         at: float) -> bool:
        return any(oracle(address, proto, port, at) for oracle in self._oracles)

    # -- hitlist candidate sources ---------------------------------------------

    def _zone_candidates(self, since: float, until: float):
        """AAAA targets of newly published domains (all TLDs).

        TLD zone files expose only the registered names themselves, so only
        the root AAAA is a candidate here — subdomains surface exclusively
        through CT (the paper's "s always came with S" finding depends on
        this asymmetry).
        """
        for tld in self.registrar.tlds:
            for domain, published in self.registrar.tld(tld).new_domains(
                since, until
            ).items():
                for addr in self.resolver.resolve_aaaa(domain, at=until):
                    yield addr

    def _ct_candidates(self, since: float, until: float):
        """AAAA targets of names newly appearing in CT logs."""
        for name, logged_at in self.ct_log.names_between(since, until).items():
            for addr in self.resolver.resolve_aaaa(name, at=logged_at):
                yield addr

    def _announced_prefixes(self, since: float, until: float):
        """Newly announced prefixes (alias-detection candidates)."""
        return list(self.collectors.new_prefixes(since, until))
