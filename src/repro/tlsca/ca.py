"""The certificate authority (Let's Encrypt stand-in).

Issues certificates only for proven names (the ACME client performs the
DNS-01 proof), submits every issued certificate to the configured CT logs,
and enforces the "certificates per registered domain per week" rate limit
that capped the paper's subdomain-certificate experiment at 50 names.
"""

from __future__ import annotations

from repro._util import WEEK
from repro.dns.records import validate_name
from repro.tlsca.cert import Certificate, DEFAULT_VALIDITY
from repro.tlsca.ctlog import CtLog


class RateLimitExceeded(Exception):
    """Raised when issuance would exceed the per-domain weekly limit."""


def registered_domain(name: str) -> str:
    """Return the eTLD+1 for ``name`` (two-label heuristic, like the paper's
    .com/.net/.org domains)."""
    labels = validate_name(name).split(".")
    if len(labels) < 2:
        raise ValueError(f"{name!r} has no registered domain")
    return ".".join(labels[-2:])


class CertificateAuthority:
    """Issues certificates and logs them to CT."""

    def __init__(
        self,
        name: str = "lets-encrypt",
        ct_logs: list[CtLog] | None = None,
        weekly_limit: int = 50,
        validity: float = DEFAULT_VALIDITY,
    ):
        self.name = name
        self.ct_logs = list(ct_logs or [])
        self.weekly_limit = weekly_limit
        self.validity = validity
        self._issued: list[Certificate] = []
        self._next_serial = 1

    def issued(self) -> tuple[Certificate, ...]:
        return tuple(self._issued)

    def _weekly_count(self, domain: str, at: float) -> int:
        window_start = at - WEEK
        return sum(
            1
            for cert in self._issued
            if cert.not_before > window_start
            and registered_domain(cert.subject) == domain
        )

    def issue(self, names: list[str], at: float) -> Certificate:
        """Issue a certificate for already-validated ``names``.

        Rate limiting follows Let's Encrypt: at most ``weekly_limit``
        certificates per registered domain per rolling week.  All names on
        one certificate must share a registered domain (how the telescope's
        certbot plugin batches requests).
        """
        if not names:
            raise ValueError("cannot issue a certificate for zero names")
        domains = {registered_domain(n) for n in names}
        if len(domains) != 1:
            raise ValueError(
                f"all names must share one registered domain, got {sorted(domains)}"
            )
        domain = domains.pop()
        if self._weekly_count(domain, at) >= self.weekly_limit:
            raise RateLimitExceeded(
                f"{self.weekly_limit} certificates already issued for "
                f"{domain} in the past week"
            )
        cert = Certificate(
            serial=self._next_serial,
            names=tuple(names),
            issuer=self.name,
            not_before=at,
            not_after=at + self.validity,
        )
        self._next_serial += 1
        self._issued.append(cert)
        for log in self.ct_logs:
            log.submit(cert, at)
        return cert
