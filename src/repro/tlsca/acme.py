"""ACME client with the DNS-01 challenge flow.

The paper could not use HTTP-01 (the honeypots are not real web servers), so
it used DNS-01 via a customized certbot plugin that drives the registrar's
API to insert the required ``_acme-challenge`` TXT records.  This module
models that flow end to end: order -> challenge token -> TXT insertion ->
CA validation (resolving through the simulated DNS) -> issuance -> cleanup.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.dns.records import RRType, validate_name
from repro.dns.registry import Registrar
from repro.dns.resolver import Resolver
from repro.tlsca.ca import CertificateAuthority
from repro.tlsca.cert import Certificate


class ChallengeFailed(Exception):
    """Raised when DNS-01 validation does not find the expected TXT record."""


@dataclass
class AcmeOrder:
    """An in-flight ACME order for a set of names."""

    names: list[str]
    created_at: float
    tokens: dict[str, str] = field(default_factory=dict)
    certificate: Certificate | None = None

    @property
    def fulfilled(self) -> bool:
        return self.certificate is not None


def _challenge_token(name: str, serial: int) -> str:
    """Deterministic per-order token (real ACME tokens are random nonces)."""
    return hashlib.sha256(f"{name}:{serial}".encode()).hexdigest()[:32]


class AcmeClient:
    """Drives DNS-01 issuance against a CA using the registrar's DNS API."""

    def __init__(
        self,
        ca: CertificateAuthority,
        registrar: Registrar,
        resolver: Resolver,
        validation_delay: float = 5.0,
    ):
        self.ca = ca
        self.registrar = registrar
        self.resolver = resolver
        self.validation_delay = validation_delay
        self._order_serial = 0
        self.orders: list[AcmeOrder] = []

    def new_order(self, names: list[str], at: float) -> AcmeOrder:
        """Create an order and its per-name challenge tokens."""
        names = [validate_name(n) for n in names]
        if not names:
            raise ValueError("order must cover at least one name")
        self._order_serial += 1
        order = AcmeOrder(names=names, created_at=at)
        for name in names:
            order.tokens[name] = _challenge_token(name, self._order_serial)
        self.orders.append(order)
        return order

    def install_challenges(self, order: AcmeOrder, at: float) -> None:
        """Insert the ``_acme-challenge`` TXT records via the registrar API."""
        for name, token in order.tokens.items():
            self.registrar.set_txt(f"_acme-challenge.{name}", token, at=at)

    def validate_and_issue(self, order: AcmeOrder, at: float) -> Certificate:
        """CA-side validation: resolve each TXT record, then issue.

        Raises :class:`ChallengeFailed` when any name's TXT record is absent
        or carries the wrong token, and cleans challenges up afterwards in
        either case.
        """
        try:
            for name, token in order.tokens.items():
                records = self.resolver.resolve(
                    f"_acme-challenge.{name}", RRType.TXT, at
                )
                if not any(r.value == token for r in records):
                    raise ChallengeFailed(
                        f"DNS-01 validation failed for {name!r} at t={at}"
                    )
            order.certificate = self.ca.issue(order.names, at)
            return order.certificate
        finally:
            for name in order.tokens:
                try:
                    self.registrar.remove_txt(f"_acme-challenge.{name}")
                except KeyError:
                    pass

    def obtain(self, names: list[str], at: float) -> Certificate:
        """One-shot convenience: order, install TXT, validate, issue.

        Validation happens ``validation_delay`` seconds after the order is
        placed (TXT propagation plus CA processing).
        """
        order = self.new_order(names, at)
        self.install_challenges(order, at)
        return self.validate_and_issue(order, at + self.validation_delay)
