"""TLS certificate substrate: ACME DNS-01 issuance, the CA, and CT logs.

The telescope's third attraction channel: TLS certificates issued for
domain/subdomain names land in public Certificate Transparency logs within
seconds, and CT-watching scanners (Kondracki et al.'s "CT bots") resolve
the SAN names and probe the addresses.  The paper observed the first scanner
7 seconds after issuance.  Let's Encrypt's weekly rate limit — the reason
only 50 subdomains got certificates — is modeled on the CA.
"""

from repro.tlsca.cert import Certificate
from repro.tlsca.ctlog import CtLog, CtEntry
from repro.tlsca.ca import CertificateAuthority, RateLimitExceeded
from repro.tlsca.acme import AcmeClient, AcmeOrder, ChallengeFailed

__all__ = [
    "Certificate",
    "CtLog",
    "CtEntry",
    "CertificateAuthority",
    "RateLimitExceeded",
    "AcmeClient",
    "AcmeOrder",
    "ChallengeFailed",
]
