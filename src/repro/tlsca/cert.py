"""Certificate objects."""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import DAY
from repro.dns.records import validate_name

#: Let's Encrypt certificates are valid for 90 days.
DEFAULT_VALIDITY = 90 * DAY


@dataclass(frozen=True, slots=True)
class Certificate:
    """A leaf certificate: subject names, issuer, validity window."""

    serial: int
    names: tuple[str, ...]
    issuer: str
    not_before: float
    not_after: float

    def __post_init__(self) -> None:
        if not self.names:
            raise ValueError("certificate must cover at least one name")
        object.__setattr__(
            self, "names", tuple(validate_name(n) for n in self.names)
        )
        if self.not_after <= self.not_before:
            raise ValueError("certificate validity window is empty")

    @property
    def subject(self) -> str:
        """The primary subject name (first SAN)."""
        return self.names[0]

    def valid_at(self, at: float) -> bool:
        return self.not_before <= at < self.not_after

    def covers(self, name: str) -> bool:
        return validate_name(name) in self.names
