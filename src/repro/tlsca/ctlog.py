"""Certificate Transparency logs.

Append-only, timestamped, and publicly pollable — the properties CT-bot
scanners rely on.  Entries become visible essentially immediately (the
merge delay is seconds), which is why the paper saw a DigitalOcean scanner
arrive 7 seconds after issuance.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.tlsca.cert import Certificate


@dataclass(frozen=True, slots=True)
class CtEntry:
    """One log entry: the certificate and its log-inclusion timestamp."""

    index: int
    certificate: Certificate
    logged_at: float


class CtLog:
    """An append-only CT log with time-windowed polling."""

    def __init__(self, name: str = "ct-log", merge_delay: float = 1.0):
        self.name = name
        self.merge_delay = merge_delay
        self._entries: list[CtEntry] = []
        self._times: list[float] = []

    def __len__(self) -> int:
        return len(self._entries)

    def submit(self, certificate: Certificate, at: float) -> CtEntry:
        """Append a certificate; it becomes visible after the merge delay."""
        logged_at = at + self.merge_delay
        if self._times and logged_at < self._times[-1]:
            raise ValueError("CT log submissions must be time-ordered")
        entry = CtEntry(len(self._entries), certificate, logged_at)
        self._entries.append(entry)
        self._times.append(logged_at)
        return entry

    def entries_between(self, since: float, until: float) -> list[CtEntry]:
        """Entries with ``since < logged_at <= until`` (poll semantics)."""
        lo = bisect.bisect_right(self._times, since)
        hi = bisect.bisect_right(self._times, until)
        return self._entries[lo:hi]

    def entries(self) -> tuple[CtEntry, ...]:
        return tuple(self._entries)

    def names_between(self, since: float, until: float) -> dict[str, float]:
        """New SAN names in the window -> first visibility time."""
        out: dict[str, float] = {}
        for entry in self.entries_between(since, until):
            for name in entry.certificate.names:
                out.setdefault(name, entry.logged_at)
        return out
