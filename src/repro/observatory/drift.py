"""Drift and changepoint summaries over the observatory's per-day series.

:class:`DriftReport` turns the emitted observer records into named daily
series — drained records, sessions closed, and newly discovered sources
per telescope, plus the tactic-mix source count — and computes, for each:

* a **rolling trend**: the OLS slope per day over the whole series and
  the mean of the most recent window, next to the all-time mean;
* a **changepoint**: the day whose before/after split the local-level
  state-space model finds most surprising, confirmed (effect size and
  confidence interval) by a full causal-impact analysis.

The changepoint engine deliberately reuses the BSTM machinery from
:mod:`repro.analysis.bstm` — the same model the paper's §6 counterfactual
analysis runs.  The candidate scan fits the local-level hyperparameters
*once* over the full series (:func:`fit_local_level`), then, for each
candidate day ``t``, filters the pre-``t`` prefix with those variances
(:func:`kalman_filter_local_level` — no optimizer in the loop, so the
scan is O(n) per candidate) and scores the post-``t`` mean against the
model's forecast in standard-error units.  Only the winning candidate
pays for a full :class:`CausalImpact` run (MLE refit + bootstrap), which
provides the reported effect size, interval, and significance flag.

Determinism: the scan is exact arithmetic and the causal-impact bootstrap
runs under a fixed seed, so ``to_json()`` output is reproducible for a
given data directory.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.analysis.bstm import (
    CausalImpact,
    fit_local_level,
    kalman_filter_local_level,
)
from repro.analysis.streaming import SCAN_LEVELS


@dataclass(frozen=True)
class Changepoint:
    """One detected level shift in a daily series."""

    #: Simulated day the new regime starts (first post-shift day).
    day: int
    #: Position of that day within the series.
    index: int
    #: Scan score: |post mean - forecast| in forecast standard errors.
    z: float
    #: Causal-impact average effect (signed level shift).
    shift: float
    ci_low: float
    ci_high: float
    significant: bool


@dataclass(frozen=True)
class SeriesDrift:
    """Trend + changepoint summary for one named series."""

    name: str
    n: int
    mean: float
    #: OLS slope per day over the full series.
    trend_slope: float
    #: Mean over the trailing window (the "where is it now" number).
    recent_mean: float
    changepoint: Changepoint | None


class DriftReport:
    """Rolling-trend and changepoint summaries over observer series."""

    def __init__(self, days, series: dict, *, alpha: float = 0.05,
                 n_resamples: int = 500, seed: int = 0,
                 min_segment: int = 3, z_threshold: float = 3.0,
                 window: int = 7):
        self.days = [int(day) for day in days]
        self.series = {}
        for name, values in series.items():
            y = np.asarray(values, dtype=float)
            if len(y) != len(self.days):
                raise ValueError(
                    f"series {name!r} has {len(y)} values for "
                    f"{len(self.days)} days")
            self.series[name] = y
        self.alpha = alpha
        self.n_resamples = n_resamples
        self.seed = seed
        #: Shortest allowed pre/post segment — the state-space fit needs
        #: at least 3 observations on each side.
        self.min_segment = max(3, int(min_segment))
        self.z_threshold = z_threshold
        self.window = window
        self._drifts: dict[str, SeriesDrift] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_observations(cls, records, **kwargs) -> "DriftReport":
        """Build the standard series set from observer records.

        Ignores non-``observer`` records (the ``observatory_end`` marker),
        so the output of ``read_journal(observations.jsonl)`` works as
        input unfiltered.
        """
        observations = [r for r in records if r.get("type") == "observer"]
        if not observations:
            raise ValueError("no observer records to summarize")
        observations = sorted(observations, key=lambda r: r["day"])
        days = [r["day"] for r in observations]
        series: dict[str, list] = {}
        for record in observations:
            for name, section in sorted(record["telescopes"].items()):
                series.setdefault(f"{name}.records", []).append(
                    section["records"])
                for level in SCAN_LEVELS:
                    series.setdefault(f"{name}.events.{level}", []).append(
                        section["events_closed"][str(level)])
                series.setdefault(f"{name}.new_sources.64", []).append(
                    section["new_sources"]["64"])
            series.setdefault("tactics.sources", []).append(
                record["tactics"]["sources"])
        return cls(days, series, **kwargs)

    @classmethod
    def from_data_dir(cls, directory, **kwargs) -> "DriftReport":
        from repro.observatory.index import read_observations

        return cls.from_observations(read_observations(directory), **kwargs)

    # -- analysis ----------------------------------------------------------

    def drift(self, name: str) -> SeriesDrift:
        if name not in self._drifts:
            self._drifts[name] = self._analyze(name)
        return self._drifts[name]

    def summaries(self) -> list[SeriesDrift]:
        return [self.drift(name) for name in sorted(self.series)]

    def _analyze(self, name: str) -> SeriesDrift:
        y = self.series[name]
        n = len(y)
        window = min(self.window, n)
        return SeriesDrift(
            name=name,
            n=n,
            mean=float(y.mean()),
            trend_slope=self._slope(y),
            recent_mean=float(y[-window:].mean()),
            changepoint=self.changepoint(name),
        )

    @staticmethod
    def _slope(y: np.ndarray) -> float:
        """OLS slope per day — exact on a noiseless linear series."""
        n = len(y)
        if n < 2:
            return 0.0
        t = np.arange(n, dtype=float)
        t_centered = t - t.mean()
        return float((t_centered @ (y - y.mean())) / (t_centered @ t_centered))

    def changepoint(self, name: str) -> Changepoint | None:
        """The most surprising before/after split, or None if no split
        clears the z threshold."""
        y = self.series[name]
        n = len(y)
        if n < 2 * self.min_segment + 1:
            return None
        if np.allclose(y, y[0]):
            return None
        hyper = fit_local_level(y)
        best_index, best_z = None, 0.0
        for t in range(self.min_segment, n - self.min_segment + 1):
            kal = kalman_filter_local_level(
                y[:t], hyper.sigma_obs2, hyper.sigma_level2)
            horizon = n - t
            steps = np.arange(1, horizon + 1, dtype=float)
            forecast_var = (kal.level_var[-1] + steps * hyper.sigma_level2
                            + hyper.sigma_obs2)
            shift = float(np.mean(y[t:] - kal.level[-1]))
            se = float(np.sqrt(max(forecast_var.mean() / horizon, 1e-18)))
            z = abs(shift) / se
            if best_index is None or z > best_z:
                best_index, best_z = t, z
        if best_z < self.z_threshold:
            return None
        impact = CausalImpact(
            alpha=self.alpha, rng=self.seed, n_resamples=self.n_resamples,
        ).run(y, np.zeros((n, 0)), best_index)
        return Changepoint(
            day=self.days[best_index],
            index=best_index,
            z=round(best_z, 3),
            shift=impact.average_effect,
            ci_low=impact.ci_low,
            ci_high=impact.ci_high,
            significant=impact.significant,
        )

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        lines = [
            f"Observatory drift report — {len(self.days)} days "
            f"({self.days[0]}..{self.days[-1]})",
            f"  {'series':22s} {'mean':>10s} {'slope/day':>10s} "
            f"{'recent':>10s}  changepoint",
        ]
        for drift in self.summaries():
            cp = drift.changepoint
            if cp is None:
                note = "-"
            else:
                star = "*" if cp.significant else " "
                note = (f"day {cp.day}: {cp.shift:+.2f} "
                        f"[{cp.ci_low:.2f}, {cp.ci_high:.2f}]{star}")
            lines.append(
                f"  {drift.name:22s} {drift.mean:10.2f} "
                f"{drift.trend_slope:+10.3f} {drift.recent_mean:10.2f}  "
                f"{note}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "days": self.days,
            "series": {
                drift.name: {
                    "n": drift.n,
                    "mean": drift.mean,
                    "trend_slope": drift.trend_slope,
                    "recent_mean": drift.recent_mean,
                    "changepoint": (asdict(drift.changepoint)
                                    if drift.changepoint else None),
                }
                for drift in self.summaries()
            },
        }
