"""Longitudinal observatory mode (ROADMAP item 2).

Turns a streaming scenario run into the paper's actual instrument — a
long-running telescope observatory: one schema-versioned, bit-reproducible
``observer`` JSON record per simulated day (:mod:`~repro.observatory.
observer`), an append-only long-horizon index (:mod:`~repro.observatory.
index`), and drift/changepoint summaries over the resulting daily series
(:mod:`~repro.observatory.drift`, reusing the BSTM causal-impact engine).

Entry points: ``run_scenario(..., stream_analysis=True, observe_dir=...)``,
CLI ``python -m repro observe`` / ``repro run --stream --observe``, and the
service's ``GET /observatory`` SSE endpoint.
"""

from repro.observatory.drift import Changepoint, DriftReport, SeriesDrift
from repro.observatory.index import (
    list_day_files,
    read_index,
    read_observations,
    update_index,
)
from repro.observatory.observer import (
    Observatory,
    ObservatoryError,
    ObservatoryState,
    day_file_path,
    day_tactics,
    load_observer_day,
    observer_line,
    validate_observer,
)

__all__ = [
    "Changepoint",
    "DriftReport",
    "Observatory",
    "ObservatoryError",
    "ObservatoryState",
    "SeriesDrift",
    "day_file_path",
    "day_tactics",
    "list_day_files",
    "load_observer_day",
    "observer_line",
    "read_index",
    "read_observations",
    "update_index",
    "validate_observer",
]
