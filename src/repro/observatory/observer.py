"""The observatory runner: one validated observer record per simulated day.

An :class:`Observatory` rides along a ``run_scenario(stream_analysis=True)``
day loop.  At every day boundary the runner hands it the day's drained
telescope records plus the (already fed) per-telescope
:class:`~repro.analysis.streaming.StreamAnalyzer` instances, and the
observatory emits one schema-versioned ``observer`` record:

* per-telescope scan-event rates (sessions closed that day at every
  aggregation level), open-session counts, and drained record counts;
* new-scanner discovery — sources at /128, /64, and /48 never seen on
  that telescope before this day;
* tactic-mix shares — Figure 11 feature combinations across every
  deployed honeyprefix, counted per scanner /48 over the day's probes;
* honeyprefix reaction latency — seconds from a prefix's deployment to
  the first NT-A probe it attracted.

Every record is written twice, in the same serialized bytes: as its own
atomic per-day file ``observer-NNNNN.json`` (write-then-rename, so a kill
can never leave a torn day file) and as one line appended to
``observations.jsonl`` (line-buffered, which is what the service's SSE
endpoint tails live).  Concatenating the day files in day order yields
exactly the ``observations.jsonl`` body — that equivalence is what makes
the stream and the on-disk files interchangeable.

Reproducibility contract (same as the run journal's): records contain
simulation-time values only — never wall clock, hostnames, or paths — so
the per-day files are byte-identical across serial, ``--jobs N``,
``--pipeline``, and killed-and-resumed executions of one config.  On
resume the observatory restores its cursor state (seen-source sets,
cumulative event counts, first-contact times) from the scenario
checkpoint and rewrites the ``observations.jsonl`` prefix from the
already-emitted day files, so a torn final line from the kill is healed
rather than inherited.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro._util import DAY
from repro.analysis.records import PacketRecords
from repro.analysis.streaming import SCAN_LEVELS
from repro.core.features import Feature, combo_label
from repro.net.addr import mask_u64
from repro.obs import (
    JOURNAL_SCHEMA_VERSION,
    config_hash,
    get_registry,
    validate_record,
)

#: The three telescopes every scenario runs, in emission order.
TELESCOPES = ("NT-A", "NT-B", "NT-C")

#: ``observer-00042.json`` — zero-padded so lexicographic listing is day
#: order for horizons up to ~270 simulated years.
DAY_FILE_FORMAT = "observer-{day:05d}.json"

#: The line-oriented mirror of the day files (plus the closing
#: ``observatory_end`` marker) — what the SSE endpoint tails.
OBSERVATIONS_NAME = "observations.jsonl"

#: Append-only long-horizon index maintained by :func:`repro.observatory.
#: index.update_index`.
INDEX_NAME = "index.jsonl"

#: Data-dir provenance marker: which config wrote this directory.
MANIFEST_NAME = "observatory.json"


class ObservatoryError(ValueError):
    """An observer record, day file, or data directory is invalid."""


def day_file_path(directory, day: int) -> Path:
    return Path(directory) / DAY_FILE_FORMAT.format(day=day)


def observer_line(record: dict) -> str:
    """The canonical serialized form: sorted keys, one trailing newline.

    Both the day file and the ``observations.jsonl`` line use exactly
    this string, which is what makes them byte-interchangeable.
    """
    return json.dumps(record, sort_keys=True) + "\n"


def validate_observer(record: dict) -> dict:
    """Schema-validate one ``observer`` record; returns it.

    Layered on the journal-level check (``v``/``type``/required fields):
    every telescope section must cover exactly the known telescopes with
    non-negative per-level integer counts, tactic shares must be a
    probability vector over the combo labels, and honeyprefix entries
    must carry a coherent deployment/first-contact/latency triple.
    """
    validate_record(record)
    if record.get("type") != "observer":
        raise ObservatoryError(
            f"expected an observer record, got {record.get('type')!r}")
    if not isinstance(record["day"], int) or record["day"] < 0:
        raise ObservatoryError(f"bad day: {record['day']!r}")
    telescopes = record["telescopes"]
    if set(telescopes) != set(TELESCOPES):
        raise ObservatoryError(
            f"telescope sections {sorted(telescopes)} != {sorted(TELESCOPES)}")
    level_keys = {str(level) for level in SCAN_LEVELS}
    for name, section in telescopes.items():
        if not isinstance(section.get("records"), int) or section["records"] < 0:
            raise ObservatoryError(f"{name}: bad records count")
        for part in ("events_closed", "open_sessions", "new_sources"):
            counts = section.get(part)
            if not isinstance(counts, dict) or set(counts) != level_keys:
                raise ObservatoryError(
                    f"{name}.{part}: levels {counts} != {sorted(level_keys)}")
            for level, value in counts.items():
                if not isinstance(value, int) or value < 0:
                    raise ObservatoryError(
                        f"{name}.{part}[{level}]: bad count {value!r}")
    tactics = record["tactics"]
    if (not isinstance(tactics.get("sources"), int)
            or tactics["sources"] < 0
            or not isinstance(tactics.get("combos"), dict)
            or not isinstance(tactics.get("shares"), dict)
            or set(tactics["combos"]) != set(tactics["shares"])):
        raise ObservatoryError(f"bad tactics section: {tactics!r}")
    if sum(tactics["combos"].values()) != tactics["sources"]:
        raise ObservatoryError("tactic combo counts do not sum to sources")
    for name, entry in record["honeyprefixes"].items():
        deployed, first = entry.get("deployed_at"), entry.get("first_seen")
        latency = entry.get("reaction_s")
        if first is not None and deployed is not None:
            if latency is None or abs((first - deployed) - latency) > 1e-9:
                raise ObservatoryError(
                    f"{name}: reaction_s inconsistent with "
                    f"first_seen - deployed_at")
        elif latency is not None:
            raise ObservatoryError(
                f"{name}: reaction_s set without first_seen/deployed_at")
    return record


def load_observer_day(path) -> dict:
    """Parse and validate one per-day observer file."""
    path = Path(path)
    try:
        text = path.read_text()
        record = json.loads(text)
    except FileNotFoundError:
        raise
    except (OSError, ValueError) as error:
        raise ObservatoryError(f"unreadable day file {path.name}: {error}")
    if not isinstance(record, dict):
        raise ObservatoryError(f"day file {path.name} is not a JSON object")
    return validate_observer(record)


#: Feature code order for the vectorized classifier: the index of a
#: feature here is its bit in the per-source combination mask.  Only the
#: features :func:`repro.analysis.tactics._classify_probe` can return.
_TACTIC_FEATURES = (
    Feature.ICMP, Feature.TCP, Feature.UDP, Feature.DOMAIN,
    Feature.TLS_ROOT, Feature.SUBDOMAIN, Feature.TLS_SUB,
    Feature.HITLIST, Feature.OTHER,
)


def _classify_distinct(hp, dst_hi, dst_lo, meta) -> np.ndarray:
    """Classify each distinct ``(dst, proto, dport, flags)`` probe tuple.

    The same decision tree as :func:`repro.analysis.tactics.
    _classify_probe`, restructured for bulk input.  A destination only
    classifies off the default path when it is one of the honeyprefix's
    *special* addresses — a domain/subdomain target, a manual hitlist
    entry, or an address with a responsive binding — and those number in
    the dozens while the day's distinct destinations number in the
    thousands.  So the default codes (aliased-prefix ICMP or the
    catch-all OTHER) are assigned vectorized, and the python decision
    tree runs only over candidates whose high address half matches a
    special address's.  Returns one ``_TACTIC_FEATURES`` index per tuple.
    """
    from repro.net.addr import _cached_mask
    from repro.net.packet import ICMPV6, TCP, UDP

    domain_addrs = set(hp.domain_targets.values())
    sub_addrs = set(hp.subdomain_targets.values())
    manual = set(hp.manual_hitlist_addresses)
    responsive = hp.responsive
    aliased = hp.config.aliased
    pmask = _cached_mask(hp.prefix.length)
    pnet = hp.prefix.network
    icmp_echo = (ICMPV6, None)

    proto_arr = meta >> np.uint64(32)
    codes = np.full(len(dst_hi), 8, dtype=np.uint16)  # OTHER
    if aliased:
        hi_m, lo_m = mask_u64(dst_hi, dst_lo, hp.prefix.length)
        in_prefix = (hi_m == np.uint64(pnet >> 64)) \
            & (lo_m == np.uint64(pnet & 0xFFFFFFFFFFFFFFFF))
        codes[(proto_arr == ICMPV6) & in_prefix] = 0  # ICMP

    special = domain_addrs | sub_addrs | manual | set(responsive)
    if not special:
        return codes
    special_hi = np.fromiter((a >> 64 for a in special), dtype=np.uint64,
                             count=len(special))
    candidates = np.flatnonzero(np.isin(dst_hi, special_hi))
    hi_list, lo_list = dst_hi[candidates].tolist(), dst_lo[candidates].tolist()
    meta_list = meta[candidates].tolist()
    for k, j in enumerate(candidates.tolist()):
        m = meta_list[k]
        dst = (hi_list[k] << 64) | lo_list[k]
        if dst in manual and m & 4:
            code = 7  # HITLIST
        elif dst in domain_addrs:
            code = 4 if m & 1 else 3  # TLS_ROOT / DOMAIN
        elif dst in sub_addrs:
            code = 6 if m & 2 else 5  # TLS_SUB / SUBDOMAIN
        else:
            proto = m >> 32
            bindings = responsive.get(dst)
            if proto == ICMPV6:
                responds = (aliased and dst & pmask == pnet) \
                    or (bindings and icmp_echo in bindings)
                code = 0 if responds else 8  # ICMP / OTHER
            elif proto == TCP:
                code = 1 if bindings and (TCP, (m >> 8) & 0xFFFF) \
                    in bindings else 8
            elif proto == UDP:
                code = 2 if bindings and (UDP, (m >> 8) & 0xFFFF) \
                    in bindings else 8
            else:
                code = 8  # OTHER
        codes[j] = code
    return codes


def day_tactics(records: PacketRecords, hp, source_length: int = 48,
                ) -> tuple[Counter, int]:
    """One day's Figure 11 tactic combos for one honeyprefix, vectorized.

    Equivalent to :func:`repro.analysis.tactics.label_tactics` on the same
    (honeyprefix-restricted) records — pinned by the randomized
    equivalence test — but fast enough to run at every day boundary.
    Classification is independent of the probe's *source*: it depends
    only on ``(dst, proto, dport, ts-vs-feature-thresholds)``, with the
    timestamp thresholds folded into three boolean flags so any packet of
    a tuple classifies identically.  The python decision tree therefore
    runs once per distinct tuple; everything else — the dedupe, mapping
    features back onto packets, and collapsing packets into per-source
    feature-combination masks — is numpy.
    """
    if not 0 < source_length <= 64:
        raise ValueError(f"source_length must be in (0, 64]: {source_length}")
    combos: Counter = Counter()
    n = len(records)
    if n == 0:
        return combos, 0
    t_root = hp.feature_time(Feature.TLS_ROOT)
    t_sub = hp.feature_time(Feature.TLS_SUB)
    t_hit = hp.feature_time(Feature.HITLIST)

    def flag(threshold, bit):
        if threshold is None:
            return np.zeros(n, dtype=np.uint64)
        return (records.ts >= threshold).astype(np.uint64) << np.uint64(bit)

    # proto (bits 32+), dport (bits 8..23), and the three threshold flags
    # (bits 0..2) packed into one key so the dedupe is a 3-key lexsort.
    meta = ((records.proto.astype(np.uint64) << np.uint64(32))
            | (records.dport.astype(np.uint64) << np.uint64(8))
            | flag(t_root, 0) | flag(t_sub, 1) | flag(t_hit, 2))
    order = np.lexsort((meta, records.dst_lo, records.dst_hi))
    hi_s, lo_s = records.dst_hi[order], records.dst_lo[order]
    meta_s = meta[order]
    firsts = np.ones(n, dtype=bool)
    firsts[1:] = ((hi_s[1:] != hi_s[:-1]) | (lo_s[1:] != lo_s[:-1])
                  | (meta_s[1:] != meta_s[:-1]))
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.cumsum(firsts) - 1

    codes = _classify_distinct(
        hp, hi_s[firsts], lo_s[firsts], meta_s[firsts])

    # Per-source feature masks: dedupe (source, feature) pairs on one
    # packed u64 key when the source fits, then OR the feature bits of
    # each source's run.  Sources wider than 60 bits fall back to a
    # 2-key lexsort; the downstream is identical.
    feature = codes[inverse].astype(np.uint64)
    source = records.src_hi >> np.uint64(64 - source_length)
    if source_length <= 60:
        packed = np.sort((source << np.uint64(4)) | feature)
        keep = np.ones(n, dtype=bool)
        keep[1:] = packed[1:] != packed[:-1]
        pairs = packed[keep]
        pair_src, pair_feat = pairs >> np.uint64(4), pairs & np.uint64(0xF)
    else:
        order2 = np.lexsort((feature, source))
        src_s, feat_s = source[order2], feature[order2]
        keep = np.ones(n, dtype=bool)
        keep[1:] = (src_s[1:] != src_s[:-1]) | (feat_s[1:] != feat_s[:-1])
        pair_src, pair_feat = src_s[keep], feat_s[keep]
    starts = np.ones(len(pair_src), dtype=bool)
    starts[1:] = pair_src[1:] != pair_src[:-1]
    start_idx = np.flatnonzero(starts)
    masks = np.bitwise_or.reduceat(
        np.uint16(1) << pair_feat.astype(np.uint16), start_idx)

    for mask, count in zip(*np.unique(masks, return_counts=True)):
        features = {f for k, f in enumerate(_TACTIC_FEATURES)
                    if mask >> k & 1}
        combos[combo_label(features)] += int(count)
    return combos, len(start_idx)


@dataclass
class ObservatoryState:
    """The observatory's resumable cursor — what rides in a checkpoint.

    Everything here is derived from records already observed, never from
    the data directory: a resumed run re-creates its
    :class:`Observatory` around this state and re-emits days from the
    checkpoint boundary byte-identically.
    """

    #: First day the observatory still has to emit.
    next_day: int
    #: telescope -> level -> set of truncated source addresses (as ints).
    seen_sources: dict = field(default_factory=dict)
    #: telescope -> level -> cumulative sessions closed through next_day.
    event_counts: dict = field(default_factory=dict)
    #: honeyprefix name -> simulation time of its first NT-A probe.
    first_seen: dict = field(default_factory=dict)
    #: Total records drained across all telescopes through next_day.
    records_total: int = 0


class Observatory:
    """Per-day observer emission over one streaming scenario run."""

    def __init__(self, directory, config=None, *, start_day: int = 0,
                 state: ObservatoryState | None = None,
                 levels: tuple[int, ...] = SCAN_LEVELS):
        self.directory = Path(directory)
        self.levels = levels
        self._registry = get_registry()
        self._closed = False
        if state is None:
            state = ObservatoryState(
                next_day=0,
                seen_sources={t: {lv: set() for lv in levels}
                              for t in TELESCOPES},
                event_counts={t: {lv: 0 for lv in levels}
                              for t in TELESCOPES},
            )
        if state.next_day != start_day:
            raise ObservatoryError(
                f"observatory state is at day {state.next_day}, "
                f"run resumes at day {start_day}")
        self.state = state
        self.directory.mkdir(parents=True, exist_ok=True)
        self._check_manifest(config)
        self._stream = self._open_stream(start_day)

    # -- directory plumbing ------------------------------------------------

    def _check_manifest(self, config) -> None:
        """Refuse to interleave two configs' observations in one dir."""
        path = self.directory / MANIFEST_NAME
        manifest = {
            "v": JOURNAL_SCHEMA_VERSION,
            "config_hash": config_hash(config) if config is not None else None,
            "levels": [int(level) for level in self.levels],
        }
        if path.exists():
            try:
                existing = json.loads(path.read_text())
            except (OSError, ValueError) as error:
                raise ObservatoryError(
                    f"unreadable observatory manifest: {error}")
            if (config is not None
                    and existing.get("config_hash") is not None
                    and existing.get("config_hash") != manifest["config_hash"]):
                raise ObservatoryError(
                    f"observatory directory {self.directory} was written by "
                    f"a different config (hash {existing.get('config_hash')})")
            return
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(observer_line(manifest))
        os.replace(tmp, path)

    def _open_stream(self, start_day: int):
        """(Re)build ``observations.jsonl`` up to ``start_day`` and open it.

        The prefix is reconstructed from the atomic day files rather than
        trusted from the previous process: a kill mid-append leaves a torn
        final line, and a rewrite from known-good files heals it.  Day
        files are the exact line bytes, so this is pure concatenation.
        """
        path = self.directory / OBSERVATIONS_NAME
        stream = open(path, "w", buffering=1, encoding="utf-8")
        try:
            for day in range(start_day):
                stream.write(day_file_path(self.directory, day).read_text())
        except FileNotFoundError as error:
            stream.close()
            raise ObservatoryError(
                f"cannot resume at day {start_day}: missing day file "
                f"({error.filename})")
        return stream

    @property
    def observations_path(self) -> Path:
        return self.directory / OBSERVATIONS_NAME

    # -- per-day emission --------------------------------------------------

    def observe_day(self, day: int, scenario, streams,
                    drained: dict) -> dict:
        """Emit the observer record for one completed day.

        ``drained`` maps telescope name to the day's
        :class:`PacketRecords` (already fed into ``streams``).  Returns
        the emitted record.
        """
        if self._closed:
            raise ObservatoryError("observatory already finished")
        if day != self.state.next_day:
            raise ObservatoryError(
                f"days must be observed in order: got {day}, "
                f"expected {self.state.next_day}")
        with self._registry.timer("observatory.emit"):
            record = self._build_record(day, scenario, streams, drained)
            validate_observer(record)
            line = observer_line(record)
            path = day_file_path(self.directory, day)
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(line)
            os.replace(tmp, path)
            self._stream.write(line)
            self.state.next_day = day + 1
        self._registry.counter("observatory.days").inc()
        self._registry.counter("observatory.records").inc(
            sum(len(records) for records in drained.values()))
        return record

    def _build_record(self, day: int, scenario, streams,
                      drained: dict) -> dict:
        telescopes = {}
        for name in TELESCOPES:
            records = drained[name]
            analyzer = streams[name]
            events_closed, open_sessions = {}, {}
            for level in self.levels:
                tracker = analyzer.trackers[level]
                total = tracker.events_closed
                previous = self.state.event_counts[name][level]
                events_closed[str(level)] = total - previous
                self.state.event_counts[name][level] = total
                open_sessions[str(level)] = tracker.open_sessions
            telescopes[name] = {
                "records": len(records),
                "events_closed": events_closed,
                "open_sessions": open_sessions,
                "new_sources": {
                    str(level): self._count_new_sources(name, level, records)
                    for level in self.levels
                },
            }
            self.state.records_total += len(records)

        combos: Counter = Counter()
        total_sources = 0
        honeyprefixes = {}
        nta = drained["NT-A"]
        day_end = (day + 1) * DAY
        for name in sorted(scenario.honeyprefixes):
            hp = scenario.honeyprefixes[name]
            # Gate on the deployment *time*, not dict membership: the
            # sharded parent's engine registers a whole window's deploys
            # before the first day's observation runs, while the serial
            # path registers them day by day.  The timestamp is identical
            # in both modes; membership is not.
            if hp.deployed_at is None or hp.deployed_at >= day_end:
                continue
            selected = (nta.select(nta.mask_dst_in(hp.prefix))
                        if len(nta) else PacketRecords.empty())
            if len(selected) and name not in self.state.first_seen:
                self.state.first_seen[name] = float(selected.ts.min())
            deployed = hp.deployed_at
            first = self.state.first_seen.get(name)
            honeyprefixes[name] = {
                "deployed_at": deployed,
                "first_seen": first,
                "reaction_s": (first - deployed
                               if first is not None and deployed is not None
                               else None),
            }
            if len(selected):
                hp_combos, hp_sources = day_tactics(selected, hp)
                combos += hp_combos
                total_sources += hp_sources

        shares = {label: count / total_sources
                  for label, count in combos.items()} if total_sources else {}
        return {
            "v": JOURNAL_SCHEMA_VERSION,
            "type": "observer",
            "day": day,
            "telescopes": telescopes,
            "tactics": {
                "sources": total_sources,
                "combos": dict(sorted(combos.items())),
                "shares": dict(sorted(shares.items())),
            },
            "honeyprefixes": honeyprefixes,
        }

    def _count_new_sources(self, telescope: str, level: int,
                           records: PacketRecords) -> int:
        if len(records) == 0:
            return 0
        hi, lo = mask_u64(records.src_hi, records.src_lo, level)
        seen = self.state.seen_sources[telescope][level]
        before = len(seen)
        if level <= 64:
            # The masked low half is all zeros: the high half alone
            # identifies the source, and small ints keep the set cheap.
            seen.update(np.unique(hi).tolist())
        else:
            order = np.lexsort((lo, hi))
            hi, lo = hi[order], lo[order]
            firsts = np.ones(len(hi), dtype=bool)
            firsts[1:] = (hi[1:] != hi[:-1]) | (lo[1:] != lo[:-1])
            # (hi, lo) tuples, not packed 128-bit ints: ``zip`` builds
            # them in C, and tuple hashing beats bigint construction.
            seen.update(zip(hi[firsts].tolist(), lo[firsts].tolist()))
        return len(seen) - before

    # -- lifecycle ---------------------------------------------------------

    def checkpoint_state(self) -> ObservatoryState:
        """The cursor to embed in a scenario checkpoint.  Returned live:
        ``save_checkpoint`` pickles it synchronously, before the next
        day's observation can mutate it."""
        return self.state

    def finish(self) -> dict:
        """Close the run: ``observatory_end`` marker + index refresh."""
        from repro.observatory.index import update_index

        if self._closed:
            raise ObservatoryError("observatory already finished")
        summary = {
            "v": JOURNAL_SCHEMA_VERSION,
            "type": "observatory_end",
            "days": self.state.next_day,
            "records": self.state.records_total,
        }
        validate_record(summary)
        self._stream.write(observer_line(summary))
        self.close()
        update_index(self.directory)
        return {"directory": str(self.directory),
                "days": summary["days"], "records": summary["records"]}

    def close(self) -> None:
        """Release the stream handle without writing the end marker (what
        an aborted run does; ``finish`` calls it too)."""
        if not self._closed:
            self._closed = True
            self._stream.close()
