"""The observatory's long-horizon index: ``index.jsonl`` over day files.

One append-only JSONL file per data directory, one ``observer_index``
record per emitted day: the day number, the day file's name, its SHA-256,
and headline counts (records drained, sessions closed).  The index is the
cheap entry point for multi-year summaries — :class:`~repro.observatory.
drift.DriftReport` and external tooling can scan it without parsing every
day file — and the hash pins each day's bytes, so any later run that
would *change* an already-indexed day (a config drift the manifest check
missed, a corrupted file) fails loudly instead of silently forking
history.

:func:`update_index` is idempotent: re-running it appends entries only
for days not yet indexed, verifies the hash of every day it already
knows, and heals a torn final line (process killed mid-append) by
truncating it before appending — mirroring the run journal's
torn-line tolerance.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path

from repro.obs import JOURNAL_SCHEMA_VERSION, read_journal
from repro.observatory.observer import (
    INDEX_NAME,
    ObservatoryError,
    load_observer_day,
    observer_line,
)

_DAY_FILE_RE = re.compile(r"^observer-(\d{5})\.json$")


def list_day_files(directory) -> list[tuple[int, Path]]:
    """All per-day observer files in ``directory``, in day order.

    A directory that does not exist yet is an empty observatory, not an
    error — callers probe before any run has written it.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for path in directory.iterdir():
        match = _DAY_FILE_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def read_observations(directory) -> list[dict]:
    """Every emitted observer record, validated, in day order.

    Reads the atomic day files rather than ``observations.jsonl`` — the
    files are the authoritative store; the jsonl mirror exists for
    tailing.
    """
    return [load_observer_day(path) for _, path in list_day_files(directory)]


def read_index(directory) -> list[dict]:
    """The index records (torn final line tolerated), in file order."""
    path = Path(directory) / INDEX_NAME
    if not path.exists():
        return []
    return list(read_journal(path))


def update_index(directory) -> list[dict]:
    """Bring ``index.jsonl`` up to date with the day files on disk.

    Returns the newly appended entries.  Already-indexed days are
    verified against their recorded SHA-256; a mismatch raises
    :class:`ObservatoryError`.
    """
    directory = Path(directory)
    path = directory / INDEX_NAME
    existing = {record["day"]: record for record in read_index(directory)}

    appended = []
    for day, day_path in list_day_files(directory):
        payload = day_path.read_bytes()
        digest = hashlib.sha256(payload).hexdigest()
        if day in existing:
            if existing[day]["sha256"] != digest:
                raise ObservatoryError(
                    f"{day_path.name} does not match its index entry "
                    f"(history would fork); move the data dir aside")
            continue
        record = load_observer_day(day_path)
        appended.append({
            "v": JOURNAL_SCHEMA_VERSION,
            "type": "observer_index",
            "day": day,
            "file": day_path.name,
            "sha256": digest,
            "records": sum(section["records"]
                           for section in record["telescopes"].values()),
            "events_closed": sum(
                sum(section["events_closed"].values())
                for section in record["telescopes"].values()),
        })

    if appended:
        _truncate_torn_tail(path)
        with open(path, "a", encoding="utf-8") as stream:
            for record in appended:
                stream.write(observer_line(record))
    return appended


def _truncate_torn_tail(path: Path) -> None:
    """Drop a torn final line so the next append starts on a fresh line."""
    if not path.exists():
        return
    payload = path.read_bytes()
    if not payload or payload.endswith(b"\n"):
        return
    keep = payload.rfind(b"\n") + 1
    with open(path, "r+b") as stream:
        stream.truncate(keep)
