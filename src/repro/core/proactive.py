"""The proactive telescope orchestrator.

Owns the whole deployment from Figure 4: the BGP speaker (BIRD), the
registrar/ACME clients driving the attraction features, Twinklenet, the
T-Pot gateways, and the packet capturer.  ``deploy()`` turns a
:class:`~repro.core.honeyprefix.HoneyprefixConfig` into a live honeyprefix
and records every feature activation on the honeyprefix's timeline — the
ground truth that the tactic-attribution analysis (Fig. 11) joins against.

The telescope also implements the hitlist prober's responsiveness oracle,
so the public hitlist discovers honeyprefix addresses exactly the way the
real one did.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro._util import make_rng
from repro.core.capture import PacketCapturer
from repro.core.features import Feature
from repro.core.honeyprefix import (
    Honeyprefix,
    HoneyprefixConfig,
    WEB_PORTS,
    deploy_addresses,
)
from repro.core.tpot import (
    DnatGateway,
    TPOT1_CONTAINERS,
    TPOT2_CONTAINERS,
    TPotInstance,
)
from repro.core.twinklenet import Twinklenet, TwinklenetConfig
from repro.core.wordlists import common_subdomains
from repro.dns.registry import Registrar
from repro.dns.reverse import ReverseZone
from repro.hitlist.categories import HitlistCategory
from repro.hitlist.service import HitlistService
from repro.net.addr import IPv6Prefix, member_mask_cols, member_mask_u64
from repro.net.batch import PacketBatch, WireBatch
from repro.net.packet import ICMPV6, TCP, UDP, Packet
from repro.obs import get_journal, get_registry, get_tracer
from repro.routing.speaker import BgpSpeaker
from repro.tlsca.acme import AcmeClient
from repro.tlsca.ca import RateLimitExceeded

#: Let's Encrypt weekly limit kept 50 subdomain certificates per paper §4.3.2.
MAX_SUBDOMAIN_CERTS = 50


class ProactiveTelescope:
    """The full proactive telescope deployed inside an ISP's /32."""

    def __init__(
        self,
        name: str,
        covering_prefix: IPv6Prefix,
        speaker: BgpSpeaker,
        registrar: Registrar | None = None,
        acme: AcmeClient | None = None,
        hitlist: HitlistService | None = None,
        reverse_zone: ReverseZone | None = None,
        rng: np.random.Generator | int | None = 0,
        subdomain_count: int = 374,
    ):
        self.name = name
        self.covering_prefix = covering_prefix
        self.speaker = speaker
        self.registrar = registrar
        self.acme = acme
        self.hitlist = hitlist
        self.reverse_zone = reverse_zone
        self._rng = make_rng(rng)
        self.subdomain_names = common_subdomains(subdomain_count)
        self.capturer = PacketCapturer(name=f"{name}-capture")
        self.twinklenet = Twinklenet(TwinklenetConfig())
        self.honeyprefixes: list[Honeyprefix] = []
        #: fast lookup: /48 network int -> honeyprefix (every honeyprefix
        #: occupies a distinct /48 container).
        self._hp_by_48: dict[int, Honeyprefix] = {}
        self.gateways: dict[str, DnatGateway] = {}
        self._domain_counter = itertools.count(1)
        self.response_count = 0
        #: Columnar reaction kernels on the batch path (scalar per-packet
        #: reference paths stay available behind this switch).
        self.use_batch_react = True
        #: Cached honeyprefix /48 key column for handle_batch; invalidated
        #: whenever a deploy adds a honeyprefix.
        self._hp_keys_hi: np.ndarray | None = None

        def _count_tx(_pkt: Packet) -> None:
            self.response_count += 1

        def _count_tx_batch(replies: WireBatch) -> None:
            self.response_count += len(replies)

        self.twinklenet.set_transmit(_count_tx)
        self.twinklenet.set_transmit_batch(_count_tx_batch)
        self._count_tx = _count_tx
        self._count_tx_batch = _count_tx_batch

    # -- deployment ------------------------------------------------------

    def deploy(
        self,
        config: HoneyprefixConfig,
        prefix: IPv6Prefix,
        at: float,
    ) -> Honeyprefix:
        """Deploy one honeyprefix at time ``at``.

        Performs the initial feature set: ROA + BGP announcement, domain and
        subdomain registration, honeypot wiring, reverse-DNS records.  TLS
        issuance and manual hitlist insertion are separate triggers — call
        :meth:`issue_tls` / :meth:`insert_hitlist` on the paper's schedule.
        """
        if not self.covering_prefix.contains_prefix(prefix):
            raise ValueError(
                f"{prefix} is outside the telescope's {self.covering_prefix}"
            )
        hp = deploy_addresses(config, prefix, self._rng)
        hp.deployed_at = at
        self.honeyprefixes.append(hp)
        key = (prefix.network >> 80) << 80
        if key in self._hp_by_48:
            raise ValueError(f"a honeyprefix already occupies {prefix}")
        self._hp_by_48[key] = hp
        self._hp_keys_hi = None

        self._deploy_bgp(hp, at)
        if config.domains:
            self._deploy_domains(hp, at)
        if config.tpot:
            self._deploy_tpot(hp, at)
        else:
            self.twinklenet.config.honeyprefixes.append(hp)
        if config.rdns:
            self._deploy_rdns(hp, at)

        # Reaction features are active from deployment.
        if config.aliased:
            hp.record(at, Feature.ALIASED)
        if hp.icmp_addresses() or config.aliased:
            hp.record(at, Feature.ICMP)
        if config.tcp_services or config.web_on_domain_ips or config.tpot:
            hp.record(at, Feature.TCP)
        if config.udp_ports or config.tpot:
            hp.record(at, Feature.UDP)
        get_journal().emit("deploy", name=hp.name, prefix=str(prefix), at=at)
        return hp

    def _deploy_bgp(self, hp: Honeyprefix, at: float) -> None:
        announced = hp.announced_prefix
        if self.speaker.roa_registry is not None:
            self.speaker.register_roa(announced, at=at)
        if hp.config.announce_fails:
            # H_TCP: configured in BIRD but never propagated.  Keep it in
            # the local RIB only; no BGP feature ever activates.
            from repro.routing.rib import Route

            self.speaker.local_rib.insert(Route(
                prefix=announced, origin_asn=self.speaker.asn,
                as_path=(self.speaker.asn,), installed_at=at,
            ))
            return
        self.speaker.announce(announced, at=at)
        visible = [
            event.visible_at
            for collector in self.speaker.collectors.collectors
            for event in collector.events()
            if not event.is_withdrawal and event.update.prefix == announced
        ]
        # Experiment start = first visibility at a public collector (§3.2).
        hp.record(min(visible) if visible else at, Feature.BGP)

    def _deploy_domains(self, hp: Honeyprefix, at: float) -> None:
        if self.registrar is None:
            raise RuntimeError("domain features require a registrar")
        for tld in hp.config.domains:
            n = next(self._domain_counter)
            domain = f"hp{n:02d}-{hp.prefix.network >> 80 & 0xFFFF:04x}.{tld}"
            self.registrar.register_domain(domain, at=at, registrant=self.name)
            target = hp.prefix.random_address(self._rng).value
            self.registrar.set_aaaa(domain, target, at=at)
            hp.domain_targets[domain] = target
            if hp.config.web_on_domain_ips:
                for port in WEB_PORTS:
                    hp.add_responsive(target, TCP, port)
        publication = self.registrar.tld(
            hp.config.domains[0]
        ).publication_time(at)
        hp.record(publication, Feature.DOMAIN)

        if hp.config.subdomains:
            # Subdomains go on the last registered domain (H_Org/net gave
            # them only to its .net domain).
            domain = list(hp.domain_targets)[-1]
            for sub in self.subdomain_names:
                fqdn = f"{sub}.{domain}"
                target = hp.prefix.random_address(self._rng).value
                self.registrar.set_aaaa(fqdn, target, at=at)
                hp.subdomain_targets[fqdn] = target
                if hp.config.web_on_domain_ips:
                    for port in WEB_PORTS:
                        hp.add_responsive(target, TCP, port)
            hp.record(publication, Feature.SUBDOMAIN)

    def _deploy_tpot(self, hp: Honeyprefix, at: float) -> None:
        containers = TPOT1_CONTAINERS if hp.config.tpot == 1 else TPOT2_CONTAINERS
        tpot = TPotInstance(f"tpot{hp.config.tpot}", containers)
        gateway = DnatGateway(hp.prefix, tpot, transmit=self._count_tx)
        gateway.set_transmit_batch(self._count_tx_batch)
        self.gateways[hp.name] = gateway
        # Mirror the T-Pot port surface onto the honeyprefix's responsive
        # map so hitlist probing and tactic attribution see it.
        for port in tpot.open_ports(TCP):
            hp.add_responsive(gateway.target_address, TCP, port)
        for port in tpot.open_ports(UDP):
            hp.add_responsive(gateway.target_address, UDP, port)

    def _deploy_rdns(self, hp: Honeyprefix, at: float) -> None:
        if self.reverse_zone is None:
            raise RuntimeError("rDNS feature requires a reverse zone")
        for i, addr in enumerate(hp.icmp_addresses()):
            self.reverse_zone.add_ptr(addr, f"host{i}.{self.name}.example", at=at)

    # -- later triggers ----------------------------------------------------

    def issue_tls(self, hp: Honeyprefix, at: float) -> list:
        """Issue TLS certificates for the honeyprefix's names (trigger).

        Root certificates for every registered domain, then subdomain
        certificates up to the CA's weekly rate limit (the paper stopped at
        50).  Returns the issued certificates.
        """
        if self.acme is None:
            raise RuntimeError("TLS features require an ACME client")
        if not hp.domain_targets:
            raise ValueError(f"{hp.name} has no domains to certify")
        certs = []
        for domain in hp.domain_targets:
            certs.append(self.acme.obtain([domain], at=at))
        hp.record(at, Feature.TLS_ROOT)
        if hp.config.tls_sub and hp.subdomain_targets:
            issued = 0
            for fqdn in hp.subdomain_targets:
                if issued >= MAX_SUBDOMAIN_CERTS:
                    break
                try:
                    certs.append(self.acme.obtain([fqdn], at=at))
                    issued += 1
                except RateLimitExceeded:
                    break
            if issued:
                hp.record(at, Feature.TLS_SUB)
        return certs

    def insert_hitlist(self, hp: Honeyprefix, at: float) -> list:
        """Manually insert honeyprefix addresses into the hitlist (trigger).

        Per §4.3.6: two addresses per applicable category — the first
        address of the prefix and one random address.
        """
        if self.hitlist is None:
            raise RuntimeError("hitlist insertion requires a hitlist service")
        entries = []
        first = hp.prefix.network | 1
        rand = hp.prefix.random_address(self._rng).value
        hp.manual_hitlist_addresses.extend([first, rand])
        categories = [HitlistCategory.ICMP]
        if hp.config.tpot:
            categories += [HitlistCategory.TCP80, HitlistCategory.TCP443,
                           HitlistCategory.UDP53]
            entries.append(self.hitlist.insert_manual(
                HitlistCategory.ALIASED, at=at, prefix=hp.prefix,
            ))
        for category in categories:
            for addr in (first, rand):
                entries.append(self.hitlist.insert_manual(
                    category, at=at, address=addr,
                ))
        hp.record(at, Feature.HITLIST)
        return entries

    def withdraw(self, hp: Honeyprefix, at: float) -> None:
        """Retract the honeyprefix's BGP announcement (§5.3.1's experiment)."""
        self.speaker.withdraw(hp.announced_prefix, at=at)
        hp.withdrawn_at = at
        get_journal().emit("retract", name=hp.name,
                           prefix=str(hp.announced_prefix), at=at)

    # -- data plane --------------------------------------------------------

    def honeyprefix_for(self, address: int) -> Honeyprefix | None:
        """The honeyprefix containing ``address``, or None."""
        return self._hp_by_48.get((address >> 80) << 80)

    def handle(self, pkt: Packet) -> None:
        """Receive one unsolicited packet: capture, then react."""
        self.capturer.capture(pkt)
        hp = self.honeyprefix_for(pkt.dst)
        if hp is None:
            return  # control space: pure darknet
        if hp.config.tpot:
            self.gateways[hp.name].handle(pkt)
        else:
            self.twinklenet.handle(pkt)

    def handle_batch(self, batch: PacketBatch) -> None:
        """Columnar fast path: capture a whole batch, then react.

        The batch is captured as one numpy chunk, split by honeyprefix /48
        truncation keys vectorized, and only the rows that can actually
        elicit a reply (aliased/bound ICMP, open TCP/UDP ports, every
        in-prefix TCP row for Twinklenet's session machinery) are
        materialized into per-packet honeypot calls.  Dark rows — the
        overwhelming majority — are bulk-accounted via ``note_dark`` so rx
        counters stay identical to the scalar path.
        """
        if len(batch) == 0:
            return
        registry = get_registry()
        tracer = get_tracer()
        with registry.timer("telescope.capture"), \
                tracer.span("telescope.capture", telescope=self.name,
                            packets=len(batch)):
            self.capturer.capture_batch(batch)
        if not self._hp_by_48:
            return
        with registry.timer("telescope.react"), \
                tracer.span("telescope.react", telescope=self.name):
            shift = np.uint64(16)  # /48 keeps 48 of hi's 64 bits
            hi48 = (batch.dst_hi >> shift) << shift
            if self._hp_keys_hi is None:
                self._hp_keys_hi = np.fromiter(
                    (key >> 64 for key in self._hp_by_48),
                    dtype=np.uint64, count=len(self._hp_by_48),
                )
            hit = np.isin(hi48, self._hp_keys_hi)
            if not hit.any():
                return  # control space: pure darknet
            for key_hi in np.unique(hi48[hit]):
                hp = self._hp_by_48[int(key_hi) << 64]
                sub = batch.select(hi48 == key_hi)
                if hp.config.tpot:
                    self._react_tpot_slice(hp, sub)
                else:
                    self._react_twinklenet_slice(hp, sub)

    def _react_tpot_slice(self, hp: Honeyprefix, sub: PacketBatch) -> None:
        """Route one honeyprefix's slice through its DNAT gateway."""
        if self.use_batch_react:
            self.gateways[hp.name].handle_batch(sub)
        else:
            self._react_tpot_slice_reference(hp, sub)

    def _react_tpot_slice_reference(self, hp: Honeyprefix,
                                    sub: PacketBatch) -> None:
        """Per-packet reference: materialize only rows the T-Pot surface
        can answer, bulk-account the rest."""
        gateway = self.gateways[hp.name]
        in_pref = sub.mask_dst_in(gateway.prefix)
        need = in_pref & (sub.proto == np.uint8(ICMPV6))
        tcp_ports = np.asarray(gateway.tpot.open_ports(TCP), dtype=np.uint16)
        udp_ports = np.asarray(gateway.tpot.open_ports(UDP), dtype=np.uint16)
        need |= (in_pref & (sub.proto == np.uint8(TCP))
                 & np.isin(sub.dport, tcp_ports))
        need |= (in_pref & (sub.proto == np.uint8(UDP))
                 & np.isin(sub.dport, udp_ports))
        idx = np.nonzero(need)[0]
        gateway.note_dark(len(sub) - len(idx))
        for i in idx:
            gateway.handle(sub.packet_at(int(i)))

    def _react_twinklenet_slice(self, hp: Honeyprefix,
                                sub: PacketBatch) -> None:
        """Route one honeyprefix's slice through Twinklenet."""
        if self.use_batch_react:
            self.twinklenet.handle_batch(sub, owner_hint=hp)
        else:
            self._react_twinklenet_slice_reference(hp, sub)

    def _react_twinklenet_slice_reference(self, hp: Honeyprefix,
                                          sub: PacketBatch) -> None:
        """Per-packet reference: TCP rows always materialize (session table
        + eviction sweeps need every in-prefix segment); ICMP/UDP rows
        materialize only when the responsiveness map can answer them.
        """
        in_pref = sub.mask_dst_in(hp.prefix)
        need = in_pref & (sub.proto == np.uint8(TCP))
        icmp = in_pref & (sub.proto == np.uint8(ICMPV6))
        if hp.config.aliased:
            need |= icmp
        elif icmp.any():
            set_hi, set_lo = hp.icmp_address_columns()
            need |= icmp & member_mask_u64(sub.dst_hi, sub.dst_lo,
                                           set_hi, set_lo)
        udp = in_pref & (sub.proto == np.uint8(UDP))
        if udp.any():
            # One composite-key membership test over the cached
            # (address, port) binding columns replaces the old
            # per-responsive-address Python loop.
            set_hi, set_lo, set_ports = hp.binding_columns(UDP)
            if len(set_hi):
                need |= udp & member_mask_cols(
                    (sub.dst_hi, sub.dst_lo, sub.dport),
                    (set_hi, set_lo, set_ports))
        idx = np.nonzero(need)[0]
        self.twinklenet.note_dark(len(sub) - len(idx))
        for i in idx:
            self.twinklenet.handle(sub.packet_at(int(i)))

    # -- hitlist oracle ------------------------------------------------------

    def interaction_level(self, address: int, at: float) -> int:
        """How rich the service behind ``address`` is at time ``at``.

        0 = dark, 1 = low interaction (Twinklenet), 2 = high interaction
        (T-Pot).  Scanner strategies use this to modulate engagement — the
        paper's key operational finding is that high-interaction honeypots
        amplify scanner attention by an order of magnitude.
        """
        hp = self.honeyprefix_for(address)
        if hp is None or hp.deployed_at is None or hp.deployed_at > at:
            return 0
        if hp.withdrawn_at is not None and at >= hp.withdrawn_at:
            return 0
        if hp.config.tpot:
            return 2
        if hp.config.aliased or address in hp.responsive:
            return 1
        return 0

    def responds(self, address: int, proto: int, port: int | None,
                 at: float) -> bool:
        """Responsiveness oracle for the hitlist prober."""
        hp = self.honeyprefix_for(address)
        if hp is None or hp.deployed_at is None or hp.deployed_at > at:
            return False
        if hp.withdrawn_at is not None and at >= hp.withdrawn_at:
            return False
        if hp.config.tpot:
            gateway = self.gateways[hp.name]
            return gateway.responds(address, proto, port)
        return hp.responds(address, proto, port)
