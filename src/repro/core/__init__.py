"""The paper's primary contribution: proactive and passive IPv6 telescopes.

* :mod:`repro.core.features` — the attraction/reaction feature vocabulary
  (Table 2's column headers and §5.4's letter codes).
* :mod:`repro.core.honeyprefix` — honeyprefix configurations and the
  canonical 27-prefix deployment of Table 2.
* :mod:`repro.core.twinklenet` — the low-interaction multi-protocol
  IP-aliasing honeypot (Table 7 semantics).
* :mod:`repro.core.tpot` — the high-interaction honeypot stack: T-Pot
  containers (Table 5), DNAT gateway, 6-to-4 reverse proxy.
* :mod:`repro.core.darknet` — passive darknet telescopes.
* :mod:`repro.core.capture` — packet capture into analysis-ready records.
* :mod:`repro.core.proactive` — the orchestrator wiring BGP, DNS, TLS,
  hitlist, honeypots, and capture together.
"""

from repro.core.features import Feature, FEATURE_CODES
from repro.core.honeyprefix import (
    Honeyprefix,
    HoneyprefixConfig,
    IcmpMode,
    standard_configs,
)
from repro.core.twinklenet import Twinklenet, TwinklenetConfig
from repro.core.tpot import TPotInstance, DnatGateway, TPOT1_CONTAINERS, TPOT2_CONTAINERS
from repro.core.darknet import DarknetTelescope
from repro.core.capture import PacketCapturer
from repro.core.proactive import ProactiveTelescope

__all__ = [
    "Feature",
    "FEATURE_CODES",
    "Honeyprefix",
    "HoneyprefixConfig",
    "IcmpMode",
    "standard_configs",
    "Twinklenet",
    "TwinklenetConfig",
    "TPotInstance",
    "DnatGateway",
    "TPOT1_CONTAINERS",
    "TPOT2_CONTAINERS",
    "DarknetTelescope",
    "PacketCapturer",
    "ProactiveTelescope",
]
