"""Common-subdomain wordlist.

The paper selected 374 subdomain names appearing on at least three of four
popular lists (Commonspeak2, DNSpop, SecLists, dnscan).  We ship the
high-consensus head of those lists verbatim and derive the remainder
deterministically, preserving the property that matters: a fixed, publicly
known name set that zone-file- and CT-watching scanners can also enumerate.
"""

from __future__ import annotations

#: Names that appear on essentially every public subdomain list.
COMMON_SUBDOMAINS_HEAD: tuple[str, ...] = (
    "www", "mail", "ftp", "ns", "ns1", "ns2", "ns3", "ns4", "smtp", "pop",
    "pop3", "imap", "webmail", "remote", "vpn", "mx", "mx1", "mx2", "blog",
    "dev", "test", "staging", "api", "admin", "portal", "cdn", "shop",
    "store", "app", "apps", "m", "mobile", "static", "assets", "img",
    "images", "video", "media", "docs", "wiki", "support", "help", "status",
    "git", "gitlab", "svn", "jenkins", "ci", "build", "monitor", "nagios",
    "zabbix", "grafana", "kibana", "elastic", "db", "mysql", "postgres",
    "redis", "mongo", "ldap", "ad", "dc", "dns", "dhcp", "proxy", "gw",
    "gateway", "router", "fw", "firewall", "nat", "voip", "sip", "pbx",
    "conference", "meet", "chat", "irc", "forum", "news", "lists", "list",
    "search", "mirror", "download", "downloads", "upload", "files", "file",
    "backup", "archive", "old", "new", "beta", "alpha", "demo", "sandbox",
    "lab", "labs", "research", "intranet", "extranet", "internal", "corp",
    "office", "hr", "crm", "erp", "billing", "pay", "payment", "secure",
    "login", "auth", "sso", "id", "identity", "account", "accounts", "my",
    "dashboard", "panel", "cpanel", "whm", "webdisk", "autodiscover",
    "autoconfig", "owa", "exchange", "outlook", "calendar", "drive", "cloud",
    "s3", "storage", "backup1", "ns5", "smtp1", "smtp2", "mail1", "mail2",
    "web", "web1", "web2", "host", "server", "srv", "node", "edge", "origin",
    "cache", "lb", "balancer", "stats", "analytics", "metrics", "tracking",
    "ads", "ad1", "partner", "partners", "client", "clients", "customer",
    "customers", "go", "link", "links", "redirect", "short", "url",
)


def common_subdomains(count: int = 374) -> list[str]:
    """Return the ``count``-name subdomain list the telescope deploys.

    The head is the literal high-consensus list; names beyond it are
    deterministic numbered service labels (``svc001`` ...), keeping the
    total stable at the paper's 374 regardless of head length.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative: {count}")
    names = list(COMMON_SUBDOMAINS_HEAD[:count])
    i = 1
    while len(names) < count:
        names.append(f"svc{i:03d}")
        i += 1
    return names
