"""T-Pot high-interaction honeypots behind a DNAT + 6-to-4 gateway.

The paper's Appendix B setup, reproduced stage by stage:

1. an access router forwards honeyprefix traffic to a **DNAT gateway**,
   which rewrites every destination to the prefix's first address (``::1``)
   plus a fresh source port, logging ``(timestamp, original dst, source
   port)`` so original destinations can be recovered from T-Pot logs;
2. a **reverse proxy** performs static 6-to-4 translation to the T-Pot
   instance's IPv4 address and routes by protocol/port to the right
   container;
3. the **T-Pot instance** runs the containers of Table 5 (cowrie, snare,
   dionaea, ...), each answering on its ports with a service banner and
   logging the interaction.

Each T-Pot instance can only bind a single IPv4 address — the constraint
that forced the two-stage design in the first place.

The gateway has two entry points sharing one NAT state: per-packet
:meth:`DnatGateway.handle` (the reference path) and columnar
:meth:`DnatGateway.handle_batch`, which rewrites destinations, allocates
source ports per distinct flow, appends the NAT log as columns
(:class:`DnatLog`) and emits all container replies as one batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.net.addr import IPv6Prefix, group_ids_cols, mask_u64
from repro.net.batch import PacketBatch, WireBatch, WireBuilder, as_wire
from repro.obs import get_registry
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    IcmpType,
    Packet,
    TcpFlags,
    icmp_echo_reply,
    icmp_echo_request_mask,
    tcp_segment,
    tcp_syn_mask,
    udp_datagram,
)

_U64 = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True, slots=True)
class Container:
    """One honeypot container: name plus its TCP/UDP port surface."""

    name: str
    tcp_ports: tuple[int, ...] = ()
    udp_ports: tuple[int, ...] = ()
    banner: bytes = b""

    def listens(self, proto: int, port: int) -> bool:
        if proto == TCP:
            return port in self.tcp_ports
        if proto == UDP:
            return port in self.udp_ports
        return False


#: Table 5, H_TPot1 column.
TPOT1_CONTAINERS: tuple[Container, ...] = (
    Container("cowrie", tcp_ports=(22, 23), banner=b"SSH-2.0-OpenSSH_8.2\r\n"),
    Container("mailoney", tcp_ports=(25,), banner=b"220 mail ESMTP\r\n"),
    Container("snare", tcp_ports=(80,), banner=b"HTTP/1.1 200 OK\r\n"),
    Container("citrixhoneypot", tcp_ports=(443,), banner=b"HTTP/1.1 200 OK\r\n"),
    Container("ciscoasa", tcp_ports=(8443,), udp_ports=(5000,)),
    Container("redishoneypot", tcp_ports=(6379,), banner=b"-ERR unknown\r\n"),
    Container("adbhoney", tcp_ports=(5555,)),
    Container(
        "dionaea",
        tcp_ports=(20, 21, 42, 81, 135, 443, 445, 1433, 1723, 1883, 3306, 27017),
        udp_ports=(69,),
    ),
    Container("ddospot", udp_ports=(19, 53, 123, 161, 1900)),
)

#: Table 5, H_TPot2 column.
TPOT2_CONTAINERS: tuple[Container, ...] = (
    Container("mailoney", tcp_ports=(25,), banner=b"220 mail ESMTP\r\n"),
    Container("snare", tcp_ports=(80,), banner=b"HTTP/1.1 200 OK\r\n"),
    Container("citrixhoneypot", tcp_ports=(443,), banner=b"HTTP/1.1 200 OK\r\n"),
    Container("ciscoasa", tcp_ports=(8443,), udp_ports=(5000,)),
    Container("adbhoney", tcp_ports=(5555,)),
    Container("sentrypeer", udp_ports=(5060,)),
    Container(
        "dionaea",
        tcp_ports=(20, 21, 42, 81, 135, 443, 445, 1433, 1723, 1883, 3306, 27017),
        udp_ports=(69,),
    ),
    Container("ddospot", udp_ports=(19, 53, 123, 161, 1900)),
    Container("conpot", tcp_ports=(1025, 50100), udp_ports=(161,)),
    Container("elasticpot", tcp_ports=(9200,), banner=b'{"name":"es"}'),
    Container("dicompot", tcp_ports=(11112,)),
)


@dataclass(frozen=True, slots=True)
class DnatLogEntry:
    """One NAT-table record: enough to recover original destinations."""

    timestamp: float
    original_dst: int
    source_port: int


class DnatLog:
    """The gateway's NAT log, stored columnar, read like a list.

    Scalar appends accumulate in plain-list segments; the batch path
    appends whole column segments (timestamps float64, destination halves
    uint64, ports int64) without materializing an entry object per flow.
    Reads — indexing, iteration, ``reversed``, equality against lists —
    materialize :class:`DnatLogEntry` values on demand, so every existing
    consumer (tests, examples, T-Pot log joins) sees the familiar list.
    """

    __slots__ = ("_segments", "_len")

    def __init__(self) -> None:
        # Each segment is ("rows", [DnatLogEntry, ...]) or
        # ("cols", (ts, dst_hi, dst_lo, ports)).
        self._segments: list[tuple[str, object]] = []
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def append(self, entry: DnatLogEntry) -> None:
        if not self._segments or self._segments[-1][0] != "rows":
            self._segments.append(("rows", []))
        self._segments[-1][1].append(entry)
        self._len += 1

    def extend_columns(self, ts: np.ndarray, dst_hi: np.ndarray,
                       dst_lo: np.ndarray, ports: np.ndarray) -> None:
        """Append one flow-column segment (the batch path's bulk append)."""
        if len(ts) == 0:
            return
        self._segments.append(("cols", (
            np.asarray(ts, dtype=np.float64),
            np.asarray(dst_hi, dtype=np.uint64),
            np.asarray(dst_lo, dtype=np.uint64),
            np.asarray(ports, dtype=np.int64),
        )))
        self._len += len(ts)

    @staticmethod
    def _seg_len(seg: tuple[str, object]) -> int:
        kind, data = seg
        return len(data) if kind == "rows" else len(data[0])

    @staticmethod
    def _seg_entry(seg: tuple[str, object], i: int) -> DnatLogEntry:
        kind, data = seg
        if kind == "rows":
            return data[i]
        ts, hi, lo, ports = data
        return DnatLogEntry(float(ts[i]),
                            (int(hi[i]) << 64) | int(lo[i]), int(ports[i]))

    def __getitem__(self, i):
        if isinstance(i, slice):
            return list(self)[i]
        if i < 0:
            i += self._len
        if not 0 <= i < self._len:
            raise IndexError("DnatLog index out of range")
        for seg in self._segments:
            n = self._seg_len(seg)
            if i < n:
                return self._seg_entry(seg, i)
            i -= n
        raise IndexError("DnatLog index out of range")

    def __iter__(self) -> Iterator[DnatLogEntry]:
        for seg in self._segments:
            for i in range(self._seg_len(seg)):
                yield self._seg_entry(seg, i)

    def __reversed__(self) -> Iterator[DnatLogEntry]:
        for seg in reversed(self._segments):
            for i in range(self._seg_len(seg) - 1, -1, -1):
                yield self._seg_entry(seg, i)

    def __eq__(self, other) -> bool:
        if isinstance(other, DnatLog):
            return list(self) == list(other)
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"DnatLog({len(self)} entries)"

    def last_match(self, timestamp: float, source_port: int) -> int | None:
        """Latest-appended original destination with this source port at or
        before ``timestamp`` — vectorized per column segment."""
        for seg in reversed(self._segments):
            kind, data = seg
            if kind == "rows":
                for entry in reversed(data):
                    if (entry.source_port == source_port
                            and entry.timestamp <= timestamp):
                        return entry.original_dst
            else:
                ts, hi, lo, ports = data
                hit = np.nonzero((ports == source_port) & (ts <= timestamp))[0]
                if len(hit):
                    i = int(hit[-1])
                    return (int(hi[i]) << 64) | int(lo[i])
        return None


@dataclass(frozen=True, slots=True)
class InteractionLog:
    """One T-Pot container interaction (what T-Pot's own logs record)."""

    timestamp: float
    container: str
    src: int
    proto: int
    port: int
    #: T-Pot sees the *translated* destination; analysis joins the NAT log.
    translated_dst: int
    data: bytes = b""


class TPotInstance:
    """One T-Pot: a single-address honeypot running Table 5 containers."""

    def __init__(self, name: str, containers: tuple[Container, ...],
                 ipv4_address: int = 0x0A00_0001):
        self.name = name
        self.containers = containers
        self.ipv4_address = ipv4_address
        self.interactions: list[InteractionLog] = []
        self._m_interactions = get_registry().counter("tpot.interactions")
        surface: dict[tuple[int, int], Container] = {}
        for container in containers:
            for port in container.tcp_ports:
                surface.setdefault((TCP, port), container)
            for port in container.udp_ports:
                surface.setdefault((UDP, port), container)
        self._surface = surface
        self._port_luts: dict[int, np.ndarray] = {}
        self.container_names = tuple(c.name for c in self.containers)

    def listens(self, proto: int, port: int) -> bool:
        return (proto, port) in self._surface

    def open_ports(self, proto: int) -> tuple[int, ...]:
        return tuple(sorted(p for pr, p in self._surface if pr == proto))

    def port_lut(self, proto: int) -> np.ndarray:
        """Full 64K port lookup table: container index, -1 when closed.

        Turns the batch path's open-port test and container routing into
        one fancy-index — ``lut[dport]`` — per column.
        """
        lut = self._port_luts.get(proto)
        if lut is None:
            lut = np.full(65536, -1, dtype=np.int32)
            for i, container in enumerate(self.containers):
                ports = (container.tcp_ports if proto == TCP
                         else container.udp_ports)
                for port in ports:
                    if lut[port] < 0:  # first container wins, as _surface
                        lut[port] = i
            self._port_luts[proto] = lut
        return lut

    def log_interactions(self, entries: list[InteractionLog]) -> None:
        """Record a batch of interactions (the gateway's columnar path)."""
        self.interactions.extend(entries)
        self._m_interactions.inc(len(entries))

    def handle(self, pkt: Packet) -> list[Packet]:
        """Process a (translated) packet; return the response packets."""
        container = self._surface.get((pkt.proto, pkt.dport))
        if container is None:
            return []
        if pkt.proto == TCP:
            if pkt.is_tcp_syn:
                return [tcp_segment(
                    pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                    TcpFlags.SYN | TcpFlags.ACK, seq=0, ack=pkt.seq + 1,
                )]
            if pkt.flags & TcpFlags.ACK and not pkt.payload:
                # Handshake completion: high-interaction pots speak first.
                self._m_interactions.inc()
                self.interactions.append(InteractionLog(
                    pkt.timestamp, container.name, pkt.src, TCP, pkt.dport,
                    pkt.dst,
                ))
                if container.banner:
                    return [tcp_segment(
                        pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                        TcpFlags.PSH | TcpFlags.ACK, seq=1, ack=pkt.seq,
                        payload=container.banner,
                    )]
                return []
            if pkt.payload:
                self._m_interactions.inc()
                self.interactions.append(InteractionLog(
                    pkt.timestamp, container.name, pkt.src, TCP, pkt.dport,
                    pkt.dst, data=pkt.payload,
                ))
                return [tcp_segment(
                    pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                    TcpFlags.ACK, seq=1, ack=pkt.seq + len(pkt.payload),
                )]
            return []
        # UDP: answer with a generic service response.
        self._m_interactions.inc()
        self.interactions.append(InteractionLog(
            pkt.timestamp, container.name, pkt.src, UDP, pkt.dport,
            pkt.dst, data=pkt.payload,
        ))
        return [udp_datagram(
            pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
            payload=b"\x00",
        )]


class DnatGateway:
    """The access-router DNAT stage fronting one T-Pot honeyprefix.

    Rewrites every in-prefix destination to ``prefix::1`` with a fresh
    source port, keeps the NAT log, answers ICMP for the whole (aliased)
    prefix itself, and reverse-translates T-Pot responses on the way out.
    """

    def __init__(
        self,
        prefix: IPv6Prefix,
        tpot: TPotInstance,
        transmit: Callable[[Packet], None] | None = None,
        max_nat_entries: int = 1_000_000,
    ):
        self.prefix = prefix
        self.tpot = tpot
        self._transmit = transmit or (lambda pkt: None)
        self._transmit_batch: Callable[[WireBatch], None] | None = None
        self.nat_log = DnatLog()
        self.max_nat_entries = max_nat_entries
        self._next_port = 32_768
        #: (scanner addr, assigned source port) -> original destination.
        self._flows_d: dict[tuple[int, int], int] = {}
        #: (scanner addr, scanner port, original dst, proto) -> NAT port,
        #: so every packet of one flow reuses the same translation.
        self._flow_ports_d: dict[tuple[int, int, int, int], int] = {}
        #: Full (src, dst, sport, proto) key of every flow ever allocated,
        #: packed into one int — exact membership mirror of _flow_ports,
        #: testable without building Python key tuples or syncing dicts.
        self._flow_seen: set[int] = set()
        #: Column blocks of flows the batch path allocated whose dict
        #: entries have not been materialized yet (see _sync_flows).
        self._pending_flows: list[tuple] = []
        self.rx_count = 0
        self.tx_count = 0
        registry = get_registry()
        self._m_rx = registry.counter("tpot.gateway.rx")
        self._m_tx = registry.counter("tpot.gateway.tx")
        self._m_nat = registry.counter("tpot.gateway.nat_entries")

    def set_transmit(self, transmit: Callable[[Packet], None]) -> None:
        self._transmit = transmit

    def set_transmit_batch(
            self, transmit: Callable[[WireBatch], None]) -> None:
        """Columnar transmit: :meth:`handle_batch` hands its whole reply
        batch to this callback instead of materializing per-packet."""
        self._transmit_batch = transmit

    def _send(self, pkt: Packet) -> None:
        self.tx_count += 1
        self._m_tx.inc()
        self._transmit(pkt)

    @property
    def target_address(self) -> int:
        """The ``::1`` address all flows are translated to."""
        return self.prefix.network | 1

    def _assign_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if self._next_port > 60_999:
            self._next_port = 32_768
        return port

    def responds(self, address: int, proto: int, port: int | None) -> bool:
        """Responsiveness oracle: aliased ICMP + T-Pot's port surface."""
        if address not in self.prefix:
            return False
        if proto == ICMPV6:
            return True
        return port is not None and self.tpot.listens(proto, port)

    def note_dark(self, n: int) -> None:
        """Account ``n`` packets that were received but provably could not
        elicit a reply (the columnar fast path skips materializing them)."""
        self.rx_count += n
        self._m_rx.inc(n)

    def handle(self, pkt: Packet) -> None:
        """Process one packet arriving for the honeyprefix."""
        self.rx_count += 1
        self._m_rx.inc()
        if pkt.dst not in self.prefix:
            return
        if pkt.proto == ICMPV6:
            if pkt.is_icmp_echo_request:
                self._send(icmp_echo_reply(pkt))
            return
        if not self.tpot.listens(pkt.proto, pkt.dport):
            return  # closed port: captured upstream, never answered
        self._relay(pkt, self._send)

    @property
    def _flows(self) -> dict:
        if self._pending_flows:
            self._sync_flows()
        return self._flows_d

    @property
    def _flow_ports(self) -> dict:
        if self._pending_flows:
            self._sync_flows()
        return self._flow_ports_d

    def _sync_flows(self) -> None:
        """Materialize dict entries for flows the batch path allocated —
        deferred until something actually consults the dicts (the scalar
        relay, or state inspection), so pure-probe traffic never pays for
        Python key tuples."""
        pending, self._pending_flows = self._pending_flows, []
        for shi, slo, sp, dhi, dlo, pr, ports in pending:
            src128 = [(h << 64) | l
                      for h, l in zip(shi.tolist(), slo.tolist())]
            dst128 = [(h << 64) | l
                      for h, l in zip(dhi.tolist(), dlo.tolist())]
            port_list = ports.tolist()
            self._flow_ports_d.update(zip(
                zip(src128, sp.tolist(), dst128, pr.tolist()), port_list))
            self._flows_d.update(zip(zip(src128, port_list), dst128))

    def _relay(self, pkt: Packet, emit: Callable[[Packet], None]) -> None:
        """DNAT-forward one open-port packet to T-Pot, emitting each reply.

        One implementation serves the scalar path and the batch path's
        per-row fallback — there is exactly one NAT state machine.
        """
        flow_key = (pkt.src, pkt.sport, pkt.dst, pkt.proto)
        nat_port = self._flow_ports.get(flow_key)
        if nat_port is None:
            nat_port = self._assign_port()
            self._flow_ports[flow_key] = nat_port
            self._flow_seen.add(
                (pkt.src << 145) | (pkt.dst << 17) | (pkt.sport << 1)
                | (1 if pkt.proto == TCP else 0))
            self._m_nat.inc()
            if len(self.nat_log) < self.max_nat_entries:
                self.nat_log.append(
                    DnatLogEntry(pkt.timestamp, pkt.dst, nat_port)
                )
            self._flows[(pkt.src, nat_port)] = pkt.dst
        translated = Packet(
            timestamp=pkt.timestamp, src=pkt.src, dst=self.target_address,
            proto=pkt.proto, sport=nat_port, dport=pkt.dport,
            flags=pkt.flags, payload=pkt.payload, seq=pkt.seq, ack=pkt.ack,
        )
        for response in self.tpot.handle(translated):
            # response.dst is the scanner, response.dport the NAT port we
            # assigned; the flow table gives back the address the scanner
            # actually probed so the reply appears to come from it.
            original_dst = self._flows.get((response.dst, response.dport))
            emit(Packet(
                timestamp=response.timestamp,
                src=original_dst if original_dst is not None else response.src,
                dst=response.dst,
                proto=response.proto,
                sport=response.sport,
                # Restore the scanner's real source port.
                dport=pkt.sport,
                flags=response.flags,
                payload=response.payload,
                seq=response.seq,
                ack=response.ack,
            ))

    # -- columnar path ---------------------------------------------------

    def handle_batch(self, batch: PacketBatch | WireBatch) -> WireBatch:
        """Process a whole batch; returns the reply batch (row order =
        input row order, matching the per-packet reference exactly)."""
        wire = as_wire(batch)
        n = len(wire)
        self.rx_count += n
        self._m_rx.inc(n)
        out = WireBuilder()
        if n:
            self._react_batch(wire, out)
        replies = out.build()
        if len(replies):
            self.tx_count += len(replies)
            self._m_tx.inc(len(replies))
            if self._transmit_batch is not None:
                self._transmit_batch(replies)
            else:
                for pkt in replies.to_packets():
                    self._transmit(pkt)
        return replies

    def _react_batch(self, wire: WireBatch, out: WireBuilder) -> None:
        hi, lo = mask_u64(wire.dst_hi, wire.dst_lo, self.prefix.length)
        in_pref = ((hi == np.uint64((self.prefix.network >> 64) & _U64))
                   & (lo == np.uint64(self.prefix.network & _U64)))
        # ICMP: the gateway answers echo everywhere in the aliased prefix.
        echo = np.nonzero(
            in_pref & icmp_echo_request_mask(wire.proto, wire.sport))[0]
        if len(echo):
            out.append_block(
                echo, wire.ts[echo],
                wire.dst_hi[echo], wire.dst_lo[echo],
                wire.src_hi[echo], wire.src_lo[echo],
                ICMPV6, int(IcmpType.ECHO_REPLY), wire.dport[echo],
                payload_id=out.translate_ids(wire.payloads,
                                             wire.payload_id[echo]),
            )
        tcp_lut = self.tpot.port_lut(TCP)
        udp_lut = self.tpot.port_lut(UDP)
        is_tcp = wire.proto == np.uint8(TCP)
        is_udp = wire.proto == np.uint8(UDP)
        open_mask = in_pref & ((is_tcp & (tcp_lut[wire.dport] >= 0))
                               | (is_udp & (udp_lut[wire.dport] >= 0)))
        rows = np.nonzero(open_mask)[0]
        if len(rows) == 0:
            return
        tcp_sel = is_tcp[rows]
        if bool((tcp_sel & ~tcp_syn_mask(wire.flags[rows])).any()):
            # Handshake completions / data segments in the batch (test
            # traffic, not probes): run the shared NAT relay row by row.
            for i in rows.tolist():
                self._relay(wire.packet_at(i),
                            lambda p, _i=i: out.append_packet(_i, p))
            return
        # Flow allocation over distinct (src, sport, dst, proto) keys, in
        # first-appearance order — the order the scalar path would assign
        # ports and append NAT log entries in.
        cols = (wire.src_hi[rows], wire.src_lo[rows],
                wire.sport[rows].astype(np.uint64),
                wire.dst_hi[rows], wire.dst_lo[rows],
                wire.proto[rows].astype(np.uint64))
        ids, n_groups = group_ids_cols(cols)
        first = np.full(n_groups, len(rows), dtype=np.int64)
        np.minimum.at(first, ids, np.arange(len(rows), dtype=np.int64))
        # Representative row of each distinct flow, in first-appearance
        # order — the order the scalar path would assign ports in.
        rep = rows[first[np.argsort(first, kind="stable")]]
        # The whole (src, dst, sport, proto) key packs into one int, so
        # set membership against _flow_seen is exact — no tuple keys, no
        # dict materialization on the hot path.
        lowbits = ((wire.sport[rep].astype(np.int64) << 1)
                   | (wire.proto[rep] == np.uint8(TCP)).astype(np.int64))
        packed = [(sh << 209) | (sl << 145) | (dh << 81) | (dl << 17) | l
                  for sh, sl, dh, dl, l in zip(
                      wire.src_hi[rep].tolist(), wire.src_lo[rep].tolist(),
                      wire.dst_hi[rep].tolist(), wire.dst_lo[rep].tolist(),
                      lowbits.tolist())]
        seen = self._flow_seen
        new_pos = np.fromiter(
            (i for i, p in enumerate(packed) if p not in seen),
            dtype=np.int64)
        n_new = len(new_pos)
        if n_new:
            # _assign_port hands out sequential ports wrapping from 60999
            # back to 32768 — arange-modulo reproduces the series exactly.
            start = self._next_port - 32_768
            span = 61_000 - 32_768
            ports = (start + np.arange(n_new)) % span + 32_768
            self._next_port = (start + n_new) % span + 32_768
            new_rep = rep[new_pos]
            self._pending_flows.append((
                wire.src_hi[new_rep], wire.src_lo[new_rep],
                wire.sport[new_rep], wire.dst_hi[new_rep],
                wire.dst_lo[new_rep], wire.proto[new_rep], ports))
            seen.update(packed[i] for i in new_pos.tolist())
            self._m_nat.inc(n_new)
            log_room = self.max_nat_entries - len(self.nat_log)
            if log_room > 0:
                logged = new_rep[:log_room]
                self.nat_log.extend_columns(
                    wire.ts[logged],
                    wire.dst_hi[logged], wire.dst_lo[logged],
                    ports[:log_room],
                )
        # Replies are NAT-invisible: sourced from the address the scanner
        # probed, back to its real port — the reverse translation the
        # scalar path performs via the flow table, precomputed.
        tcp_idx = rows[tcp_sel]
        if len(tcp_idx):
            out.append_block(
                tcp_idx, wire.ts[tcp_idx],
                wire.dst_hi[tcp_idx], wire.dst_lo[tcp_idx],
                wire.src_hi[tcp_idx], wire.src_lo[tcp_idx],
                TCP, wire.dport[tcp_idx], wire.sport[tcp_idx],
                flags=int(TcpFlags.SYN | TcpFlags.ACK),
                seq=0, ack=wire.seq[tcp_idx] + 1,
            )
        udp_idx = rows[~tcp_sel]
        if len(udp_idx):
            names = self.tpot.container_names
            target = self.target_address
            entries = [
                InteractionLog(
                    t, names[c], (s_hi << 64) | s_lo, UDP, p, target,
                    data=b"" if pid < 0 else wire.payloads[pid],
                )
                for t, c, s_hi, s_lo, p, pid in zip(
                    wire.ts[udp_idx].tolist(),
                    udp_lut[wire.dport[udp_idx]].tolist(),
                    wire.src_hi[udp_idx].tolist(),
                    wire.src_lo[udp_idx].tolist(),
                    wire.dport[udp_idx].tolist(),
                    wire.payload_id[udp_idx].tolist(),
                )
            ]
            self.tpot.log_interactions(entries)
            out.append_block(
                udp_idx, wire.ts[udp_idx],
                wire.dst_hi[udp_idx], wire.dst_lo[udp_idx],
                wire.src_hi[udp_idx], wire.src_lo[udp_idx],
                UDP, wire.dport[udp_idx], wire.sport[udp_idx],
                payload_id=out.intern(b"\x00"),
            )

    def recover_destination(self, timestamp: float, source_port: int) -> int | None:
        """Join a T-Pot log line back to its original IPv6 destination."""
        return self.nat_log.last_match(timestamp, source_port)
