"""T-Pot high-interaction honeypots behind a DNAT + 6-to-4 gateway.

The paper's Appendix B setup, reproduced stage by stage:

1. an access router forwards honeyprefix traffic to a **DNAT gateway**,
   which rewrites every destination to the prefix's first address (``::1``)
   plus a fresh source port, logging ``(timestamp, original dst, source
   port)`` so original destinations can be recovered from T-Pot logs;
2. a **reverse proxy** performs static 6-to-4 translation to the T-Pot
   instance's IPv4 address and routes by protocol/port to the right
   container;
3. the **T-Pot instance** runs the containers of Table 5 (cowrie, snare,
   dionaea, ...), each answering on its ports with a service banner and
   logging the interaction.

Each T-Pot instance can only bind a single IPv4 address — the constraint
that forced the two-stage design in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.net.addr import IPv6Prefix
from repro.obs import get_registry
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    Packet,
    TcpFlags,
    icmp_echo_reply,
    tcp_segment,
    udp_datagram,
)


@dataclass(frozen=True, slots=True)
class Container:
    """One honeypot container: name plus its TCP/UDP port surface."""

    name: str
    tcp_ports: tuple[int, ...] = ()
    udp_ports: tuple[int, ...] = ()
    banner: bytes = b""

    def listens(self, proto: int, port: int) -> bool:
        if proto == TCP:
            return port in self.tcp_ports
        if proto == UDP:
            return port in self.udp_ports
        return False


#: Table 5, H_TPot1 column.
TPOT1_CONTAINERS: tuple[Container, ...] = (
    Container("cowrie", tcp_ports=(22, 23), banner=b"SSH-2.0-OpenSSH_8.2\r\n"),
    Container("mailoney", tcp_ports=(25,), banner=b"220 mail ESMTP\r\n"),
    Container("snare", tcp_ports=(80,), banner=b"HTTP/1.1 200 OK\r\n"),
    Container("citrixhoneypot", tcp_ports=(443,), banner=b"HTTP/1.1 200 OK\r\n"),
    Container("ciscoasa", tcp_ports=(8443,), udp_ports=(5000,)),
    Container("redishoneypot", tcp_ports=(6379,), banner=b"-ERR unknown\r\n"),
    Container("adbhoney", tcp_ports=(5555,)),
    Container(
        "dionaea",
        tcp_ports=(20, 21, 42, 81, 135, 443, 445, 1433, 1723, 1883, 3306, 27017),
        udp_ports=(69,),
    ),
    Container("ddospot", udp_ports=(19, 53, 123, 161, 1900)),
)

#: Table 5, H_TPot2 column.
TPOT2_CONTAINERS: tuple[Container, ...] = (
    Container("mailoney", tcp_ports=(25,), banner=b"220 mail ESMTP\r\n"),
    Container("snare", tcp_ports=(80,), banner=b"HTTP/1.1 200 OK\r\n"),
    Container("citrixhoneypot", tcp_ports=(443,), banner=b"HTTP/1.1 200 OK\r\n"),
    Container("ciscoasa", tcp_ports=(8443,), udp_ports=(5000,)),
    Container("adbhoney", tcp_ports=(5555,)),
    Container("sentrypeer", udp_ports=(5060,)),
    Container(
        "dionaea",
        tcp_ports=(20, 21, 42, 81, 135, 443, 445, 1433, 1723, 1883, 3306, 27017),
        udp_ports=(69,),
    ),
    Container("ddospot", udp_ports=(19, 53, 123, 161, 1900)),
    Container("conpot", tcp_ports=(1025, 50100), udp_ports=(161,)),
    Container("elasticpot", tcp_ports=(9200,), banner=b'{"name":"es"}'),
    Container("dicompot", tcp_ports=(11112,)),
)


@dataclass(frozen=True, slots=True)
class DnatLogEntry:
    """One NAT-table record: enough to recover original destinations."""

    timestamp: float
    original_dst: int
    source_port: int


@dataclass(frozen=True, slots=True)
class InteractionLog:
    """One T-Pot container interaction (what T-Pot's own logs record)."""

    timestamp: float
    container: str
    src: int
    proto: int
    port: int
    #: T-Pot sees the *translated* destination; analysis joins the NAT log.
    translated_dst: int
    data: bytes = b""


class TPotInstance:
    """One T-Pot: a single-address honeypot running Table 5 containers."""

    def __init__(self, name: str, containers: tuple[Container, ...],
                 ipv4_address: int = 0x0A00_0001):
        self.name = name
        self.containers = containers
        self.ipv4_address = ipv4_address
        self.interactions: list[InteractionLog] = []
        self._m_interactions = get_registry().counter("tpot.interactions")
        surface: dict[tuple[int, int], Container] = {}
        for container in containers:
            for port in container.tcp_ports:
                surface.setdefault((TCP, port), container)
            for port in container.udp_ports:
                surface.setdefault((UDP, port), container)
        self._surface = surface

    def listens(self, proto: int, port: int) -> bool:
        return (proto, port) in self._surface

    def open_ports(self, proto: int) -> tuple[int, ...]:
        return tuple(sorted(p for pr, p in self._surface if pr == proto))

    def handle(self, pkt: Packet) -> list[Packet]:
        """Process a (translated) packet; return the response packets."""
        container = self._surface.get((pkt.proto, pkt.dport))
        if container is None:
            return []
        if pkt.proto == TCP:
            if pkt.is_tcp_syn:
                return [tcp_segment(
                    pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                    TcpFlags.SYN | TcpFlags.ACK, seq=0, ack=pkt.seq + 1,
                )]
            if pkt.flags & TcpFlags.ACK and not pkt.payload:
                # Handshake completion: high-interaction pots speak first.
                self._m_interactions.inc()
                self.interactions.append(InteractionLog(
                    pkt.timestamp, container.name, pkt.src, TCP, pkt.dport,
                    pkt.dst,
                ))
                if container.banner:
                    return [tcp_segment(
                        pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                        TcpFlags.PSH | TcpFlags.ACK, seq=1, ack=pkt.seq,
                        payload=container.banner,
                    )]
                return []
            if pkt.payload:
                self._m_interactions.inc()
                self.interactions.append(InteractionLog(
                    pkt.timestamp, container.name, pkt.src, TCP, pkt.dport,
                    pkt.dst, data=pkt.payload,
                ))
                return [tcp_segment(
                    pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                    TcpFlags.ACK, seq=1, ack=pkt.seq + len(pkt.payload),
                )]
            return []
        # UDP: answer with a generic service response.
        self._m_interactions.inc()
        self.interactions.append(InteractionLog(
            pkt.timestamp, container.name, pkt.src, UDP, pkt.dport,
            pkt.dst, data=pkt.payload,
        ))
        return [udp_datagram(
            pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
            payload=b"\x00",
        )]


class DnatGateway:
    """The access-router DNAT stage fronting one T-Pot honeyprefix.

    Rewrites every in-prefix destination to ``prefix::1`` with a fresh
    source port, keeps the NAT log, answers ICMP for the whole (aliased)
    prefix itself, and reverse-translates T-Pot responses on the way out.
    """

    def __init__(
        self,
        prefix: IPv6Prefix,
        tpot: TPotInstance,
        transmit: Callable[[Packet], None] | None = None,
        max_nat_entries: int = 1_000_000,
    ):
        self.prefix = prefix
        self.tpot = tpot
        self._transmit = transmit or (lambda pkt: None)
        self.nat_log: list[DnatLogEntry] = []
        self.max_nat_entries = max_nat_entries
        self._next_port = 32_768
        #: (scanner addr, assigned source port) -> original destination.
        self._flows: dict[tuple[int, int], int] = {}
        #: (scanner addr, scanner port, original dst, proto) -> NAT port,
        #: so every packet of one flow reuses the same translation.
        self._flow_ports: dict[tuple[int, int, int, int], int] = {}
        self.rx_count = 0
        self.tx_count = 0
        registry = get_registry()
        self._m_rx = registry.counter("tpot.gateway.rx")
        self._m_tx = registry.counter("tpot.gateway.tx")
        self._m_nat = registry.counter("tpot.gateway.nat_entries")

    def set_transmit(self, transmit: Callable[[Packet], None]) -> None:
        self._transmit = transmit

    @property
    def target_address(self) -> int:
        """The ``::1`` address all flows are translated to."""
        return self.prefix.network | 1

    def _assign_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if self._next_port > 60_999:
            self._next_port = 32_768
        return port

    def responds(self, address: int, proto: int, port: int | None) -> bool:
        """Responsiveness oracle: aliased ICMP + T-Pot's port surface."""
        if address not in self.prefix:
            return False
        if proto == ICMPV6:
            return True
        return port is not None and self.tpot.listens(proto, port)

    def note_dark(self, n: int) -> None:
        """Account ``n`` packets that were received but provably could not
        elicit a reply (the columnar fast path skips materializing them)."""
        self.rx_count += n
        self._m_rx.inc(n)

    def handle(self, pkt: Packet) -> None:
        """Process one packet arriving for the honeyprefix."""
        self.rx_count += 1
        self._m_rx.inc()
        if pkt.dst not in self.prefix:
            return
        if pkt.proto == ICMPV6:
            if pkt.is_icmp_echo_request:
                self.tx_count += 1
                self._m_tx.inc()
                self._transmit(icmp_echo_reply(pkt))
            return
        if not self.tpot.listens(pkt.proto, pkt.dport):
            return  # closed port: captured upstream, never answered
        flow_key = (pkt.src, pkt.sport, pkt.dst, pkt.proto)
        nat_port = self._flow_ports.get(flow_key)
        if nat_port is None:
            nat_port = self._assign_port()
            self._flow_ports[flow_key] = nat_port
            self._m_nat.inc()
            if len(self.nat_log) < self.max_nat_entries:
                self.nat_log.append(
                    DnatLogEntry(pkt.timestamp, pkt.dst, nat_port)
                )
            self._flows[(pkt.src, nat_port)] = pkt.dst
        translated = Packet(
            timestamp=pkt.timestamp, src=pkt.src, dst=self.target_address,
            proto=pkt.proto, sport=nat_port, dport=pkt.dport,
            flags=pkt.flags, payload=pkt.payload, seq=pkt.seq, ack=pkt.ack,
        )
        for response in self.tpot.handle(translated):
            # response.dst is the scanner, response.dport the NAT port we
            # assigned; the flow table gives back the address the scanner
            # actually probed so the reply appears to come from it.
            original_dst = self._flows.get((response.dst, response.dport))
            out = Packet(
                timestamp=response.timestamp,
                src=original_dst if original_dst is not None else response.src,
                dst=response.dst,
                proto=response.proto,
                sport=response.sport,
                # Restore the scanner's real source port.
                dport=pkt.sport,
                flags=response.flags,
                payload=response.payload,
                seq=response.seq,
                ack=response.ack,
            )
            self.tx_count += 1
            self._m_tx.inc()
            self._transmit(out)

    def recover_destination(self, timestamp: float, source_port: int) -> int | None:
        """Join a T-Pot log line back to its original IPv6 destination."""
        for entry in reversed(self.nat_log):
            if entry.source_port == source_port and entry.timestamp <= timestamp:
                return entry.original_dst
        return None
