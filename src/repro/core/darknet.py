"""Passive darknet telescopes.

Two deployment styles from §3.1:

* **dedicated**: a fixed prefix that is entirely dark (NT-B's /48);
* **live-network**: capture whatever falls into the *unused* portions of a
  live network's covering prefix (NT-A's and NT-C's /32s) — the monitored
  space is dynamic, shrinking whenever the operator assigns a subnet.

Darknets never respond; they only hand packets to the capturer.
"""

from __future__ import annotations

from typing import Callable

from repro.net.addr import IPv6Prefix
from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.obs import get_tracer


class DarknetTelescope:
    """A passive telescope over the unused parts of ``covering_prefix``."""

    def __init__(
        self,
        name: str,
        covering_prefix: IPv6Prefix,
        on_packet: Callable[[Packet], None] | None = None,
    ):
        self.name = name
        self.covering_prefix = covering_prefix
        self._assigned: list[IPv6Prefix] = []
        self._on_packet = on_packet
        self._on_batch: Callable[[PacketBatch], None] | None = None
        self.captured_count = 0
        self.ignored_count = 0

    def set_capture(self, on_packet: Callable[[Packet], None],
                    on_batch: Callable[[PacketBatch], None] | None = None,
                    ) -> None:
        self._on_packet = on_packet
        self._on_batch = on_batch

    def assign(self, prefix: IPv6Prefix) -> None:
        """Mark ``prefix`` as in production use — its traffic is not dark."""
        if not self.covering_prefix.contains_prefix(prefix):
            raise ValueError(
                f"{prefix} is not within the telescope's {self.covering_prefix}"
            )
        self._assigned.append(prefix)

    def unassign(self, prefix: IPv6Prefix) -> None:
        """Return a previously assigned subnet to the dark pool."""
        self._assigned.remove(prefix)

    @property
    def assigned(self) -> tuple[IPv6Prefix, ...]:
        return tuple(self._assigned)

    def monitors(self, address: int) -> bool:
        """Is ``address`` within the (currently) dark, monitored space?"""
        if address not in self.covering_prefix:
            return False
        return not any(address in assigned for assigned in self._assigned)

    def dark_fraction(self) -> float:
        """Fraction of the covering prefix currently dark (approximate:
        assumes assigned subnets do not overlap)."""
        total = self.covering_prefix.num_addresses
        used = sum(p.num_addresses for p in self._assigned)
        return max(0.0, 1.0 - used / total)

    def handle(self, pkt: Packet) -> None:
        """Capture a packet when it targets monitored dark space."""
        if self.monitors(pkt.dst):
            self.captured_count += 1
            if self._on_packet is not None:
                self._on_packet(pkt)
        else:
            self.ignored_count += 1

    def handle_batch(self, batch: PacketBatch) -> None:
        """Columnar fast path: vectorized :meth:`monitors` over a batch.

        Dark rows flow to the batch capture sink when one is installed;
        otherwise they are materialized one by one for the scalar sink.
        """
        if len(batch) == 0:
            return
        with get_tracer().span("darknet.handle_batch", telescope=self.name,
                               packets=len(batch)):
            dark = batch.mask_dst_in(self.covering_prefix)
            for assigned in self._assigned:
                dark &= ~batch.mask_dst_in(assigned)
            captured = batch.select(dark)
            self.captured_count += len(captured)
            self.ignored_count += len(batch) - len(captured)
            if self._on_batch is not None:
                self._on_batch(captured)
            elif self._on_packet is not None:
                for pkt in captured.iter_packets():
                    self._on_packet(pkt)
