"""Honeyprefix configurations and the canonical Table 2 deployment.

A :class:`HoneyprefixConfig` is the *plan* for one honeyprefix — which
features it gets and how.  A :class:`Honeyprefix` is the *deployed instance*:
a concrete prefix, the concrete addresses each feature landed on, and the
feature timeline used later for scan-tactic attribution (Fig. 11).

``standard_configs()`` reproduces the paper's Table 2: 27 honeyprefixes —
8 feature prefixes, 16 hyper-specific BGP-only prefixes (/49../64), and
3 identical plain BGP-only /48s.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

import numpy as np

from repro._util import make_rng
from repro.core.features import Feature
from repro.net.addr import IPv6Prefix
from repro.net.packet import ICMPV6, TCP, UDP

#: Web-service ports (Table 2 footnote).
WEB_PORTS = (80, 443, 8080, 8443)
#: Remote-control ports (Table 2 footnote).
REMOTE_PORTS = (22, 23, 2323, 3389)
#: UDP service ports used by Twinklenet honeyprefixes.
UDP_PORTS = (53, 123)


class IcmpMode(enum.Enum):
    """How a honeyprefix answers ICMPv6 echo requests."""

    #: Nothing answers.
    NONE = "none"
    #: ::1 plus a couple of random addresses answer (Table 2 half-circle).
    ADDRESSES = "addresses"
    #: The whole prefix answers (aliased, Table 2 full circle).
    FULL = "full"


@dataclass(frozen=True, slots=True)
class HoneyprefixConfig:
    """The feature plan for one honeyprefix (a row of Table 2)."""

    name: str
    announce_length: int = 48
    #: The H_TCP mishap: BIRD announced it but it never reached the Internet.
    announce_fails: bool = False
    aliased: bool = False
    icmp_mode: IcmpMode = IcmpMode.NONE
    #: service label -> TCP ports opened on one random address each.
    tcp_services: tuple[tuple[str, tuple[int, ...]], ...] = ()
    #: UDP ports opened on one random address.
    udp_ports: tuple[int, ...] = ()
    #: TLDs of domains registered for this prefix, e.g. ("com", "com").
    domains: tuple[str, ...] = ()
    #: Deploy common-subdomain AAAA records (for the last domain only, as in
    #: H_Org/net where only the .net domain got subdomains)?
    subdomains: bool = False
    #: Open web ports on every AAAA-pointed address?
    web_on_domain_ips: bool = False
    #: Issue TLS certificates (root / subdomain) as later triggers?
    tls_root: bool = False
    tls_sub: bool = False
    #: T-Pot instance number (1 or 2) when this prefix fronts a T-Pot.
    tpot: int | None = None
    #: Manual hitlist insertion planned (paper §4.3.6)?
    hitlist_manual: bool = False
    #: Deploy PTR records for a few addresses (the H_RDNS variant)?
    rdns: bool = False

    def __post_init__(self) -> None:
        if not 48 <= self.announce_length <= 64:
            raise ValueError(
                f"honeyprefixes are announced at /48../64, got "
                f"/{self.announce_length}"
            )
        if self.aliased and self.icmp_mode is not IcmpMode.FULL:
            raise ValueError("aliased prefixes answer ICMP everywhere")
        if self.subdomains and not self.domains:
            raise ValueError("subdomain records require a registered domain")
        if self.tls_sub and not self.subdomains:
            raise ValueError("subdomain TLS requires subdomain records")
        if self.tpot not in (None, 1, 2):
            raise ValueError(f"tpot must be 1, 2, or None, got {self.tpot}")

    @property
    def planned_features(self) -> frozenset[Feature]:
        """The full feature set this config will eventually activate."""
        features = {Feature.BGP} if not self.announce_fails else set()
        if self.aliased:
            features.add(Feature.ALIASED)
        if self.icmp_mode is not IcmpMode.NONE:
            features.add(Feature.ICMP)
        if self.tcp_services or self.web_on_domain_ips or self.tpot:
            features.add(Feature.TCP)
        if self.udp_ports or self.tpot:
            features.add(Feature.UDP)
        if self.domains:
            features.add(Feature.DOMAIN)
        if self.subdomains:
            features.add(Feature.SUBDOMAIN)
        if self.tls_root:
            features.add(Feature.TLS_ROOT)
        if self.tls_sub:
            features.add(Feature.TLS_SUB)
        if self.hitlist_manual or self.aliased:
            features.add(Feature.HITLIST)
        return frozenset(features)


@dataclass
class Honeyprefix:
    """A deployed honeyprefix: concrete prefix + concrete feature addresses."""

    config: HoneyprefixConfig
    prefix: IPv6Prefix
    #: address -> set of (proto, port|None) it answers.
    responsive: dict[int, set[tuple[int, int | None]]] = field(default_factory=dict)
    #: domain name -> AAAA target address.
    domain_targets: dict[str, int] = field(default_factory=dict)
    #: subdomain name -> AAAA target address.
    subdomain_targets: dict[str, int] = field(default_factory=dict)
    #: addresses manually inserted into the hitlist.
    manual_hitlist_addresses: list[int] = field(default_factory=list)
    #: (time, feature, detail) activation log, for Fig 11 attribution.
    timeline: list[tuple[float, Feature, str]] = field(default_factory=list)
    deployed_at: float | None = None
    withdrawn_at: float | None = None

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def announced_prefix(self) -> IPv6Prefix:
        """The prefix actually announced (may be longer than the /48)."""
        if self.config.announce_length == self.prefix.length:
            return self.prefix
        return self.prefix.subnet_at(0, self.config.announce_length)

    def record(self, at: float, feature: Feature, detail: str = "") -> None:
        """Append a feature activation to the timeline."""
        self.timeline.append((at, feature, detail))

    def active_features(self, at: float) -> frozenset[Feature]:
        """Features activated on this prefix at or before ``at``."""
        return frozenset(f for t, f, _ in self.timeline if t <= at)

    def feature_time(self, feature: Feature) -> float | None:
        """First activation time of ``feature``, or None."""
        times = [t for t, f, _ in self.timeline if f is feature]
        return min(times) if times else None

    # Binding-column cache state.  Deliberately *unannotated* class
    # attributes — annotated names would become dataclass fields and change
    # the generated __init__/__eq__.  The version bumps on every
    # add_responsive; the cached columns rebuild lazily when stale — the
    # same idiom as Twinklenet's owner index.
    _bind_version = 0
    _bind_cache = None

    def add_responsive(self, address: int, proto: int, port: int | None) -> None:
        """Mark ``address`` as answering ``proto``/``port``."""
        if address not in self.prefix:
            raise ValueError(
                f"{address:#x} is outside honeyprefix {self.prefix}"
            )
        self.responsive.setdefault(address, set()).add((proto, port))
        self._bind_version = self._bind_version + 1

    def _binding_columns(self) -> dict:
        """Columnar view of :attr:`responsive` for the vectorized reply
        path: ICMP-bound addresses as (hi, lo) u64 columns, TCP/UDP
        bindings as (hi, lo, port) triples."""
        cache = self._bind_cache
        if cache is not None and cache["version"] == self._bind_version:
            return cache
        icmp: list[int] = []
        tcp: list[tuple[int, int]] = []
        udp: list[tuple[int, int]] = []
        for addr, bindings in self.responsive.items():
            for proto, port in bindings:
                if proto == ICMPV6 and port is None:
                    icmp.append(addr)
                elif proto == TCP:
                    tcp.append((addr, port))
                elif proto == UDP:
                    udp.append((addr, port))
        from repro.net.addr import split_u64

        def _cols(pairs):
            hi, lo = split_u64(a for a, _ in pairs)
            ports = np.asarray([p for _, p in pairs], dtype=np.uint16)
            return hi, lo, ports

        cache = {
            "version": self._bind_version,
            "icmp": split_u64(icmp),
            "tcp": _cols(tcp),
            "udp": _cols(udp),
        }
        # Plain attribute write: Honeyprefix is not a frozen dataclass.
        self._bind_cache = cache
        return cache

    def icmp_address_columns(self) -> tuple:
        """(hi, lo) u64 columns of :meth:`icmp_addresses`."""
        return self._binding_columns()["icmp"]

    def binding_columns(self, proto: int) -> tuple:
        """(hi, lo, port) columns of the TCP or UDP bindings."""
        return self._binding_columns()["tcp" if proto == TCP else "udp"]

    def responds(self, address: int, proto: int, port: int | None) -> bool:
        """Does ``address`` answer ``proto``/``port``?

        Aliased prefixes answer ICMP for every address.  TCP/UDP answers
        require an exact (address, port) binding.
        """
        if self.config.aliased and proto == ICMPV6 and address in self.prefix:
            return True
        bindings = self.responsive.get(address)
        if not bindings:
            return False
        if proto == ICMPV6:
            return (ICMPV6, None) in bindings
        return (proto, port) in bindings

    def icmp_addresses(self) -> list[int]:
        """Addresses with an individual ICMP binding."""
        return [a for a, b in self.responsive.items() if (ICMPV6, None) in b]


def deploy_addresses(
    config: HoneyprefixConfig,
    prefix: IPv6Prefix,
    rng: np.random.Generator | int | None = 0,
) -> Honeyprefix:
    """Instantiate a honeyprefix: pick the concrete feature addresses.

    Address assignment follows §4.3: ICMP on ``::1`` plus two random
    addresses (one random address in H_Combined-style configs), one random
    address per TCP service label, one for the UDP services.  Domain/
    subdomain AAAA targets are assigned later, when the proactive telescope
    registers the names.
    """
    rng = make_rng(rng)
    hp = Honeyprefix(config=config, prefix=prefix)

    if config.icmp_mode is IcmpMode.FULL:
        # Aliasing: the whole prefix answers; ::1 also gets an explicit
        # binding so it shows up in icmp_addresses().
        hp.add_responsive(prefix.network | 1, ICMPV6, None)
    elif config.icmp_mode is IcmpMode.ADDRESSES:
        hp.add_responsive(prefix.network | 1, ICMPV6, None)
        n_random = 1 if config.tcp_services and config.udp_ports else 2
        for _ in range(n_random):
            hp.add_responsive(prefix.random_address(rng).value, ICMPV6, None)

    for _, ports in config.tcp_services:
        addr = prefix.random_address(rng).value
        for port in ports:
            hp.add_responsive(addr, TCP, port)

    if config.udp_ports:
        addr = prefix.random_address(rng).value
        for port in config.udp_ports:
            hp.add_responsive(addr, UDP, port)

    return hp


def standard_configs(include_rdns: bool = False) -> list[HoneyprefixConfig]:
    """The paper's Table 2: the 27 honeyprefix configurations.

    With ``include_rdns=True`` the H_RDNS variant from §4.3.4 (three
    ICMP-responsive addresses plus PTR records) is appended as a 28th.
    """
    configs = [
        HoneyprefixConfig(
            name="H_Alias", aliased=True, icmp_mode=IcmpMode.FULL,
        ),
        HoneyprefixConfig(
            name="H_TCP", announce_fails=True, icmp_mode=IcmpMode.ADDRESSES,
            tcp_services=(("web", WEB_PORTS), ("remote", REMOTE_PORTS)),
        ),
        HoneyprefixConfig(
            name="H_UDP", icmp_mode=IcmpMode.ADDRESSES, udp_ports=UDP_PORTS,
            hitlist_manual=True,
        ),
        HoneyprefixConfig(
            name="H_Com", tcp_services=(("web", WEB_PORTS),),
            domains=("com", "com"), web_on_domain_ips=True, tls_root=True,
        ),
        HoneyprefixConfig(
            name="H_Org/net", tcp_services=(("web", WEB_PORTS),),
            domains=("org", "net"), subdomains=True, web_on_domain_ips=True,
            tls_root=True, tls_sub=True,
        ),
        HoneyprefixConfig(
            name="H_Combined", icmp_mode=IcmpMode.ADDRESSES,
            tcp_services=(("web", WEB_PORTS), ("remote", REMOTE_PORTS)),
            udp_ports=UDP_PORTS, domains=("net",), subdomains=True,
            web_on_domain_ips=True, tls_root=True, tls_sub=True,
        ),
        HoneyprefixConfig(
            name="H_TPot1", aliased=True, icmp_mode=IcmpMode.FULL,
            domains=("com", "com"), subdomains=True, tpot=1,
            hitlist_manual=True, tls_root=True, tls_sub=True,
        ),
        HoneyprefixConfig(
            name="H_TPot2", aliased=True, icmp_mode=IcmpMode.FULL,
            domains=("com", "com"), subdomains=True, tpot=2,
            hitlist_manual=True, tls_root=True, tls_sub=True,
        ),
    ]
    configs.extend(
        HoneyprefixConfig(
            name=f"H_Specific/{length}", announce_length=length,
        )
        for length in range(49, 65)
    )
    configs.extend(
        HoneyprefixConfig(name=f"H_BGP{i}") for i in range(1, 4)
    )
    if include_rdns:
        configs.append(
            HoneyprefixConfig(
                name="H_RDNS", icmp_mode=IcmpMode.ADDRESSES, rdns=True,
            )
        )
    return configs
