"""Twinklenet: the low-interaction multi-protocol IP-aliasing honeypot.

Python port of the paper's Go implementation (Appendix D).  A single
instance handles packets for any number of non-contiguous subnets and
addresses (IP aliasing) and interacts per Table 7:

=============== =============================== ===============================
protocol        request                         response
=============== =============================== ===============================
ICMPv6          Echo request                    Echo reply
TCP             SYN to an open port             complete the three-way
                                                handshake, capture the first
                                                data, close with FIN
TCP             other segment to an open port   RST
NTP (UDP)       any client packet               kiss-of-death (RefID "DENY")
DNS (UDP)       any query                       SERVFAIL
=============== =============================== ===============================

Anything else — closed ports, unclaimed addresses — is silently captured
but never answered, preserving darknet semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.honeyprefix import Honeyprefix
from repro.net.addr import aggregate
from repro.obs import get_registry
from repro.net.packet import (
    ICMPV6,
    TCP,
    UDP,
    Packet,
    TcpFlags,
    icmp_echo_reply,
    tcp_segment,
    udp_datagram,
)

#: NTP kiss-of-death payload: stratum 0 with reference identifier "DENY".
NTP_KOD_PAYLOAD = b"\x24\x00\x00\x00DENY"
#: DNS header flag bytes with QR=1, RCODE=2 (SERVFAIL).
DNS_SERVFAIL_PAYLOAD = b"\x80\x02"
#: Zeroed QDCOUNT/ANCOUNT/NSCOUNT/ARCOUNT words of the SERVFAIL header.
_DNS_ZERO_COUNTS = b"\x00\x00" * 4

#: UDP ports Twinklenet understands as DNS / NTP.
DNS_PORT = 53
NTP_PORT = 123


@dataclass
class TcpSession:
    """State of one half-open/open TCP conversation."""

    peer: int
    peer_port: int
    local: int
    local_port: int
    state: str = "syn_received"
    first_data: bytes | None = None
    opened_at: float = 0.0
    last_seen: float = 0.0


@dataclass
class TwinklenetConfig:
    """Which honeyprefixes (and their bindings) this instance serves."""

    honeyprefixes: list[Honeyprefix] = field(default_factory=list)
    #: TCP sessions idle longer than this (by packet timestamp) are evicted
    #: — a SYN-only sweep must not grow the session table forever.
    session_timeout: float = 600.0
    #: Hard cap on concurrently tracked TCP sessions; the oldest-inserted
    #: session is dropped to admit a new one once the cap is reached.
    max_sessions: int = 4096


class Twinklenet:
    """The responder.  Feed packets in via :meth:`handle`; responses are
    emitted through the ``transmit`` callback (typically an
    :class:`~repro.net.iface.Interface`'s transmit)."""

    def __init__(
        self,
        config: TwinklenetConfig,
        transmit: Callable[[Packet], None] | None = None,
    ):
        self.config = config
        self._transmit = transmit or (lambda pkt: None)
        self._sessions: dict[tuple[int, int, int, int], TcpSession] = {}
        self.sessions_completed: list[TcpSession] = []
        self.sessions_evicted = 0
        self.rx_count = 0
        self.tx_count = 0
        self._last_sweep = float("-inf")
        # Truncation-keyed honeyprefix index; rebuilt lazily when the
        # config's honeyprefix list grows (deploys append to it).
        self._owner_index: dict[tuple[int, int], tuple[int, Honeyprefix]] = {}
        self._owner_lengths: list[int] = []
        self._indexed_count = -1
        registry = get_registry()
        self._m_rx = registry.counter("twinklenet.rx")
        self._m_opened = registry.counter("twinklenet.sessions.opened")
        self._m_evicted = registry.counter("twinklenet.sessions.evicted")
        self._m_completed = registry.counter("twinklenet.sessions.completed")
        self._m_torn_down = registry.counter("twinklenet.sessions.torn_down")
        self._m_reply_icmp = registry.counter("twinklenet.replies.icmp")
        self._m_reply_tcp = registry.counter("twinklenet.replies.tcp")
        self._m_reply_dns = registry.counter("twinklenet.replies.dns")
        self._m_reply_ntp = registry.counter("twinklenet.replies.ntp")

    def set_transmit(self, transmit: Callable[[Packet], None]) -> None:
        self._transmit = transmit

    def _send(self, pkt: Packet) -> None:
        self.tx_count += 1
        self._transmit(pkt)

    def _rebuild_owner_index(self) -> None:
        self._owner_index = {}
        lengths: set[int] = set()
        for pos, hp in enumerate(self.config.honeyprefixes):
            key = (hp.prefix.length, hp.prefix.network)
            self._owner_index.setdefault(key, (pos, hp))
            lengths.add(hp.prefix.length)
        self._owner_lengths = sorted(lengths)
        self._indexed_count = len(self.config.honeyprefixes)

    def _owner(self, dst: int) -> Honeyprefix | None:
        """Honeyprefix serving ``dst``, by truncation-keyed dict lookup.

        One dict probe per distinct deployed prefix length (a handful:
        honeyprefixes are /48s and longer) replaces the linear scan over
        every honeyprefix.  When several nested prefixes cover ``dst``, the
        one listed first in the config wins, matching the original scan.
        """
        if len(self.config.honeyprefixes) != self._indexed_count:
            self._rebuild_owner_index()
        best: tuple[int, Honeyprefix] | None = None
        for length in self._owner_lengths:
            entry = self._owner_index.get((length, aggregate(dst, length)))
            if entry is not None and (best is None or entry[0] < best[0]):
                best = entry
        return best[1] if best else None

    def responds(self, address: int, proto: int, port: int | None) -> bool:
        """Responsiveness oracle over all served honeyprefixes."""
        hp = self._owner(address)
        return hp is not None and hp.responds(address, proto, port)

    def note_dark(self, n: int) -> None:
        """Account ``n`` packets that were received but provably could not
        elicit a reply (the columnar fast path skips materializing them)."""
        self.rx_count += n
        self._m_rx.inc(n)

    def handle(self, pkt: Packet) -> None:
        """Process one incoming packet, possibly emitting responses."""
        self.rx_count += 1
        self._m_rx.inc()
        hp = self._owner(pkt.dst)
        if hp is None:
            return
        if pkt.proto == ICMPV6:
            self._handle_icmp(pkt, hp)
        elif pkt.proto == TCP:
            self._handle_tcp(pkt, hp)
        elif pkt.proto == UDP:
            self._handle_udp(pkt, hp)

    # -- ICMP ------------------------------------------------------------

    def _handle_icmp(self, pkt: Packet, hp: Honeyprefix) -> None:
        if pkt.is_icmp_echo_request and hp.responds(pkt.dst, ICMPV6, None):
            self._m_reply_icmp.inc()
            self._send(icmp_echo_reply(pkt))

    # -- TCP -------------------------------------------------------------

    def _evict_stale_sessions(self, now: float) -> None:
        """Drop sessions idle longer than the configured timeout.

        Driven by packet timestamps and amortized: a full sweep runs at
        most once per timeout interval, so per-packet cost stays O(1).
        """
        timeout = self.config.session_timeout
        if now - self._last_sweep < timeout:
            return
        self._last_sweep = now
        expired = [key for key, session in self._sessions.items()
                   if now - session.last_seen > timeout]
        for key in expired:
            del self._sessions[key]
        self.sessions_evicted += len(expired)
        self._m_evicted.inc(len(expired))

    def _handle_tcp(self, pkt: Packet, hp: Honeyprefix) -> None:
        self._evict_stale_sessions(pkt.timestamp)
        if not hp.responds(pkt.dst, TCP, pkt.dport):
            return  # closed port: darknet silence
        key = (pkt.src, pkt.sport, pkt.dst, pkt.dport)
        session = self._sessions.get(key)
        if pkt.is_tcp_syn:
            if session is None and len(self._sessions) >= self.config.max_sessions:
                # Table full: recycle the oldest-inserted session (a
                # SYN-only scanner never touches a session twice, so
                # insertion order is idle order).
                del self._sessions[next(iter(self._sessions))]
                self.sessions_evicted += 1
                self._m_evicted.inc()
            self._sessions[key] = TcpSession(
                peer=pkt.src, peer_port=pkt.sport,
                local=pkt.dst, local_port=pkt.dport,
                opened_at=pkt.timestamp, last_seen=pkt.timestamp,
            )
            self._m_opened.inc()
            self._m_reply_tcp.inc()
            self._send(tcp_segment(
                pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                TcpFlags.SYN | TcpFlags.ACK, seq=0, ack=pkt.seq + 1,
            ))
            return
        if session is None:
            # Mid-stream segment with no session: RST per Table 7.
            self._m_reply_tcp.inc()
            self._send(tcp_segment(
                pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                TcpFlags.RST, seq=pkt.ack,
            ))
            return
        session.last_seen = pkt.timestamp
        if session.state == "syn_received" and pkt.flags & TcpFlags.ACK:
            session.state = "established"
        if session.state == "established" and pkt.payload:
            # Capture the first data, then close gracefully with FIN.
            session.first_data = pkt.payload
            session.state = "closing"
            self._m_completed.inc()
            self._m_reply_tcp.inc()
            self._send(tcp_segment(
                pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                TcpFlags.FIN | TcpFlags.ACK,
                seq=1, ack=pkt.seq + len(pkt.payload),
            ))
            self.sessions_completed.append(session)
            del self._sessions[key]
            return
        if pkt.flags & (TcpFlags.FIN | TcpFlags.RST):
            # Peer teardown: forget the session.  A FIN gets its ACK; an
            # RST is dropped silently.
            del self._sessions[key]
            self._m_torn_down.inc()
            if pkt.flags & TcpFlags.FIN and not pkt.flags & TcpFlags.RST:
                self._m_reply_tcp.inc()
                self._send(tcp_segment(
                    pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                    TcpFlags.ACK, seq=1, ack=pkt.seq + 1,
                ))

    # -- UDP -------------------------------------------------------------

    def _handle_udp(self, pkt: Packet, hp: Honeyprefix) -> None:
        if not hp.responds(pkt.dst, UDP, pkt.dport):
            return
        if pkt.dport == DNS_PORT:
            # SERVFAIL instead of implementing a resolver an attacker could
            # abuse for reflection.  The reply is a well-formed 12-byte DNS
            # header: TXID (zero-padded when the query is shorter than two
            # bytes), SERVFAIL flags, and zeroed section counts.
            txid = pkt.payload[:2].ljust(2, b"\x00")
            payload = txid + DNS_SERVFAIL_PAYLOAD + _DNS_ZERO_COUNTS
            self._m_reply_dns.inc()
            self._send(udp_datagram(
                pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport, payload
            ))
        elif pkt.dport == NTP_PORT:
            self._m_reply_ntp.inc()
            self._send(udp_datagram(
                pkt.timestamp, pkt.dst, pkt.src, pkt.dport, pkt.sport,
                NTP_KOD_PAYLOAD,
            ))
        # Other UDP ports bound in future configs: responsive but mute.
